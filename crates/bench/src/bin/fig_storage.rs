//! Regenerates the tiered-storage TTFT baseline
//! (`target/experiments/BENCH_storage.json`): pipelined vs unpipelined vs
//! full-prefill TTFT across the device bandwidth grid, with chunk KV on a
//! real throttled disk tier. See `experiments::storage`.
//!
//! Flags:
//!
//! - `--smoke` — shrunken sizes/repetitions (seconds, for CI).
//! - `--dir <path>` — root for the throwaway cache dirs (tempdir default).
//!
//! The full (non-smoke) run asserts the paper's §5.2 claim at these
//! shapes: on the Standard profile the pipeline must hide at least half of
//! the measured raw disk load time on its best device.

use cb_bench::experiments::storage::{run_opts, StorageOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let hidden = run_opts(StorageOpts { smoke, dir });
    if !smoke {
        assert!(
            hidden >= 0.5,
            "pipeline hid only {:.0}% of raw disk load time (need ≥ 50%)",
            hidden * 100.0
        );
    }
}
