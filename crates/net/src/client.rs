//! [`NetClient`]: the remote front door. Speaks the client half of the
//! protocol to a gateway over any [`Transport`] — submit requests and get
//! back ordinary [`ResponseStream`]s, register chunks cluster-wide, and
//! snapshot worker health. The `cb_gateway --smoke` self-check and the
//! loopback-vs-TCP parity tests drive the cluster exclusively through
//! this type.

use crate::message::{Message, WireRequest};
use crate::transport::{NetError, Transport};
use cb_core::engine::{EngineError, ErrorCode, Request, Response};
use cb_core::scheduler::ServiceProbe;
use cb_core::stream::{Event, ResponseStream};
use cb_kv::ChunkId;
use cb_tokenizer::TokenId;
use crossbeam::channel::{self, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct ClientInner {
    conn: Arc<dyn Transport>,
    streams: Mutex<HashMap<u64, Sender<Event>>>,
    rpcs: Mutex<HashMap<u64, Sender<Message>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl ClientInner {
    fn demux_loop(self: Arc<Self>) {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match self.conn.recv_timeout(Duration::from_millis(50)) {
                Ok(Message::Ev { id, event }) => {
                    let ev = event.into_event();
                    let terminal = ev.is_terminal();
                    let mut streams = self.streams.lock().unwrap();
                    if let Some(tx) = streams.get(&id) {
                        let _ = tx.send(ev);
                    }
                    if terminal {
                        streams.remove(&id);
                    }
                }
                Ok(msg @ (Message::RegisterReply { .. } | Message::ClusterStatusReply { .. })) => {
                    let rpc = match &msg {
                        Message::RegisterReply { rpc, .. }
                        | Message::ClusterStatusReply { rpc, .. } => *rpc,
                        _ => unreachable!(),
                    };
                    if let Some(tx) = self.rpcs.lock().unwrap().remove(&rpc) {
                        let _ = tx.send(msg);
                    }
                }
                Ok(_) => {}
                Err(NetError::Timeout) => {}
                Err(_) => {
                    // Gateway gone: dropping the senders closes every open
                    // stream, so collectors observe `Canceled` rather than
                    // hanging.
                    self.streams.lock().unwrap().clear();
                    self.rpcs.lock().unwrap().clear();
                    return;
                }
            }
        }
    }

    fn rpc(
        &self,
        timeout: Duration,
        build: impl FnOnce(u64) -> Message,
    ) -> Result<Message, NetError> {
        let rpc = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::unbounded();
        self.rpcs.lock().unwrap().insert(rpc, tx);
        if let Err(e) = self.conn.send(&build(rpc)) {
            self.rpcs.lock().unwrap().remove(&rpc);
            return Err(e);
        }
        rx.recv_timeout(timeout).map_err(|_| {
            self.rpcs.lock().unwrap().remove(&rpc);
            NetError::Timeout
        })
    }
}

/// A connected client session (see module docs). Dropping it closes the
/// session; streams still open report [`EngineError::Canceled`].
pub struct NetClient {
    inner: Arc<ClientInner>,
    demux: Option<JoinHandle<()>>,
    rpc_timeout: Duration,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("peer", &self.inner.conn.peer())
            .finish()
    }
}

impl NetClient {
    /// Opens a client session on `conn`: announces `HelloClient` and
    /// starts the demux thread that routes incoming frames to streams.
    pub fn connect(conn: Arc<dyn Transport>) -> Result<NetClient, NetError> {
        conn.send(&Message::HelloClient)?;
        let inner = Arc::new(ClientInner {
            conn,
            streams: Mutex::new(HashMap::new()),
            rpcs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let demux = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("cb-net-client-demux".into())
                .spawn(move || inner.demux_loop())
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        Ok(NetClient {
            inner,
            demux: Some(demux),
            rpc_timeout: Duration::from_secs(60),
        })
    }

    /// Submits a request through the gateway's locality router. The
    /// returned stream replays the worker's events exactly as an
    /// in-process `EngineService` stream would; routing failures arrive
    /// as `Event::Failed` with the structured
    /// [`ErrorCode::NoHealthyWorker`] error.
    pub fn submit_stream(&self, request: &Request) -> ResponseStream {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, stream) = ResponseStream::channel();
        self.inner.streams.lock().unwrap().insert(id, tx.clone());
        let msg = Message::Submit {
            id,
            blocking: false,
            request: WireRequest::from_request(request),
        };
        if self.inner.conn.send(&msg).is_err() {
            self.inner.streams.lock().unwrap().remove(&id);
            let _ = tx.send(Event::Failed(EngineError::Remote {
                code: ErrorCode::NoHealthyWorker,
                message: "gateway connection closed".into(),
            }));
        }
        stream
    }

    /// Blocking one-shot convenience over [`NetClient::submit_stream`].
    pub fn submit(&self, request: &Request) -> Result<Response, EngineError> {
        self.submit_stream(request).collect()
    }

    /// Registers a chunk on every worker. With `eager`, the chunk's home
    /// worker precomputes its KV and replicates it to the persistent
    /// tier; otherwise registration is lazy everywhere.
    pub fn register_chunk(&self, tokens: &[TokenId], eager: bool) -> Result<ChunkId, EngineError> {
        let reply = self
            .inner
            .rpc(self.rpc_timeout, |rpc| Message::RegisterChunk {
                rpc,
                eager,
                tokens: tokens.to_vec(),
            })
            .map_err(|e| EngineError::Storage(format!("registration RPC failed: {e}")))?;
        match reply {
            Message::RegisterReply {
                result: Ok(raw), ..
            } => Ok(ChunkId(raw)),
            Message::RegisterReply {
                result: Err(failure),
                ..
            } => Err(failure.into_error()),
            other => Err(EngineError::Storage(format!(
                "unexpected registration reply {other:?}"
            ))),
        }
    }

    /// Per-worker health and last-heartbeat probes, as the gateway sees
    /// them.
    pub fn cluster_status(&self) -> Result<(Vec<bool>, Vec<ServiceProbe>), NetError> {
        match self
            .inner
            .rpc(self.rpc_timeout, |rpc| Message::Status { rpc })?
        {
            Message::ClusterStatusReply {
                healthy, probes, ..
            } => Ok((healthy, probes)),
            other => Err(NetError::Io(format!("unexpected status reply {other:?}"))),
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Tell the gateway the session is over (best-effort).
        let _ = self.inner.conn.send(&Message::Shutdown);
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
    }
}
