//! End-to-end RAG serving: dataset → retrieval → engine submit (store
//! lookup → pipelined CacheBlend fusion → decode) → quality scoring.
//!
//! This walks the full production path of Figure 11 through the unified
//! [`Engine`] API: a vector index retrieves chunks, the engine fetches
//! their serialized KV entries from its tiered store, a loader thread
//! streams layers while the fusor recomputes the HKVD tokens, and the
//! answer is scored against the gold label.
//!
//! Run with: `cargo run --release --example rag_pipeline`

use cacheblend::blend::engine::RatioPolicy;
use cacheblend::prelude::*;
use cacheblend::rag::datasets::Dataset;
use cacheblend::storage::perf::PaperModel;

fn main() {
    // The engine owns the model, the tiered store, and the §5.1 controller
    // (RatioPolicy::Auto picks the recompute ratio per request).
    let engine = EngineBuilder::new(ModelProfile::Mistral7B)
        .tier(DeviceKind::CpuRam, 1 << 30)
        .paper_model(PaperModel::Mistral7B)
        .ratio_policy(RatioPolicy::Auto)
        .build()
        .expect("engine");
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    println!("dataset: {ds:?}");

    // Offline: register every chunk — precompute on miss fills the store.
    let chunk_ids = engine.register_chunks(&ds.chunks).expect("register chunks");
    println!("stored {} chunk entries\n", engine.store().len());

    // The controller's paper-scale plan for the figure-12 request shape.
    let plan =
        engine
            .controller()
            .expect("controller configured")
            .plan(6 * 512, 32, DeviceKind::NvmeSsd);
    println!(
        "controller: device={:?} ratio={:.2} predicted paper-scale TTFT={:.3}s\n",
        plan.device, plan.recompute_ratio, plan.ttft_s
    );

    // Online: serve the first few queries through the engine.
    let mut total = 0.0f32;
    let n = 8;
    for (i, case) in ds.cases.iter().take(n).enumerate() {
        let ctx = ds.retrieve(case, 6);
        let ids: Vec<_> = ctx.iter().map(|&c| chunk_ids[c]).collect();
        let resp = engine
            .submit(Request::new(ids, case.query.clone()))
            .expect("submit");
        let score = ds.score(&resp.answer, &case.gold);
        total += score;
        println!(
            "q{i}: {:<28} pred={:<12} gold={:<12} {}={:.2}  (r={:.2}, loader wait {:?})",
            ds.vocab.render_seq(&case.query),
            ds.vocab.render_seq(&resp.answer),
            ds.vocab.render_seq(&case.gold),
            ds.kind.metric_name(),
            score,
            resp.recompute_ratio,
            resp.ttft.load_wait,
        );
    }
    println!(
        "\nmean {} over {n} queries: {:.3}  (store stats: {:?})",
        ds.kind.metric_name(),
        total / n as f32,
        engine.store().stats()
    );
}
