//! Runs every figure/table experiment in order, emitting markdown tables
//! to stdout and JSON rows under `target/experiments/`.
fn main() {
    cb_bench::experiments::run_all();
}
