//! Regenerates the kernel/forward-pass throughput baseline
//! (`target/experiments/BENCH_kernels.json`): prefill tokens/s, blend
//! TTFT, and decode tokens/s for the scalar / blocked / parallel arms on
//! the Small and Standard profiles. See `experiments::kernels`.
//!
//! Flags:
//!
//! - `--smoke` — shrunken sizes/repetitions (seconds, for CI).
//! - `--batch` — run the continuous-batching arm instead
//!   (`target/experiments/BENCH_batch.json`): decode tokens/s at batch
//!   occupancy 1/4/8/16/32 plus client-observed TTFT p50/p99 under a
//!   batched service. See `experiments::batch`.

use cb_bench::experiments::batch::{run_opts as run_batch, BatchOpts};
use cb_bench::experiments::kernels::{run_opts, KernelOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--batch") {
        run_batch(BatchOpts { smoke });
    } else {
        run_opts(KernelOpts { smoke });
    }
}
