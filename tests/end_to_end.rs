//! Cross-crate integration: dataset → store → fusor → decode → metric,
//! compared across execution schemes.

use cacheblend::baselines::{run_full_recompute, run_full_reuse, SchemeKind};
use cacheblend::core::fusor::{BlendConfig, Fusor};
use cacheblend::kv::chunk::hash_tokens;
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::kv::store::KvStore;
use cacheblend::model::{KvCache, Model, ModelConfig, ModelProfile};
use cacheblend::rag::datasets::{CaseKind, Dataset, DatasetKind};

fn model() -> Model {
    Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11))
}

fn parts_for(model: &Model, ds: &Dataset, ctx: &[usize]) -> Vec<KvCache> {
    ctx.iter()
        .map(|&i| precompute_chunk(model, &ds.chunks[i]))
        .collect()
}

#[test]
fn quality_ordering_holds_end_to_end() {
    // Full recompute ≥ CacheBlend ≫ full reuse on a multi-hop dataset,
    // through retrieval, chunk caches, and decoding.
    let m = model();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let (mut full, mut blend, mut reuse) = (0.0f32, 0.0f32, 0.0f32);
    let n = 12;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.retrieve(case, 6);
        let chunks = ds.chunk_tokens(&ctx);
        full += ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.18));
        blend += ds.score(
            &fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8),
            &case.gold,
        );
        reuse += ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
    }
    let (full, blend, reuse) = (full / n as f32, blend / n as f32, reuse / n as f32);
    assert!(full > 0.5, "full recompute too weak: {full}");
    assert!(
        blend >= full - 0.15,
        "CacheBlend lost quality: {blend} vs {full}"
    );
    assert!(
        reuse < blend - 0.2,
        "full reuse should lag: {reuse} vs {blend}"
    );
}

#[test]
fn store_roundtrip_preserves_blend_answers() {
    // Serialize chunk caches through the tiered store, decode, blend: the
    // answer must match blending the in-memory caches.
    let m = model();
    let ds = Dataset::standard(DatasetKind::TwoWikiSim, 7);
    let store = KvStore::single("ram", 1 << 30);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);
    for &c in &ctx {
        store
            .insert(
                hash_tokens(&ds.chunks[c]),
                &precompute_chunk(&m, &ds.chunks[c]),
            )
            .unwrap();
    }
    let from_store: Vec<KvCache> = ctx
        .iter()
        .map(|&c| store.get(hash_tokens(&ds.chunks[c])).unwrap().unwrap().0)
        .collect();
    let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.3));
    let a = fusor.answer(from_store, &case.query, 8);
    let b = fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8);
    assert_eq!(a, b, "store roundtrip changed the answer");
}

#[test]
fn cross_chunk_cases_are_the_ones_reuse_loses() {
    let m = model();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let mut cross_gap = 0.0f32;
    let mut direct_gap = 0.0f32;
    let (mut nc, mut nd) = (0, 0);
    for case in ds.cases.iter().take(24) {
        let ctx = ds.oracle_context(case, 6);
        let chunks = ds.chunk_tokens(&ctx);
        let f = ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        let r = ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
        match case.kind {
            CaseKind::CrossChunk => {
                cross_gap += f - r;
                nc += 1;
            }
            CaseKind::Direct | CaseKind::WithinChunk => {
                direct_gap += f - r;
                nd += 1;
            }
        }
    }
    assert!(nc >= 5 && nd >= 3, "need both case kinds (got {nc}/{nd})");
    let cross_gap = cross_gap / nc as f32;
    let direct_gap = direct_gap / nd as f32;
    assert!(
        cross_gap > 0.4,
        "cross-chunk cases should show a large reuse gap: {cross_gap}"
    );
    assert!(
        direct_gap.abs() < 0.2,
        "self-contained cases should be scheme-insensitive: {direct_gap}"
    );
}

#[test]
fn blend_ratio_one_reproduces_full_prefill_on_real_data() {
    let m = model();
    let ds = Dataset::standard(DatasetKind::SamsumSim, 7);
    for case in ds.cases.iter().take(4) {
        let ctx = ds.retrieve(case, 4);
        let chunks = ds.chunk_tokens(&ctx);
        let gold_scheme = run_full_recompute(&m, &chunks, &case.query, 8).answer;
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(1.0));
        let blend = fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8);
        assert_eq!(blend, gold_scheme, "r=1.0 must equal full prefill");
    }
}

#[test]
fn summarization_chains_degrade_gracefully() {
    // Rouge-L on chain answers: full reuse should sit strictly between 0
    // and full recompute (partial chains survive), blend close to full.
    let m = model();
    let ds = Dataset::standard(DatasetKind::MultiNewsSim, 7);
    let (mut full, mut reuse) = (0.0f32, 0.0f32);
    let n = 10;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.oracle_context(case, 4);
        let chunks = ds.chunk_tokens(&ctx);
        full += ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        reuse += ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
    }
    let (full, reuse) = (full / n as f32, reuse / n as f32);
    assert!(full > 0.6, "full recompute Rouge-L too low: {full}");
    assert!(reuse < full, "reuse must lose Rouge-L: {reuse} vs {full}");
}

#[test]
fn blending_from_quantized_caches_preserves_answers() {
    // §8: KV compression is complementary — int8-stored caches quarter
    // the load bytes, and the program's decision margins absorb the
    // quantization noise.
    use cacheblend::kv::quantize::{decode_quantized, encode_quantized};
    let m = model();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.3));
    let mut agree = 0;
    let n = 8;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.retrieve(case, 6);
        let exact = fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8);
        let quantized: Vec<KvCache> = parts_for(&m, &ds, &ctx)
            .iter()
            .map(|c| decode_quantized(encode_quantized(c)).unwrap())
            .collect();
        let q_ans = fusor.answer(quantized, &case.query, 8);
        if q_ans == exact {
            agree += 1;
        }
    }
    assert!(
        agree >= n - 1,
        "quantization flipped too many answers: {agree}/{n}"
    );
}

#[test]
fn scheme_kind_names_are_unique() {
    let names: std::collections::HashSet<_> = [
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
        SchemeKind::FullReuse,
        SchemeKind::CacheBlend,
        SchemeKind::MapReduce,
        SchemeKind::MapRerank,
    ]
    .iter()
    .map(|s| s.name())
    .collect();
    assert_eq!(names.len(), 6);
}
