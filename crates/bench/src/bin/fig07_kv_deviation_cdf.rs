//! Regenerates fig07 (see DESIGN.md §6 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig07::run();
}
