//! The KV cache fusor: selective KV recompute with HKVD selection.
//!
//! Implements §4 of the paper end to end:
//!
//! 1. Relocate each chunk's precomputed cache to its position in this
//!    request (Appendix A re-rotation, [`crate::rope_align`]).
//! 2. Recompute **layer 0 in full** — cheap (1/n of prefill) and it gives
//!    every token a context-correct layer-0 state to measure against
//!    (Figure 9: "recompute all tokens on Layer 1").
//! 3. On each later layer, compute fresh K/V for the surviving candidate
//!    tokens, rank them by KV deviation against the loaded cache, keep the
//!    top `r_l` fraction (the HKVD tokens), overwrite only their cache
//!    rows, and run masked attention for them alone (§4.2's workflow — the
//!    compute is proportional to the selected count).
//! 4. `r_l` follows the gradual-filtering schedule (§4.3): slightly above
//!    the target ratio on early layers, tapering below it later, so
//!    selection integrates deviation evidence from several layers.
//!
//! The suffix (the user query) is never cached and always recomputed; its
//! per-layer attention can be traced for the Δattn metric.

use cb_model::model::ForwardTrace;
use cb_model::{KvCache, Model, Scratch};
use cb_tensor::ops::top_k_indices;
use cb_tensor::Matrix;
use cb_tokenizer::TokenId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::deviation::row_deviation;
use crate::rope_align;

/// Reusable buffers for the fusor's per-layer HKVD
/// gather → recompute → scatter loop. One arena serves a whole blend (and
/// can be reused across blends): the per-layer QKV projections, deviation
/// scores, gathered K/V rows, the shrinking residual, and the attention
/// scratch all live here, so the steady-state layer loop performs no heap
/// allocation beyond the fused caches it must hand back.
#[derive(Debug, Default)]
pub struct BlendScratch {
    /// Forward-pass buffers (QKV, attention, MLP).
    fwd: Scratch,
    /// Residual rows of the surviving tokens.
    x: Matrix,
    /// Next layer's residual (ping-pong partner of `x`).
    x_new: Matrix,
    /// Gathered fresh K rows of the selected tokens.
    k_sel: Matrix,
    /// Gathered fresh V rows of the selected tokens.
    v_sel: Matrix,
    /// Gathered queries of the active rows.
    q_act: Matrix,
    /// Per-candidate KV deviation of the current layer.
    dev: Vec<f32>,
    /// Residual-row indices kept on the current layer.
    keep: Vec<usize>,
    /// Cache rows the kept indices map to.
    cache_rows: Vec<usize>,
    /// Kept rows plus the suffix rows.
    active: Vec<usize>,
    /// Cache row of each residual row.
    row_ids: Vec<usize>,
    /// Remap staging for `row_ids`.
    row_ids_new: Vec<usize>,
    /// Absolute position of each residual row.
    x_pos: Vec<usize>,
    /// Positions of the active rows.
    act_pos: Vec<usize>,
    /// Key positions (all context + suffix rows).
    k_pos: Vec<usize>,
    /// Context + suffix token ids.
    all_tokens: Vec<TokenId>,
}

impl BlendScratch {
    /// A fresh (empty) arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How HKVD tokens are chosen on each layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selection {
    /// Rank candidates by KV deviation on every layer, shrinking the set
    /// gradually (the paper's §4.3 scheme).
    Hkvd,
    /// Rank by KV deviation on the *first* layer only and freeze that set
    /// for all deeper layers — the "straightforward solution" §4.3
    /// describes before arguing gradual filtering is statistically more
    /// reliable. Ablation.
    FirstLayerOnly,
    /// Uniform random selection of the same sizes (the ablation that shows
    /// *which* tokens are recomputed matters, not just how many).
    Random {
        /// RNG seed (per-layer streams are derived from it).
        seed: u64,
    },
}

/// Fusor configuration.
#[derive(Clone, Copy, Debug)]
pub struct BlendConfig {
    /// Mean fraction of context tokens to recompute per layer (the paper's
    /// default `r* = 15 %`).
    pub recompute_ratio: f32,
    /// Gradual-filtering slope: layer 1 selects `r·(1+gamma)`, the last
    /// layer `r·(1−gamma)`.
    pub gamma: f32,
    /// Token selection policy.
    pub selection: Selection,
}

impl Default for BlendConfig {
    fn default() -> Self {
        Self {
            recompute_ratio: 0.15,
            // Gentle taper: the critical tokens must still fit the deepest
            // layer's budget r·(1−γ), and cross-chunk-dependent tokens are
            // typically ~8-12 % of a RAG context.
            gamma: 0.3,
            selection: Selection::Hkvd,
        }
    }
}

impl BlendConfig {
    /// A config with the given ratio and defaults elsewhere.
    pub fn with_ratio(ratio: f32) -> Self {
        Self {
            recompute_ratio: ratio,
            ..Self::default()
        }
    }
}

/// Statistics recorded while blending.
#[derive(Clone, Debug, Default)]
pub struct BlendStats {
    /// Context tokens (BOS + chunks).
    pub ctx_len: usize,
    /// Suffix (query) tokens.
    pub suffix_len: usize,
    /// HKVD tokens recomputed on each layer ≥ 1.
    pub selected_per_layer: Vec<usize>,
    /// Per-token KV deviation measured on layer 1 (all context tokens) —
    /// the signal HKVD selection acts on.
    pub first_layer_deviations: Vec<f32>,
}

impl BlendStats {
    /// Achieved mean recompute fraction over layers ≥ 1.
    pub fn mean_recompute_fraction(&self) -> f32 {
        if self.selected_per_layer.is_empty() || self.ctx_len == 0 {
            return 0.0;
        }
        let total: usize = self.selected_per_layer.iter().sum();
        total as f32 / (self.selected_per_layer.len() as f32 * self.ctx_len as f32)
    }
}

/// The output of a blend: a fused cache ready for decoding.
#[derive(Clone, Debug)]
pub struct BlendResult {
    /// Fused context + suffix KV.
    pub cache: KvCache,
    /// Final residual row of the suffix (feed to `Model::decode_greedy`).
    pub last_residual: Vec<f32>,
    /// Blend statistics.
    pub stats: BlendStats,
    /// Per-layer suffix attention (mean over heads), if requested.
    pub trace: Option<ForwardTrace>,
}

/// The CacheBlend fusor.
#[derive(Clone, Copy, Debug)]
pub struct Fusor<'m> {
    model: &'m Model,
    cfg: BlendConfig,
}

impl<'m> Fusor<'m> {
    /// Creates a fusor over a model.
    pub fn new(model: &'m Model, cfg: BlendConfig) -> Self {
        Self { model, cfg }
    }

    /// The gradual-filtering schedule: fraction of context tokens to select
    /// on `layer` (1-based selection layers; layer 0 is always full).
    pub fn ratio_for_layer(&self, layer: usize, n_layers: usize) -> f32 {
        debug_assert!(layer >= 1);
        let r = self.cfg.recompute_ratio;
        if n_layers <= 2 {
            return r.clamp(0.0, 1.0);
        }
        let t = (layer - 1) as f32 / (n_layers - 2) as f32;
        (r * (1.0 + self.cfg.gamma * (1.0 - 2.0 * t))).clamp(0.0, 1.0)
    }

    /// Fuses per-chunk caches (at their local positions) and a suffix into
    /// one request cache: relocates every chunk behind a BOS sink, then
    /// runs selective recompute.
    pub fn blend(&self, parts: Vec<KvCache>, suffix: &[TokenId], want_trace: bool) -> BlendResult {
        let bos = cb_kv::precompute::bos_cache(self.model);
        let mut segments = vec![bos];
        let mut cursor = 1usize;
        for mut p in parts {
            assert!(!p.is_empty(), "cannot blend an empty chunk cache");
            rope_align::relocate(self.model, &mut p, cursor);
            cursor += p.len();
            segments.push(p);
        }
        let refs: Vec<&KvCache> = segments.iter().collect();
        let ctx = KvCache::concat(&refs);
        self.blend_cache(ctx, suffix, want_trace)
    }

    /// Runs selective recompute over an already-assembled context cache
    /// (positions must be `0..len`) and a fresh suffix.
    pub fn blend_cache(&self, ctx: KvCache, suffix: &[TokenId], want_trace: bool) -> BlendResult {
        assert_eq!(
            ctx.positions,
            (0..ctx.len()).collect::<Vec<_>>(),
            "context cache must sit at positions 0..len"
        );
        let KvCache {
            mut layers,
            positions,
            tokens,
        } = ctx;
        self.blend_streamed(
            &positions,
            &tokens,
            |l| std::mem::replace(&mut layers[l], cb_model::LayerKv::empty(0)),
            suffix,
            want_trace,
        )
    }

    /// Runs selective recompute with context layers pulled one at a time
    /// from `next_layer` — the streaming entry point used by the pipelined
    /// loader (`next_layer(l)` is the §6 `synchronize()` point: it blocks
    /// until layer `l` has been fetched into memory).
    pub fn blend_streamed(
        &self,
        ctx_positions: &[usize],
        ctx_tokens: &[TokenId],
        next_layer: impl FnMut(usize) -> cb_model::LayerKv,
        suffix: &[TokenId],
        want_trace: bool,
    ) -> BlendResult {
        let mut scratch = BlendScratch::new();
        self.blend_streamed_scratch(
            ctx_positions,
            ctx_tokens,
            next_layer,
            suffix,
            want_trace,
            &mut scratch,
        )
    }

    /// [`Fusor::blend_streamed`] on a caller-provided [`BlendScratch`]:
    /// the per-layer gather/recompute/scatter reuses the arena's buffers,
    /// so a warm blend allocates only the fused cache it returns.
    #[allow(clippy::too_many_arguments)]
    pub fn blend_streamed_scratch(
        &self,
        ctx_positions: &[usize],
        ctx_tokens: &[TokenId],
        mut next_layer: impl FnMut(usize) -> cb_model::LayerKv,
        suffix: &[TokenId],
        want_trace: bool,
        sc: &mut BlendScratch,
    ) -> BlendResult {
        let result: Result<BlendResult, std::convert::Infallible> = self
            .try_blend_streamed_scratch(
                ctx_positions,
                ctx_tokens,
                |l| Ok(next_layer(l)),
                suffix,
                want_trace,
                sc,
            );
        match result {
            Ok(r) => r,
            Err(e) => match e {},
        }
    }

    /// [`Fusor::blend_streamed_scratch`] with a *fallible* layer source —
    /// the storage-backed loader can fail mid-stream (a disk read error or
    /// a layer block failing its checksum), and the error must abort the
    /// blend cleanly instead of handing poisoned KV to the decoder.
    #[allow(clippy::too_many_arguments)]
    pub fn try_blend_streamed_scratch<E>(
        &self,
        ctx_positions: &[usize],
        ctx_tokens: &[TokenId],
        mut next_layer: impl FnMut(usize) -> Result<cb_model::LayerKv, E>,
        suffix: &[TokenId],
        want_trace: bool,
        sc: &mut BlendScratch,
    ) -> Result<BlendResult, E> {
        assert!(!suffix.is_empty(), "blend needs a non-empty suffix (query)");
        let model = self.model;
        let n_layers = model.n_layers();
        let ctx_len = ctx_positions.len();
        let s = suffix.len();

        sc.all_tokens.clear();
        sc.all_tokens.extend_from_slice(ctx_tokens);
        sc.all_tokens.extend_from_slice(suffix);
        sc.x_pos.clear();
        sc.x_pos.extend_from_slice(ctx_positions);
        sc.x_pos.extend(ctx_len..ctx_len + s);
        sc.k_pos.clear();
        sc.k_pos.extend_from_slice(&sc.x_pos);

        // Row i of `x` corresponds to cache row `row_ids[i]`; suffix rows
        // occupy cache rows ctx_len..ctx_len+s on every layer (appended).
        model.embed_tokens_into(&sc.all_tokens, &mut sc.x);
        sc.row_ids.clear();
        sc.row_ids.extend(0..ctx_len + s);

        let mut trace = want_trace.then(ForwardTrace::default);
        let mut stats = BlendStats {
            ctx_len,
            suffix_len: s,
            ..BlendStats::default()
        };

        let mut done_layers: Vec<cb_model::LayerKv> = Vec::with_capacity(n_layers);
        for layer in 0..n_layers {
            // §6 synchronize(): block until this layer's KV is in memory.
            let mut lkv = next_layer(layer)?;
            assert_eq!(lkv.len(), ctx_len, "layer {layer} has wrong row count");
            model.qkv_into(
                layer,
                &sc.x,
                &sc.x_pos,
                &mut sc.fwd.q,
                &mut sc.fwd.k,
                &mut sc.fwd.v,
                &mut sc.fwd.fused,
            );
            let (q, k, v) = (&sc.fwd.q, &sc.fwd.k, &sc.fwd.v);
            let nc = sc.x.rows() - s; // candidate context rows in x

            sc.keep.clear();
            if layer == 0 {
                // Full recompute of the first layer for every context token.
                sc.keep.extend(0..nc);
            } else {
                sc.dev.clear();
                sc.dev.extend((0..nc).map(|i| {
                    let r = sc.row_ids[i];
                    row_deviation(k.row(i), v.row(i), lkv.k.row(r), lkv.v.row(r))
                }));
                if layer == 1 {
                    stats.first_layer_deviations = sc.dev.clone();
                }
                let target = ((self.ratio_for_layer(layer, n_layers) * ctx_len as f32).round()
                    as usize)
                    .min(nc);
                match self.cfg.selection {
                    Selection::Hkvd => sc.keep.extend(top_k_indices(&sc.dev, target)),
                    Selection::FirstLayerOnly => {
                        if layer == 1 {
                            // Fixed budget r (no taper) chosen once.
                            let flat = ((self.cfg.recompute_ratio * ctx_len as f32).round()
                                as usize)
                                .min(nc);
                            sc.keep.extend(top_k_indices(&sc.dev, flat));
                        } else {
                            // Keep every surviving candidate: the set was
                            // frozen at layer 1 and only shrinks if the
                            // schedule would exceed it (it cannot: we keep
                            // all).
                            sc.keep.extend(0..nc);
                        }
                    }
                    Selection::Random { seed } => {
                        let mut rng =
                            SmallRng::seed_from_u64(seed ^ (layer as u64).wrapping_mul(0x9E37));
                        sc.keep
                            .extend(rand::seq::index::sample(&mut rng, nc, target).into_vec());
                    }
                }
                stats.selected_per_layer.push(sc.keep.len());
                // Ascending residual order (selection is a set): keeps the
                // active rows' positions sorted, which the attention
                // kernels' causal-cutoff tiling wants, and improves gather
                // locality.
                sc.keep.sort_unstable();
            }
            sc.cache_rows.clear();
            sc.cache_rows.extend(sc.keep.iter().map(|&i| sc.row_ids[i]));

            // Overwrite the selected tokens' KV with fresh values; append
            // the suffix KV (computed fresh every layer).
            k.gather_rows_into(&sc.keep, &mut sc.k_sel);
            v.gather_rows_into(&sc.keep, &mut sc.v_sel);
            lkv.scatter(&sc.cache_rows, &sc.k_sel, &sc.v_sel);
            lkv.append_rows(k, v, nc, nc + s);

            // Narrow the residual to the surviving rows + suffix and attend.
            sc.active.clear();
            sc.active.extend_from_slice(&sc.keep);
            sc.active.extend(nc..nc + s);
            q.gather_rows_into(&sc.active, &mut sc.q_act);
            sc.act_pos.clear();
            sc.act_pos.extend(sc.active.iter().map(|&i| sc.x_pos[i]));
            let mut probs = trace.as_ref().map(|_| Matrix::zeros(0, 0));
            model.attend_into(
                layer,
                &sc.q_act,
                &sc.act_pos,
                &lkv.k,
                &lkv.v,
                &sc.k_pos,
                probs.as_mut(),
                &mut sc.fwd.delta,
                &mut sc.fwd.attend,
            );
            sc.x.gather_rows_into(&sc.active, &mut sc.x_new);
            sc.x_new.add_assign(&sc.fwd.delta);
            if model.reference_kernels {
                if let Some(m) = model.mlp_delta(layer, &sc.x_new) {
                    sc.x_new.add_assign(&m);
                }
            } else if model.layers[layer].mlp.forward_into(
                &sc.x_new,
                &mut sc.fwd.h1,
                &mut sc.fwd.h2,
                &mut sc.fwd.mlp_out,
            ) {
                sc.x_new.add_assign(&sc.fwd.mlp_out);
            }
            if let (Some(t), Some(p)) = (trace.as_mut(), probs) {
                // Record the suffix rows' attention only (the forward
                // attention matrix of §2).
                t.attn.push(p.slice_rows(p.rows() - s, p.rows()));
            }

            sc.row_ids_new.clear();
            sc.row_ids_new
                .extend(sc.active.iter().map(|&i| sc.row_ids[i]));
            std::mem::swap(&mut sc.row_ids, &mut sc.row_ids_new);
            std::mem::swap(&mut sc.x_pos, &mut sc.act_pos);
            std::mem::swap(&mut sc.x, &mut sc.x_new);
            done_layers.push(lkv);
        }

        let mut positions = ctx_positions.to_vec();
        positions.extend(ctx_len..ctx_len + s);
        let mut tokens = ctx_tokens.to_vec();
        tokens.extend_from_slice(suffix);
        let last_residual = sc.x.row(sc.x.rows() - 1).to_vec();
        Ok(BlendResult {
            cache: KvCache {
                layers: done_layers,
                positions,
                tokens,
            },
            last_residual,
            stats,
            trace,
        })
    }

    /// Convenience: blend then greedy-decode an answer.
    pub fn answer(
        &self,
        parts: Vec<KvCache>,
        suffix: &[TokenId],
        max_tokens: usize,
    ) -> Vec<TokenId> {
        let mut out = self.blend(parts, suffix, false);
        self.model
            .decode_greedy(&mut out.cache, &out.last_residual, max_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_kv::precompute::precompute_chunk;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::{self, *};

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn ids(m: &Model, spec: &[TokenKind]) -> Vec<TokenId> {
        spec.iter().map(|&k| m.cfg.vocab.id(k)).collect()
    }

    /// Two chunks where chunk 2's first fact subject is a coreference to
    /// chunk 1's entity — the cross-attention scenario of Figure 3. Chunk 2
    /// also carries a self-contained fact, so (as in realistic chunks) only
    /// the REF fact's tokens are cross-chunk dependent.
    fn ref_scenario(m: &Model) -> (Vec<TokenId>, Vec<TokenId>, Vec<TokenId>, TokenId) {
        let c1 = ids(
            m,
            &[Entity(5), Attr(0), Value(1), Sep, Filler(3), Filler(7)],
        );
        let c2 = ids(
            m,
            &[
                Ref,
                Attr(3),
                Value(9),
                Sep,
                Entity(8),
                Attr(1),
                Value(4),
                Sep,
            ],
        );
        let query = ids(m, &[Query, Entity(5), Attr(3), QMark]);
        let gold = m.cfg.vocab.id(Value(9));
        (c1, c2, query, gold)
    }

    fn full_prefill_answer(m: &Model, chunks: &[&[TokenId]], query: &[TokenId]) -> Vec<TokenId> {
        let mut toks = vec![m.cfg.vocab.id(Bos)];
        for c in chunks {
            toks.extend_from_slice(c);
        }
        toks.extend_from_slice(query);
        m.generate(&toks, 4)
    }

    #[test]
    fn full_prefill_answers_the_ref_query() {
        let m = model();
        let (c1, c2, q, gold) = ref_scenario(&m);
        assert_eq!(full_prefill_answer(&m, &[&c1, &c2], &q), vec![gold]);
    }

    #[test]
    fn zero_ratio_blend_misses_the_ref_query() {
        // With no selective recompute (beyond the always-full first layer),
        // the REF fact's binding keys stay corrupted and the answer is lost
        // — the full-KV-reuse failure mode.
        let m = model();
        let (c1, c2, q, gold) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.0));
        let ans = fusor.answer(parts, &q, 4);
        assert_ne!(ans, vec![gold], "r=0 should not recover cross-attention");
    }

    #[test]
    fn hkvd_blend_recovers_the_ref_query() {
        let m = model();
        let (c1, c2, q, gold) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.45));
        let ans = fusor.answer(parts, &q, 4);
        assert_eq!(ans, vec![gold], "HKVD recompute should repair the answer");
    }

    #[test]
    fn self_contained_fact_survives_even_at_zero_ratio() {
        // A fact whose subject is in the same chunk needs no
        // cross-attention: full KV reuse answers it (the PromptCache happy
        // path), so r=0 must too.
        let m = model();
        let c1 = ids(&m, &[Entity(5), Attr(0), Value(1), Sep]);
        let c2 = ids(&m, &[Entity(8), Attr(3), Value(9), Sep]);
        let q = ids(&m, &[Query, Entity(8), Attr(3), QMark]);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.0));
        let ans = fusor.answer(parts, &q, 4);
        assert_eq!(ans, vec![m.cfg.vocab.id(Value(9))]);
    }

    #[test]
    fn full_ratio_blend_matches_full_prefill_exactly() {
        let m = model();
        let (c1, c2, q, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(1.0));
        let out = fusor.blend(parts, &q, false);

        let mut toks = vec![m.cfg.vocab.id(Bos)];
        toks.extend_from_slice(&c1);
        toks.extend_from_slice(&c2);
        toks.extend_from_slice(&q);
        let (full, x) = m.prefill(&toks);
        for l in 0..m.n_layers() {
            let d = out.cache.layers[l].k.frobenius_distance(&full.layers[l].k)
                + out.cache.layers[l].v.frobenius_distance(&full.layers[l].v);
            assert!(d < 1e-2, "layer {l} KV differs from full prefill: {d}");
        }
        let dl = cb_tensor::stats::l2_distance(&out.last_residual, x.row(x.rows() - 1));
        assert!(dl < 1e-2, "final residual differs: {dl}");
    }

    #[test]
    fn hkvd_flags_the_ref_fact_tokens() {
        let m = model();
        let (c1, c2, q, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::default());
        let out = fusor.blend(parts, &q, false);
        let dev = &out.stats.first_layer_deviations;
        // Context layout: [bos | c1(6) | c2(8)]; the REF fact occupies
        // context rows 7..=10 (REF attr value SEP) and its attr/value rows
        // 8 and 9 must rank among the top deviations, while chunk 2's
        // self-contained fact (rows 11..=14) must not.
        let ranked = top_k_indices(dev, 5);
        assert!(
            ranked.contains(&8) && ranked.contains(&9),
            "REF-fact tokens not in top-5 deviations: {ranked:?} (dev {dev:?})"
        );
        assert!(
            !ranked.contains(&12) && !ranked.contains(&13),
            "self-contained fact flagged as HKVD: {ranked:?}"
        );
    }

    #[test]
    fn hkvd_beats_random_selection() {
        let m = model();
        let (c1, c2, q, gold) = ref_scenario(&m);
        let mk = || vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let hkvd = Fusor::new(&m, BlendConfig::with_ratio(0.4)).answer(mk(), &q, 4);
        assert_eq!(hkvd, vec![gold]);
        // Random selection at the same budget usually misses the REF rows;
        // over several seeds at least one must fail for the ablation to
        // mean anything (deterministically checked seeds).
        let mut failures = 0;
        for seed in 0..5 {
            let cfg = BlendConfig {
                recompute_ratio: 0.4,
                gamma: 0.3,
                selection: Selection::Random { seed },
            };
            let ans = Fusor::new(&m, cfg).answer(mk(), &q, 4);
            if ans != vec![gold] {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "random selection never failed — ablation void"
        );
    }

    #[test]
    fn first_layer_only_selection_also_recovers_simple_cases() {
        // The §4.3 "straightforward solution": select once on layer 1. On
        // a scenario whose critical tokens are cleanly separated it works;
        // gradual filtering exists for the statistically murkier cases.
        let m = model();
        let (c1, c2, q, gold) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let cfg = BlendConfig {
            recompute_ratio: 0.45,
            gamma: 0.3,
            selection: Selection::FirstLayerOnly,
        };
        let ans = Fusor::new(&m, cfg).answer(parts, &q, 4);
        assert_eq!(ans, vec![gold]);
    }

    #[test]
    fn first_layer_only_keeps_a_flat_budget() {
        let m = model();
        let (c1, c2, q, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let cfg = BlendConfig {
            recompute_ratio: 0.3,
            gamma: 0.3,
            selection: Selection::FirstLayerOnly,
        };
        let out = Fusor::new(&m, cfg).blend(parts, &q, false);
        let counts = &out.stats.selected_per_layer;
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "set must stay frozen: {counts:?}"
        );
    }

    #[test]
    fn gradual_filtering_schedule_tapers() {
        let m = model();
        let f = Fusor::new(&m, BlendConfig::default());
        let r1 = f.ratio_for_layer(1, 10);
        let r9 = f.ratio_for_layer(9, 10);
        assert!(
            r1 > 0.15 && r9 < 0.15,
            "schedule should taper: {r1} .. {r9}"
        );
        let mean: f32 = (1..10).map(|l| f.ratio_for_layer(l, 10)).sum::<f32>() / 9.0;
        assert!((mean - 0.15).abs() < 0.01, "mean ratio drifted: {mean}");
    }

    #[test]
    fn selected_counts_respect_schedule_and_shrink() {
        let m = model();
        let (c1, c2, q, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.3));
        let out = fusor.blend(parts, &q, false);
        let counts = &out.stats.selected_per_layer;
        assert_eq!(counts.len(), m.n_layers() - 1);
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "selection must shrink: {counts:?}"
        );
        let frac = out.stats.mean_recompute_fraction();
        assert!((frac - 0.3).abs() < 0.1, "achieved fraction {frac}");
    }

    #[test]
    fn trace_has_one_suffix_attention_per_layer() {
        let m = model();
        let (c1, c2, q, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let out = Fusor::new(&m, BlendConfig::default()).blend(parts, &q, true);
        let t = out.trace.unwrap();
        assert_eq!(t.attn.len(), m.n_layers());
        for a in &t.attn {
            assert_eq!(a.rows(), q.len());
            assert_eq!(a.cols(), 15 + q.len()); // bos + 14 ctx + suffix
        }
    }

    #[test]
    #[should_panic(expected = "non-empty suffix")]
    fn empty_suffix_rejected() {
        let m = model();
        let (c1, _, _, _) = ref_scenario(&m);
        let parts = vec![precompute_chunk(&m, &c1)];
        let _ = Fusor::new(&m, BlendConfig::default()).blend(parts, &[], false);
    }
}
