//! The loading controller (§5.1).
//!
//! Answers the two operational questions of CacheBlend deployment:
//!
//! 1. *Given a storage device, what recompute ratio keeps recomputation
//!    hidden under loading?* — pick `r` with
//!    `T_recompute(r) = T_load(device)`, floored at the quality-preserving
//!    minimum `r* = 15 %` (Figure 16).
//! 2. *Given the recompute ratio, which device should store the KV?* —
//!    the cheapest device whose loading still hides under recomputation
//!    (`T_recompute ≥ T_load`), Figure 10(b).

use cb_storage::device::DeviceKind;
use cb_storage::perf::{PerfModel, DEFAULT_RECOMPUTE_RATIO};

/// The controller's decision for one request shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerPlan {
    /// Recompute ratio to run the fusor at.
    pub recompute_ratio: f64,
    /// Device the KV is loaded from.
    pub device: DeviceKind,
    /// Predicted TTFT (pipelined), seconds.
    pub ttft_s: f64,
}

/// The §5.1 loading controller.
#[derive(Clone, Copy, Debug)]
pub struct LoadingController {
    /// The paper-scale delay model for the serving deployment.
    pub perf: PerfModel,
    /// Minimal ratio with negligible quality loss (`r*`).
    pub min_quality_ratio: f64,
}

impl LoadingController {
    /// A controller with the paper's `r* = 15 %`.
    pub fn new(perf: PerfModel) -> Self {
        Self {
            perf,
            min_quality_ratio: DEFAULT_RECOMPUTE_RATIO,
        }
    }

    /// Question 1: the idealized recompute ratio for a fixed device —
    /// `max(r_equal_delay, r*)`, capped at 1 (full recompute).
    pub fn pick_ratio(&self, l_tokens: usize, device: DeviceKind) -> f64 {
        self.perf
            .equal_delay_ratio(l_tokens, device)
            .max(self.min_quality_ratio)
            .min(1.0)
    }

    /// Question 2: the cheapest device (among `candidates`) whose loading
    /// delay hides under recomputation at `ratio`. Returns `None` when even
    /// the fastest candidate cannot hide (the caller should then either
    /// raise the ratio via [`LoadingController::pick_ratio`] or accept
    /// load-bound TTFT).
    pub fn pick_device(
        &self,
        l_tokens: usize,
        ratio: f64,
        candidates: &[DeviceKind],
    ) -> Option<DeviceKind> {
        let budget = self.perf.recompute_layer_time(ratio, l_tokens);
        candidates
            .iter()
            .copied()
            .filter(|&d| self.perf.load_layer_time(l_tokens, d) <= budget)
            .min_by(|a, b| {
                a.spec()
                    .cost_per_gb_month
                    .partial_cmp(&b.spec().cost_per_gb_month)
                    .unwrap()
            })
    }

    /// Full plan for a request: fix the device, derive the ratio, predict
    /// TTFT.
    pub fn plan(&self, l_tokens: usize, suffix: usize, device: DeviceKind) -> ControllerPlan {
        let ratio = self.pick_ratio(l_tokens, device);
        ControllerPlan {
            recompute_ratio: ratio,
            device,
            ttft_s: self.perf.ttft_blend(ratio, l_tokens, suffix, device),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_storage::perf::PaperModel;

    fn ctl(m: PaperModel) -> LoadingController {
        LoadingController::new(PerfModel::on_a40(m))
    }

    #[test]
    fn ratio_never_below_quality_floor() {
        // CPU RAM loads so fast the equal-delay ratio would be ~0; the
        // floor r* = 15% must hold (§5.1: "even if the storage device is a
        // fast device (ex. CPU RAM), the delay will be lower-bounded by the
        // minimal recomputation to guarantee quality").
        let c = ctl(PaperModel::Mistral7B);
        assert_eq!(c.pick_ratio(4096, DeviceKind::CpuRam), 0.15);
    }

    #[test]
    fn slow_devices_allow_higher_ratio() {
        let c = ctl(PaperModel::Mistral7B);
        let slow = c.pick_ratio(4096, DeviceKind::SlowSsd);
        let fast = c.pick_ratio(4096, DeviceKind::CpuRam);
        assert!(slow > fast, "{slow} !> {fast}");
    }

    #[test]
    fn ratio_capped_at_one() {
        let c = ctl(PaperModel::Mistral7B);
        assert!(c.pick_ratio(64, DeviceKind::ObjectStore) <= 1.0);
    }

    #[test]
    fn device_picker_chooses_cheapest_that_hides() {
        // Figure 10(b): at a fixed 15% ratio pick the cheapest device whose
        // load hides under recompute.
        let c = ctl(PaperModel::Llama70B);
        let pick = c.pick_device(4096, 0.15, &DeviceKind::all());
        // 70B recompute/layer (≈ms) exceeds its small per-layer KV load on
        // NVMe and slower — the cheapest qualifying device must not be RAM.
        let d = pick.expect("some device must qualify");
        assert_ne!(d, DeviceKind::CpuRam, "RAM is never the cheapest option");
        let budget = c.perf.recompute_layer_time(0.15, 4096);
        assert!(c.perf.load_layer_time(4096, d) <= budget);
    }

    #[test]
    fn device_picker_returns_none_when_nothing_hides() {
        // Mistral-7B's per-layer recompute at 1% is microseconds; not even
        // RAM hides under it for a long context.
        let c = ctl(PaperModel::Mistral7B);
        assert_eq!(c.pick_device(4096, 0.001, &DeviceKind::all()), None);
    }

    #[test]
    fn plan_is_consistent() {
        let c = ctl(PaperModel::Yi34B);
        let p = c.plan(3072, 32, DeviceKind::NvmeSsd);
        assert!(p.recompute_ratio >= 0.15);
        assert!(p.ttft_s > 0.0);
        assert_eq!(p.device, DeviceKind::NvmeSsd);
        // The plan must beat full prefill.
        assert!(p.ttft_s < c.perf.ttft_full_prefill(3104));
    }
}
