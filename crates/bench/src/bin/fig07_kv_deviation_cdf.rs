//! Regenerates fig07 (see DESIGN.md §8 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig07::run();
}
