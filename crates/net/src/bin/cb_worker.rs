//! `cb_worker`: one engine worker process. Connects to a `cb_gateway`
//! over TCP, announces itself, and serves submissions until the gateway
//! ends the session.
//!
//! ```text
//! cb_worker --gateway 127.0.0.1:7070 [--workers 2] [--seed 11]
//! ```
//!
//! The engine is a Tiny-profile instance built from `--seed`; every
//! worker in a cluster must use the same profile and seed so routing
//! never changes results.

use cb_core::engine::EngineBuilder;
use cb_core::scheduler::{EngineService, ServiceConfig};
use cb_model::ModelProfile;
use cb_net::tcp::TcpTransport;
use cb_net::worker::{Worker, WorkerConfig};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: cb_worker --gateway ADDR [--workers N] [--seed S]");
    std::process::exit(2);
}

fn main() {
    let mut gateway = None;
    let mut workers = 2usize;
    let mut seed = 11u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gateway" => gateway = args.next(),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(addr) = gateway else { usage() };

    // The gateway may still be binding its listener: retry briefly.
    let conn = (0..50)
        .find_map(|_| match TcpTransport::connect(&addr) {
            Ok(t) => Some(t),
            Err(_) => {
                std::thread::sleep(Duration::from_millis(100));
                None
            }
        })
        .unwrap_or_else(|| {
            eprintln!("cb_worker: could not reach gateway at {addr}");
            std::process::exit(1);
        });

    let engine = EngineBuilder::new(ModelProfile::Tiny)
        .seed(seed)
        .build()
        .expect("Tiny engine builds");
    let service = Arc::new(EngineService::new(
        engine,
        ServiceConfig::default().workers(workers).queue_capacity(64),
    ));
    let worker =
        Worker::start(service, Arc::new(conn), WorkerConfig::default()).expect("worker handshake");
    eprintln!("cb_worker: serving {addr} (scheduler workers: {workers}, seed: {seed})");
    worker.run_until_disconnected();
    eprintln!("cb_worker: gateway session ended, exiting");
}
