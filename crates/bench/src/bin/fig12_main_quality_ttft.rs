//! Regenerates fig12 (see DESIGN.md §7 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig12::run();
}
