//! `cb-net`: the network control plane — a coordinator/worker cluster
//! over an explicit wire protocol.
//!
//! Earlier layers served multi-replica traffic through an in-process
//! router that called replica services directly. This crate splits that
//! coupling at a wire boundary so the same cluster logic runs across
//! processes and machines:
//!
//! - [`frame`] — the byte layer: length-prefixed, FNV-checksummed,
//!   versioned frames (`CBNF`), hostile-input safe (length validated
//!   before any allocation).
//! - [`message`] — the protocol: the [`message::Message`] catalogue
//!   (hello, submit, token-stream events, heartbeat, chunk registration,
//!   status/drain RPCs) and its hand-rolled little-endian codec.
//! - [`transport`] / [`tcp`] — one connection abstraction, two carriers:
//!   [`transport::LoopbackTransport`] (in-process channels carrying
//!   encoded frames, so `cargo test` exercises the full codec with no
//!   sockets) and [`tcp::TcpTransport`] (std TCP, one demux thread per
//!   connection).
//! - [`gateway`] — the coordinator: rendezvous chunk homes, locality
//!   routing, spill-to-least-loaded, heartbeat-timeout failover with
//!   idempotent (edge-counted) health transitions, slot adoption for
//!   re-attaching workers, and client-invisible mid-stream retry (a
//!   journaled request replays onto the next-best worker when its
//!   worker dies; the delivered prefix is suppressed).
//! - [`worker`] — wraps an
//!   [`EngineService`](cb_core::scheduler::EngineService): admits or
//!   rejects submissions, streams events back frame-by-frame, heartbeats
//!   on a ticker. Carries a stable `(id, incarnation)` identity so a
//!   reconnect adopts its old gateway slot.
//! - [`client`] — the remote front door used by external processes (and
//!   the gateway's own `--smoke` self-check); reconnects across an
//!   ordered endpoint list and resumes in-flight streams by request id.
//! - [`retry`] — the shared [`retry::RetryPolicy`]: every timeout,
//!   retry-budget, and backoff knob in one documented place.
//! - [`standby`] — the warm-standby gateway: mirrors the primary's
//!   journal/chunks/roster over the `Replicate*` feed and takes over on
//!   primary silence.
//!
//! `cb-serving`'s `ClusterService` is now a thin facade: the same
//! `Gateway` wired to in-process workers over loopback transports, so
//! every in-process cluster test exercises this crate's full protocol
//! path.

pub mod client;
pub mod frame;
pub mod gateway;
pub mod message;
pub mod retry;
pub mod standby;
pub mod tcp;
pub mod transport;
pub mod worker;

pub use client::NetClient;
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, FrameError};
pub use gateway::{Accepted, ClusterError, ClusterStats, Gateway, GatewayConfig};
pub use message::{Message, WireError, WireEvent, WireFailure, WireRequest, WireResponse};
pub use retry::RetryPolicy;
pub use standby::Standby;
pub use tcp::TcpTransport;
pub use transport::{loopback_pair, LoopbackTransport, NetError, Transport};
pub use worker::{Worker, WorkerConfig};
