//! The tiered RAM↔disk KV cache store.
//!
//! Entries are serialized caches placed on storage tiers, each tier backed
//! by a real [`StorageBackend`] (RAM maps, persistent disk segments —
//! `cb-storage`). The store owns the *policy* layer on top:
//!
//! - **Capacity-driven LRU spill.** An insert lands on the fastest tier
//!   that can hold the entry; when a tier is full its least-recently-used
//!   entries *spill* to the next tier down (instead of being dropped), and
//!   only the last tier evicts outright.
//! - **Promote-on-hit.** A read served by a slow tier moves the entry back
//!   up to the fast tier (spilling others to make room), so a working set
//!   that fits in RAM converges there.
//! - **Quantize-on-demote.** A tier marked [`TierConfig::quantized`]
//!   stores entries in the int8 cold format ([`crate::quantize`], ~4×
//!   smaller); bytes are transcoded at the tier boundary — quantized when
//!   they spill in, dequantized when they promote out — and callers only
//!   ever see full-precision entries.
//! - **Verified loads.** Every load path re-checks the entry's wire-format
//!   checksums ([`crate::serialize`]); a corrupt entry is evicted and
//!   reported as [`StoreError::Corrupt`] rather than ever handed out.
//! - **Persistence.** With a persistent last tier, [`KvStore::persist`]
//!   demotes every RAM-resident entry to it and flushes, and a new store
//!   built over the same backend re-indexes the surviving segments — KV
//!   state survives process restart.
//!
//! Lookup reports *which* tier served the hit so callers can charge the
//! matching device delay; [`KvStore::prefetch`] (see [`crate::prefetch`])
//! starts a layer-granular streaming read that the pipelined loader
//! overlaps with selective recompute.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use cb_model::KvCache;
use cb_storage::backend::{BackendError, MemBackend, StorageBackend};
use parking_lot::Mutex;

use crate::chunk::ChunkId;
use crate::quantize::{dequantize_entry, quantize_entry};
use crate::serialize::{
    decode, encode, parse_dims_any, sniff_format, verify_entry, DecodeError, EntryFormat,
};

/// Configuration of one storage tier.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Human-readable label ("cpu-ram", "nvme-ssd", …).
    pub label: String,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Store entries in the int8 cold format ([`crate::quantize`]): bytes
    /// are quantized as they land on this tier and dequantized as they
    /// leave it, cutting the tier's footprint ~4× at a bounded precision
    /// cost paid once per demote.
    pub quantized: bool,
}

impl TierConfig {
    /// A full-precision tier.
    pub fn new(label: &str, capacity: u64) -> Self {
        Self {
            label: label.to_string(),
            capacity,
            quantized: false,
        }
    }

    /// A quantized cold tier (int8-resident entries).
    pub fn quantized(label: &str, capacity: u64) -> Self {
        Self {
            quantized: true,
            ..Self::new(label, capacity)
        }
    }
}

/// Aggregate store counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped entirely (no slower tier could take them).
    pub evictions: u64,
    /// Successful inserts.
    pub inserts: u64,
    /// Entries demoted to a slower tier to make room.
    pub spills: u64,
    /// Entries moved back to the fast tier on a slow-tier hit.
    pub promotions: u64,
    /// Entries evicted because a load failed its checksum.
    pub corrupt_evictions: u64,
    /// Entries adopted from a shared persistent tier after another store
    /// handle (a sibling replica) wrote them (see
    /// [`cb_storage::backend::StorageBackend::discover`]).
    pub discovered: u64,
    /// Bytes read from non-RAM tiers (tier index > 0) to serve loads.
    pub loaded_bytes: u64,
    /// Bytes written downward by spills.
    pub spilled_bytes: u64,
    /// Entries transcoded to the int8 cold format at a tier boundary.
    pub quantizations: u64,
    /// Entries transcoded back to full precision at a tier boundary.
    pub dequantizations: u64,
    /// Bytes the cold format saved versus storing f32 (summed over every
    /// quantization).
    pub quantize_saved_bytes: u64,
    /// Background compaction passes completed by the tiers' backends
    /// (merged from [`cb_storage::MaintenanceStats`] at snapshot time).
    pub compactions: u64,
    /// Dead bytes reclaimed by those compactions.
    pub compaction_reclaimed_bytes: u64,
}

#[derive(Debug)]
struct IndexEntry {
    tier: usize,
    size: u64,
    /// The entry's `(n_layers, rows, width)` when known — both wire
    /// formats share it, so the tiering policy can compute the entry's
    /// *exact* size in either format before moving it across a quantized
    /// boundary. `None` for entries recovered or discovered without
    /// reading their bytes; backfilled on the first read or move.
    shape: Option<(u32, u32, u32)>,
    last_used: u64,
    /// Active streaming reads; a pinned entry is never spilled, promoted,
    /// or chosen as an eviction victim (its backing bytes are mid-read).
    pins: u32,
}

#[derive(Debug)]
struct TierState {
    cfg: TierConfig,
    backend: Arc<dyn StorageBackend>,
    used: u64,
}

#[derive(Debug)]
struct Inner {
    tiers: Vec<TierState>,
    index: HashMap<ChunkId, IndexEntry>,
    clock: u64,
    stats: StoreStats,
    peak_bytes: u64,
    /// Counters already pushed to the metrics registry (see
    /// [`KvStore::publish_metrics`]); the next publish pushes the delta.
    published: StoreStats,
}

/// Errors returned by store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The entry is larger than every tier's total capacity.
    TooLarge {
        /// Size of the rejected entry in bytes.
        size: u64,
    },
    /// A load failed its integrity checks; the poisoned entry has been
    /// evicted (a later lookup misses and can repair by re-precompute).
    Corrupt(DecodeError),
    /// A storage backend failed (I/O error, flusher gone).
    Backend(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TooLarge { size } => {
                write!(f, "entry of {size} bytes exceeds every tier capacity")
            }
            StoreError::Corrupt(e) => write!(f, "stored entry corrupt (evicted): {e}"),
            StoreError::Backend(e) => write!(f, "storage backend error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<BackendError> for StoreError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::Corrupt => StoreError::Corrupt(DecodeError::Corrupted),
            BackendError::Io(m) => StoreError::Backend(m),
        }
    }
}

/// A thread-safe tiered LRU store of serialized KV caches. Cloning is
/// cheap (`Arc` inside); clones share the same tiers and counters.
#[derive(Clone, Debug)]
pub struct KvStore {
    inner: Arc<Mutex<Inner>>,
}

/// Outcome of the locked lookup phase of a read.
pub(crate) enum ReadLoc {
    Miss,
    Hit {
        tier: usize,
        backend: Arc<dyn StorageBackend>,
        persistent: bool,
    },
}

impl KvStore {
    /// Creates an all-RAM store with the given tiers, fastest first.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn new(tiers: Vec<TierConfig>) -> Self {
        Self::with_backends(
            tiers
                .into_iter()
                .map(|cfg| (cfg, Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>))
                .collect(),
        )
    }

    /// Creates a store over explicit backends, fastest first. Persistent
    /// backends are re-indexed: entries they already hold (from a previous
    /// process) become servable immediately, and tiers recovered over
    /// capacity are trimmed by LRU spill/eviction.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn with_backends(tiers: Vec<(TierConfig, Arc<dyn StorageBackend>)>) -> Self {
        assert!(!tiers.is_empty(), "store needs at least one tier");
        let mut inner = Inner {
            tiers: tiers
                .into_iter()
                .map(|(cfg, backend)| TierState {
                    cfg,
                    backend,
                    used: 0,
                })
                .collect(),
            index: HashMap::new(),
            clock: 0,
            stats: StoreStats::default(),
            peak_bytes: 0,
            published: StoreStats::default(),
        };
        // Recovery: re-index whatever the backends already hold.
        for t in 0..inner.tiers.len() {
            for (key, size) in inner.tiers[t].backend.entries() {
                let id = ChunkId(key);
                if inner.index.contains_key(&id) {
                    // Duplicate across tiers: keep the faster copy.
                    inner.tiers[t].backend.remove(key);
                    continue;
                }
                inner.clock += 1;
                let clock = inner.clock;
                inner.index.insert(
                    id,
                    IndexEntry {
                        tier: t,
                        size,
                        shape: None,
                        last_used: clock,
                        pins: 0,
                    },
                );
                inner.tiers[t].used += size;
            }
        }
        for t in 0..inner.tiers.len() {
            // Trim recovered tiers down to their configured capacity.
            let _ = make_room(&mut inner, t, 0);
        }
        let used: u64 = inner.tiers.iter().map(|t| t.used).sum();
        inner.peak_bytes = used;
        Self {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Convenience: a single-tier RAM store (the paper's default
    /// configuration).
    pub fn single(label: &str, capacity: u64) -> Self {
        Self::new(vec![TierConfig::new(label, capacity)])
    }

    /// Inserts (or refreshes) a cache entry. Returns the tier index it
    /// landed on.
    pub fn insert(&self, id: ChunkId, cache: &KvCache) -> Result<usize, StoreError> {
        let bytes = encode(cache);
        self.insert_bytes(id, bytes)
    }

    /// Inserts pre-serialized bytes (used by tests and migration).
    pub fn insert_bytes(&self, id: ChunkId, bytes: Bytes) -> Result<usize, StoreError> {
        let size = bytes.len() as u64;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        // Refresh in place if present anywhere (entries are
        // content-addressed, so the bytes cannot differ).
        if let Some(e) = inner.index.get_mut(&id) {
            e.last_used = now;
            return Ok(e.tier);
        }
        // Place on the first tier whose capacity fits the entry's *exact*
        // size in that tier's resident format — a quantized tier stores
        // ~¼ of the f32 bytes, so it may admit an entry whose
        // full-precision size exceeds its capacity. If the transcode
        // falls back to passthrough (unparseable bytes) and the result
        // overflows the chosen tier, continue the search from the next
        // tier instead of rejecting an entry a larger tier could hold.
        let shape = entry_shape(&bytes);
        let mut start = 0;
        let (t, bytes) = loop {
            let found = inner
                .tiers
                .iter()
                .enumerate()
                .skip(start)
                .find_map(|(i, tier)| {
                    let need = match shape {
                        Some(shape) => format_len(tier.cfg.quantized, shape),
                        None => size as u128,
                    };
                    (tier.cfg.capacity as u128 >= need).then_some((i, tier.cfg.quantized))
                });
            let Some((t, quantized)) = found else {
                return Err(StoreError::TooLarge { size });
            };
            // Always transcode from the original bytes: carrying an
            // already-quantized candidate into a later f32 tier would
            // bake the precision loss in.
            let candidate = transcode_for_tier(&mut inner.stats, bytes.clone(), quantized);
            if candidate.len() as u64 <= inner.tiers[t].cfg.capacity {
                break (t, candidate);
            }
            start = t + 1;
        };
        let size = bytes.len() as u64;
        make_room(&mut inner, t, size)?;
        inner.tiers[t].backend.put(id.0, bytes)?;
        inner.index.insert(
            id,
            IndexEntry {
                tier: t,
                size,
                shape,
                last_used: now,
                pins: 0,
            },
        );
        inner.tiers[t].used += size;
        inner.stats.inserts += 1;
        let used: u64 = inner.tiers.iter().map(|tier| tier.used).sum();
        inner.peak_bytes = inner.peak_bytes.max(used);
        Ok(t)
    }

    /// Locked lookup phase shared by the read paths: bumps recency and the
    /// hit/miss counters, optionally pinning the entry for a streaming
    /// read. Retries of the same logical read pass `count_stats: false` so
    /// a tier-migration race does not double-count the hit.
    pub(crate) fn read_begin(&self, id: ChunkId, pin_streams: bool, count_stats: bool) -> ReadLoc {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        let Some(e) = inner.index.get_mut(&id) else {
            if count_stats {
                inner.stats.misses += 1;
            }
            return ReadLoc::Miss;
        };
        e.last_used = now;
        let (tier, size) = (e.tier, e.size);
        let backend = Arc::clone(&inner.tiers[tier].backend);
        let persistent = backend.persistent();
        if pin_streams && persistent {
            inner.index.get_mut(&id).expect("just seen").pins += 1;
        }
        if count_stats {
            inner.stats.hits += 1;
        }
        if tier > 0 {
            inner.stats.loaded_bytes += size;
        }
        ReadLoc::Hit {
            tier,
            backend,
            persistent,
        }
    }

    /// Attempts to adopt `id` from a shared persistent tier: another store
    /// handle over the same segment dir (a sibling cluster replica) may
    /// have persisted the entry after this store was built. On success the
    /// entry is indexed on the tier that holds it (making room by LRU
    /// spill) and becomes servable exactly like a recovered segment.
    ///
    /// `reclassify_miss` converts the miss the caller just counted into a
    /// hit — the read paths pass `true`; presence probes pass `false`.
    pub(crate) fn discover_entry(&self, id: ChunkId, reclassify_miss: bool) -> bool {
        // The caller's just-counted miss becomes a hit whenever discovery
        // succeeds — including when a concurrent insert/discovery raced us
        // to the index (each caller counted its own miss, so each
        // successful discovery reclassifies exactly one).
        let reclassify = |inner: &mut Inner| {
            if reclassify_miss {
                inner.stats.misses = inner.stats.misses.saturating_sub(1);
                inner.stats.hits += 1;
            }
        };
        let candidates: Vec<(usize, Arc<dyn StorageBackend>)> = {
            let mut inner = self.inner.lock();
            if inner.index.contains_key(&id) {
                reclassify(&mut inner); // raced: someone else adopted it
                return true;
            }
            inner
                .tiers
                .iter()
                .enumerate()
                .filter(|(_, t)| t.backend.persistent())
                .map(|(i, t)| (i, Arc::clone(&t.backend)))
                .collect()
        };
        for (t, backend) in candidates {
            // Filesystem probe outside the store lock.
            let Some(size) = backend.discover(id.0) else {
                continue;
            };
            let mut inner = self.inner.lock();
            if inner.index.contains_key(&id) {
                reclassify(&mut inner);
                return true;
            }
            if size > inner.tiers[t].cfg.capacity || make_room(&mut inner, t, size).is_err() {
                return false;
            }
            inner.clock += 1;
            let now = inner.clock;
            inner.index.insert(
                id,
                IndexEntry {
                    tier: t,
                    size,
                    shape: None,
                    last_used: now,
                    pins: 0,
                },
            );
            inner.tiers[t].used += size;
            inner.stats.discovered += 1;
            reclassify(&mut inner);
            let used: u64 = inner.tiers.iter().map(|tier| tier.used).sum();
            inner.peak_bytes = inner.peak_bytes.max(used);
            return true;
        }
        false
    }

    /// Drops a stale index mapping: the backend at `tier` no longer holds
    /// the bytes (a shared sibling removed or quarantined the segment), so
    /// keeping the mapping would turn every later lookup into a futile
    /// retry loop. Pinned entries and entries that already migrated to
    /// another tier are left alone.
    fn forget_if_at(&self, id: ChunkId, tier: usize) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.index.get(&id) {
            if e.tier == tier && e.pins == 0 {
                let size = e.size;
                inner.index.remove(&id);
                inner.tiers[tier].used -= size;
            }
        }
    }

    /// Looks up an entry; on a hit returns the decoded cache and the tier
    /// index that served it, bumping its recency. Every section checksum
    /// is verified; a corrupt entry is evicted and reported.
    pub fn get(&self, id: ChunkId) -> Result<Option<(KvCache, usize)>, StoreError> {
        match self.get_bytes(id)? {
            Some((bytes, tier)) => {
                let cache = decode(bytes).map_err(|e| {
                    self.evict_corrupt(id);
                    StoreError::Corrupt(e)
                })?;
                Ok(Some((cache, tier)))
            }
            None => Ok(None),
        }
    }

    /// Raw-bytes lookup (the streaming pipeline decodes layer ranges
    /// itself). The returned bytes are checksum-verified; a slow-tier hit
    /// promotes the entry back to the fast tier.
    pub fn get_bytes(&self, id: ChunkId) -> Result<Option<(Bytes, usize)>, StoreError> {
        // Unpinned reads race with concurrent spill/promote: the entry can
        // migrate tiers between the locked lookup and the backend read, in
        // which case the captured backend no longer holds the key. Re-run
        // the lookup instead of mis-reporting a present entry as a miss.
        for attempt in 0..8 {
            let (tier, backend) = match self.read_begin(id, false, attempt == 0) {
                ReadLoc::Miss => {
                    // A shared persistent tier may hold the entry even
                    // though this handle's index has never seen it.
                    if attempt == 0 && self.discover_entry(id, true) {
                        continue;
                    }
                    return Ok(None);
                }
                ReadLoc::Hit { tier, backend, .. } => (tier, backend),
            };
            // Backend I/O (possibly throttled disk) happens outside the lock.
            let bytes = match backend.get(id.0) {
                Ok(Some(b)) => b,
                Ok(None) => {
                    // Migrated concurrently (retry re-locates it) — or a
                    // shared sibling removed the segment for good, in which
                    // case the stale mapping must go or every later lookup
                    // would spin through this same futile retry.
                    self.forget_if_at(id, tier);
                    continue;
                }
                Err(BackendError::Corrupt) => {
                    self.evict_corrupt(id);
                    return Err(StoreError::Corrupt(DecodeError::Corrupted));
                }
                Err(e) => return Err(e.into()),
            };
            if let Err(e) = verify_entry(&bytes) {
                self.evict_corrupt(id);
                return Err(StoreError::Corrupt(e));
            }
            // Callers always see full precision: a quantized cold-tier hit
            // is transcoded back before it leaves the store.
            let bytes = if sniff_format(&bytes) == Ok(EntryFormat::Quantized) {
                match dequantize_entry(&bytes) {
                    Ok(f) => {
                        self.inner.lock().stats.dequantizations += 1;
                        f
                    }
                    Err(e) => {
                        self.evict_corrupt(id);
                        return Err(StoreError::Corrupt(e));
                    }
                }
            } else {
                bytes
            };
            if tier > 0 {
                let mut inner = self.inner.lock();
                let _ = promote(&mut inner, id, &bytes);
            }
            return Ok(Some((bytes, tier)));
        }
        // Only reachable under pathological migration churn: treat as a
        // removal race.
        Ok(None)
    }

    /// Unpins after a streaming read and, when the stream completed with
    /// the full entry bytes, promotes the entry to the fast tier.
    pub(crate) fn stream_finished(&self, id: ChunkId, assembled: Option<Bytes>) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.index.get_mut(&id) {
            e.pins = e.pins.saturating_sub(1);
        }
        if let Some(bytes) = assembled {
            let _ = promote(&mut inner, id, &bytes);
        }
    }

    /// Promotes a verified slow-tier read back to the fast tier.
    pub(crate) fn promote_bytes(&self, id: ChunkId, bytes: &Bytes) {
        let mut inner = self.inner.lock();
        let _ = promote(&mut inner, id, bytes);
    }

    /// Evicts an entry whose bytes failed verification.
    pub(crate) fn evict_corrupt(&self, id: ChunkId) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.index.remove(&id) {
            inner.tiers[e.tier].used -= e.size;
            inner.tiers[e.tier].backend.remove(id.0);
            inner.stats.corrupt_evictions += 1;
        }
    }

    /// Removes an entry from whichever tier holds it, reclaiming its
    /// bytes on *every* backend (stale persisted copies included).
    /// Returns `true` if an entry was present.
    pub fn remove(&self, id: ChunkId) -> bool {
        let mut inner = self.inner.lock();
        let present = match inner.index.remove(&id) {
            Some(e) => {
                inner.tiers[e.tier].used -= e.size;
                true
            }
            None => false,
        };
        let mut any = false;
        for tier in &inner.tiers {
            any |= tier.backend.remove(id.0);
        }
        present || any
    }

    /// Demotes every entry on a non-persistent tier to the last tier (when
    /// that tier is persistent) and flushes it, so the store's contents
    /// survive the process. Entries that cannot fit are left in RAM (and
    /// lost on exit); the last tier's own LRU may evict to make room.
    pub fn persist(&self) -> Result<(), StoreError> {
        let backend = {
            let mut inner = self.inner.lock();
            let last = inner.tiers.len() - 1;
            let backend = Arc::clone(&inner.tiers[last].backend);
            if !backend.persistent() {
                return Ok(());
            }
            let mut ids: Vec<(ChunkId, u64)> = inner
                .index
                .iter()
                .filter(|(_, e)| e.tier < last && e.pins == 0)
                .map(|(&id, e)| (id, e.last_used))
                .collect();
            // Oldest first, so if the persistent tier must evict, it
            // sacrifices the least-recently-used spills.
            ids.sort_by_key(|&(_, used)| used);
            for (id, _) in ids {
                demote_to(&mut inner, id, last, false)?;
            }
            backend
        };
        backend.flush().map_err(StoreError::from)
    }

    /// Copies one entry's bytes onto the last tier's backend when that
    /// tier is persistent, *without* changing the entry's residency — the
    /// fast-tier copy keeps serving, and the persistent copy becomes
    /// discoverable by sibling stores over a shared segment dir. No-op
    /// (`Ok(false)`) when the last tier is not persistent or the entry is
    /// already on it. Cluster registration uses this so every registered
    /// chunk is servable by every replica.
    pub fn replicate_to_persistent(&self, id: ChunkId) -> Result<bool, StoreError> {
        let (src, dst) = {
            let inner = self.inner.lock();
            let last = inner.tiers.len() - 1;
            let Some(e) = inner.index.get(&id) else {
                return Ok(false);
            };
            if e.tier == last || !inner.tiers[last].backend.persistent() {
                return Ok(false);
            }
            (
                Arc::clone(&inner.tiers[e.tier].backend),
                Arc::clone(&inner.tiers[last].backend),
            )
        };
        // Source read and destination write outside the lock; the source
        // is a RAM tier in every shipped configuration.
        let Some(bytes) = src.get(id.0)? else {
            return Ok(false); // migrated/removed concurrently
        };
        let bytes = {
            let mut inner = self.inner.lock();
            let quantized = inner.tiers[inner.tiers.len() - 1].cfg.quantized;
            transcode_for_tier(&mut inner.stats, bytes, quantized)
        };
        dst.put(id.0, bytes)?;
        Ok(true)
    }

    /// Blocks until every backend's queued write-behind work is durable.
    pub fn flush(&self) -> Result<(), StoreError> {
        let backends: Vec<Arc<dyn StorageBackend>> = {
            let inner = self.inner.lock();
            inner.tiers.iter().map(|t| Arc::clone(&t.backend)).collect()
        };
        for b in backends {
            b.flush()?;
        }
        Ok(())
    }

    /// True if the id is cached on any tier (does not bump recency or the
    /// hit/miss counters). An id absent from the index is still probed on
    /// shared persistent tiers — a sibling replica may have persisted it —
    /// and adopted on success, so registration never re-precomputes an
    /// entry the shared tier already holds.
    pub fn contains(&self, id: ChunkId) -> bool {
        if self.inner.lock().index.contains_key(&id) {
            return true;
        }
        self.discover_entry(id, false)
    }

    /// The tier currently holding `id`, if cached (no recency bump).
    pub fn tier_of(&self, id: ChunkId) -> Option<usize> {
        self.inner.lock().index.get(&id).map(|e| e.tier)
    }

    /// Number of entries across all tiers.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of configured tiers.
    pub fn n_tiers(&self) -> usize {
        self.inner.lock().tiers.len()
    }

    /// A tier's label.
    pub fn tier_label(&self, tier: usize) -> String {
        self.inner.lock().tiers[tier].cfg.label.clone()
    }

    /// A tier's configured capacity in bytes.
    pub fn tier_capacity(&self, tier: usize) -> u64 {
        self.inner.lock().tiers[tier].cfg.capacity
    }

    /// Bytes used on a tier.
    pub fn tier_used(&self, tier: usize) -> u64 {
        self.inner.lock().tiers[tier].used
    }

    /// Entries resident on a tier.
    pub fn tier_len(&self, tier: usize) -> usize {
        self.inner
            .lock()
            .index
            .values()
            .filter(|e| e.tier == tier)
            .count()
    }

    /// Bytes used across all tiers.
    pub fn used_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.tiers.iter().map(|t| t.used).sum()
    }

    /// High-water mark of [`KvStore::used_bytes`] over the store's life.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// Snapshot of the counters, folding in each backend's background
    /// maintenance work (segment-log compaction) so one snapshot tells the
    /// whole storage story.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        for t in &inner.tiers {
            if let Some(m) = t.backend.maintenance() {
                stats.compactions += m.compactions;
                stats.compaction_reclaimed_bytes += m.reclaimed_bytes;
            }
        }
        stats
    }

    /// Publishes this store's counters into the process-global metrics
    /// registry as `cb_store_*_total` series, pushing only the *delta*
    /// since the last publish — so repeated scrapes are idempotent and
    /// several stores in one process (cluster replicas) sum correctly
    /// into the shared series. Called by the control-plane worker on
    /// every metrics scrape; safe to call from anywhere.
    pub fn publish_metrics(&self) {
        let current = self.stats();
        let prev = {
            let mut inner = self.inner.lock();
            std::mem::replace(&mut inner.published, current)
        };
        let r = cb_obs::metrics::Registry::global();
        let d = |now: u64, then: u64| now.saturating_sub(then);
        for (name, now, then) in [
            ("cb_store_hits_total", current.hits, prev.hits),
            ("cb_store_misses_total", current.misses, prev.misses),
            (
                "cb_store_evictions_total",
                current.evictions,
                prev.evictions,
            ),
            ("cb_store_inserts_total", current.inserts, prev.inserts),
            ("cb_store_spills_total", current.spills, prev.spills),
            (
                "cb_store_promotions_total",
                current.promotions,
                prev.promotions,
            ),
            (
                "cb_store_corrupt_evictions_total",
                current.corrupt_evictions,
                prev.corrupt_evictions,
            ),
            (
                "cb_store_discovered_total",
                current.discovered,
                prev.discovered,
            ),
            (
                "cb_store_loaded_bytes_total",
                current.loaded_bytes,
                prev.loaded_bytes,
            ),
            (
                "cb_store_spilled_bytes_total",
                current.spilled_bytes,
                prev.spilled_bytes,
            ),
            (
                "cb_store_quantizations_total",
                current.quantizations,
                prev.quantizations,
            ),
            (
                "cb_store_dequantizations_total",
                current.dequantizations,
                prev.dequantizations,
            ),
            (
                "cb_store_quantize_saved_bytes_total",
                current.quantize_saved_bytes,
                prev.quantize_saved_bytes,
            ),
            (
                "cb_store_compactions_total",
                current.compactions,
                prev.compactions,
            ),
            (
                "cb_store_compaction_reclaimed_bytes_total",
                current.compaction_reclaimed_bytes,
                prev.compaction_reclaimed_bytes,
            ),
        ] {
            let delta = d(now, then);
            if delta > 0 {
                r.counter(name).add(delta);
            }
        }
    }

    /// Test hook: overwrite an entry's bytes in place (corruption
    /// injection).
    pub fn corrupt(&self, id: ChunkId, flip_byte: usize) -> bool {
        let inner = self.inner.lock();
        let Some(e) = inner.index.get(&id) else {
            return false;
        };
        let backend = Arc::clone(&inner.tiers[e.tier].backend);
        drop(inner);
        let Ok(Some(bytes)) = backend.get(id.0) else {
            return false;
        };
        let mut raw = bytes.to_vec();
        if raw.is_empty() {
            return false;
        }
        let idx = flip_byte % raw.len();
        raw[idx] ^= 0xFF;
        backend.put(id.0, Bytes::from(raw)).is_ok()
    }
}

/// The entry's serialized shape `(n_layers, rows, width)` when its dims
/// prefix parses *and* agrees with the byte length — the only case in
/// which the dims can be trusted for sizing decisions.
fn entry_shape(bytes: &[u8]) -> Option<(u32, u32, u32)> {
    let (format, n_layers, rows, width) = parse_dims_any(bytes).ok()?;
    (bytes.len() as u128 == format.entry_len_u128(n_layers, rows, width)).then_some((
        n_layers as u32,
        rows as u32,
        width as u32,
    ))
}

/// Exact byte size of an entry of `shape` in a tier's resident format
/// (u128: the shape may be untrusted u32 dims, whose product overflows).
fn format_len(quantized: bool, shape: (u32, u32, u32)) -> u128 {
    let (n_layers, rows, width) = shape;
    let format = if quantized {
        EntryFormat::Quantized
    } else {
        EntryFormat::F32
    };
    format.entry_len_u128(n_layers as usize, rows as usize, width as usize)
}

/// True when tier `next` can hold an entry of `size` bytes coming off
/// tier `t`. Exact for same-format moves and whenever the entry's shape
/// is known (the size in the destination's wire format is computed —
/// both directions across a quantized boundary). With an unknown shape a
/// conservative *over*-bound gates the move, and [`demote_to`]'s exact
/// post-transcode check has the final say.
fn tier_can_hold(
    inner: &Inner,
    t: usize,
    next: usize,
    size: u64,
    shape: Option<(u32, u32, u32)>,
) -> bool {
    let src_q = inner.tiers[t].cfg.quantized;
    let dst_q = inner.tiers[next].cfg.quantized;
    let need: u128 = if src_q == dst_q {
        size as u128
    } else if let Some(shape) = shape {
        format_len(dst_q, shape)
    } else if dst_q {
        // f32 → int8, shape unknown: an int8 layer block is at most 5/4
        // of its f32 block (width 1) and the headers are identical.
        size as u128 + size as u128 / 4
    } else {
        // int8 → f32, shape unknown: grows by strictly less than 4×.
        4 * size as u128
    };
    inner.tiers[next].cfg.capacity as u128 >= need
}

/// Spills or evicts LRU entries of tier `t` until `need` more bytes fit.
/// Pinned entries (mid-stream) are never victims; if only pinned entries
/// remain the tier is allowed to stay transiently over capacity.
fn make_room(inner: &mut Inner, t: usize, need: u64) -> Result<(), StoreError> {
    while inner.tiers[t].used + need > inner.tiers[t].cfg.capacity {
        let victim = inner
            .index
            .iter()
            .filter(|(_, e)| e.tier == t && e.pins == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&id, e)| (id, e.size, e.shape));
        let Some((victim, size, shape)) = victim else {
            break; // only pinned entries left
        };
        let next = t + 1;
        if next < inner.tiers.len() && tier_can_hold(inner, t, next, size, shape) {
            demote_to(inner, victim, next, true)?;
        } else {
            // Capacity eviction releases this store's claim only: on a
            // shared backend `forget` leaves the segment for sibling
            // replicas (which may serve it, or re-discover it here later);
            // private backends free the bytes outright.
            inner.tiers[t].backend.forget(victim.0);
            inner.tiers[t].used -= size;
            inner.index.remove(&victim);
            inner.stats.evictions += 1;
        }
    }
    Ok(())
}

/// Moves an entry's bytes down to tier `to` (cascading room-making there).
/// Runs under the store lock: the source read is a RAM map clone in every
/// shipped configuration (spills originate from RAM tiers; recovery trim
/// runs before the store is shared). A config stacking two throttled disk
/// tiers would pay that device read under the lock — split the read out
/// if such a hierarchy is ever added.
///
/// When the exact transcoded size exceeds the destination's capacity —
/// possible only when the admitting bound worked off an unknown shape, or
/// the transcode fell back to passthrough — the entry is never stored
/// over capacity: it is evicted (`evict_on_overflow`, the make_room path,
/// where leaving it in place would re-select it forever) or left where it
/// is (the persist path, whose contract keeps unfitting entries in RAM).
fn demote_to(
    inner: &mut Inner,
    id: ChunkId,
    to: usize,
    evict_on_overflow: bool,
) -> Result<(), StoreError> {
    let Some(e) = inner.index.get(&id) else {
        return Ok(());
    };
    let (from, size) = (e.tier, e.size);
    if from >= to {
        return Ok(());
    }
    let bytes = match inner.tiers[from].backend.get(id.0) {
        Ok(Some(b)) => b,
        Ok(None) => {
            // Index/backend drifted (concurrent remove): drop the index.
            inner.tiers[from].used -= size;
            inner.index.remove(&id);
            return Ok(());
        }
        Err(BackendError::Corrupt) => {
            inner.tiers[from].used -= size;
            inner.index.remove(&id);
            inner.stats.corrupt_evictions += 1;
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    };
    // Backfill the shape for entries recovered without their bytes, so
    // later moves across a quantized boundary are sized exactly.
    let shape = entry_shape(&bytes);
    if let Some(e) = inner.index.get_mut(&id) {
        if e.shape.is_none() {
            e.shape = shape;
        }
    }
    // Transcode to the destination's resident format (quantize into a
    // cold tier, dequantize out of one); the entry's accounted size
    // changes with it — the old size leaves `from`, the new enters `to`.
    let bytes = transcode_for_tier(&mut inner.stats, bytes, inner.tiers[to].cfg.quantized);
    let new_size = bytes.len() as u64;
    if new_size > inner.tiers[to].cfg.capacity {
        if evict_on_overflow {
            inner.tiers[from].backend.forget(id.0);
            inner.tiers[from].used -= size;
            inner.index.remove(&id);
            inner.stats.evictions += 1;
        }
        return Ok(());
    }
    make_room(inner, to, new_size)?;
    inner.tiers[to].backend.put(id.0, bytes)?;
    // Release the source copy: `forget` (not `remove`) so a shared source
    // tier keeps its segment for sibling handles.
    inner.tiers[from].backend.forget(id.0);
    inner.tiers[from].used -= size;
    inner.tiers[to].used += new_size;
    let e = inner.index.get_mut(&id).expect("still indexed");
    e.tier = to;
    e.size = new_size;
    inner.stats.spills += 1;
    inner.stats.spilled_bytes += new_size;
    Ok(())
}

/// Moves a slow-tier entry up to tier 0 after a verified read (the bytes
/// are already in hand, so promotion is a RAM write plus a slow-tier
/// delete). Skipped for pinned entries and entries that can never fit.
fn promote(inner: &mut Inner, id: ChunkId, bytes: &Bytes) -> Result<(), StoreError> {
    let Some(e) = inner.index.get_mut(&id) else {
        return Ok(());
    };
    if e.shape.is_none() {
        // Free shape backfill: the bytes are in hand anyway.
        e.shape = entry_shape(bytes);
    }
    if e.tier == 0 || e.pins > 0 {
        return Ok(());
    }
    // The bytes in hand carry whatever format the serving tier held (a
    // cold-tier streaming read assembles quantized bytes); tier 0 stores
    // its own format, so transcode at the boundary like any other move.
    let bytes = transcode_for_tier(
        &mut inner.stats,
        bytes.clone(),
        inner.tiers[0].cfg.quantized,
    );
    let new_size = bytes.len() as u64;
    if new_size > inner.tiers[0].cfg.capacity {
        return Ok(());
    }
    make_room(inner, 0, new_size)?;
    // The room-making cascade can reach the entry's own tier and demote
    // (or even evict) the entry being promoted — its location and
    // accounted size must be re-read, not carried over the cascade.
    let Some(e) = inner.index.get(&id) else {
        return Ok(());
    };
    let (from, size) = (e.tier, e.size);
    if from == 0 {
        return Ok(());
    }
    inner.tiers[0].backend.put(id.0, bytes)?;
    // Promote by *move* from a private tier, by *copy* from a shared one
    // (`forget` releases only this handle's claim): sibling replicas over
    // a shared segment dir serve from the same file, so deleting it here
    // would steal the entry from them.
    inner.tiers[from].backend.forget(id.0);
    inner.tiers[from].used -= size;
    inner.tiers[0].used += new_size;
    let e = inner.index.get_mut(&id).expect("still indexed");
    e.tier = 0;
    e.size = new_size;
    inner.stats.promotions += 1;
    Ok(())
}

/// Transcodes entry bytes to a tier's resident format — int8 for a
/// quantized tier, f32 otherwise. Bytes already in the right format pass
/// through untouched; bytes that fail to parse also pass through (the
/// read-path verifier owns corruption reporting, and storing them as-is
/// preserves the evidence).
fn transcode_for_tier(stats: &mut StoreStats, bytes: Bytes, quantized: bool) -> Bytes {
    match sniff_format(&bytes) {
        Ok(EntryFormat::F32) if quantized => match quantize_entry(&bytes) {
            Ok(q) => {
                stats.quantizations += 1;
                stats.quantize_saved_bytes += (bytes.len() - q.len()) as u64;
                q
            }
            Err(_) => bytes,
        },
        Ok(EntryFormat::Quantized) if !quantized => match dequantize_entry(&bytes) {
            Ok(f) => {
                stats.dequantizations += 1;
                f
            }
            Err(_) => bytes,
        },
        _ => bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::LayerKv;
    use cb_storage::DiskBackend;
    use cb_tensor::Matrix;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn toy_cache(rows: usize, fill: f32) -> KvCache {
        let mut c = KvCache::empty(1, 4);
        let k = Matrix::from_fn(rows, 4, |r, d| fill + (r * 4 + d) as f32);
        c.layers[0] = LayerKv::empty(4);
        c.layers[0].append(&k, &k);
        c.positions = (1..=rows).collect();
        c.tokens = vec![9; rows];
        c
    }

    fn entry_size(rows: usize) -> u64 {
        encode(&toy_cache(rows, 0.0)).len() as u64
    }

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cb-store-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ram_disk(ram_cap: u64, disk_cap: u64, dir: &std::path::Path) -> KvStore {
        KvStore::with_backends(vec![
            (TierConfig::new("ram", ram_cap), Arc::new(MemBackend::new())),
            (
                TierConfig::new("disk", disk_cap),
                Arc::new(DiskBackend::new(dir, None).unwrap()),
            ),
        ])
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let s = KvStore::single("ram", 1 << 20);
        let c = toy_cache(3, 1.0);
        let tier = s.insert(ChunkId(1), &c).unwrap();
        assert_eq!(tier, 0);
        let (got, t) = s.get(ChunkId(1)).unwrap().unwrap();
        assert_eq!(t, 0);
        assert_eq!(got, c);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn miss_is_counted() {
        let s = KvStore::single("ram", 1 << 20);
        assert!(s.get(ChunkId(42)).unwrap().is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let sz = entry_size(2);
        let s = KvStore::single("ram", 2 * sz);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        // Touch 1 so 2 becomes LRU.
        let _ = s.get(ChunkId(1));
        s.insert(ChunkId(3), &toy_cache(2, 3.0)).unwrap();
        assert!(s.contains(ChunkId(1)));
        assert!(!s.contains(ChunkId(2)), "LRU entry should be evicted");
        assert!(s.contains(ChunkId(3)));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn lru_spills_to_slower_tier_instead_of_dropping() {
        let dir = test_dir("spill");
        let sz = entry_size(2);
        let s = ram_disk(2 * sz, 10 * sz, &dir);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        let _ = s.get(ChunkId(1)); // 2 becomes LRU
        s.insert(ChunkId(3), &toy_cache(2, 3.0)).unwrap();
        assert_eq!(s.tier_of(ChunkId(2)), Some(1), "LRU spilled, not dropped");
        assert_eq!(s.tier_of(ChunkId(3)), Some(0));
        let st = s.stats();
        assert_eq!(st.spills, 1);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.spilled_bytes, sz);
        assert!(s.tier_used(0) <= 2 * sz);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_tier_hit_promotes_back_to_ram() {
        let dir = test_dir("promote");
        let sz = entry_size(2);
        let s = ram_disk(2 * sz, 10 * sz, &dir);
        for i in 1..=3u64 {
            s.insert(ChunkId(i), &toy_cache(2, i as f32)).unwrap();
        }
        assert_eq!(s.tier_of(ChunkId(1)), Some(1), "oldest spilled to disk");
        let (_, tier) = s.get(ChunkId(1)).unwrap().unwrap();
        assert_eq!(tier, 1, "hit reported from the serving tier");
        assert_eq!(s.tier_of(ChunkId(1)), Some(0), "promoted after the hit");
        let st = s.stats();
        assert_eq!(st.promotions, 1);
        assert!(st.loaded_bytes >= sz);
        assert!(s.tier_used(0) <= 2 * sz, "promotion made room first");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_survives_its_own_room_making_cascade() {
        // Single-entry tiers: promoting 1 out of the disk tier demotes 2
        // from RAM into that same disk tier, whose own room-making then
        // evicts the promoting entry mid-promotion. The accounting must
        // follow the entry's post-cascade location — subtracting the
        // stale pre-cascade size underflowed the tier counter.
        let dir = test_dir("promote-cascade");
        let sz = entry_size(2);
        let s = ram_disk(sz, sz, &dir);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        assert_eq!(s.tier_of(ChunkId(1)), Some(1), "oldest spilled to disk");
        // The bytes are in hand before the cascade, so the read itself
        // still succeeds even though the entry ends up evicted.
        let (got, tier) = s.get(ChunkId(1)).unwrap().unwrap();
        assert_eq!(tier, 1);
        assert_eq!(got, toy_cache(2, 1.0));
        assert!(s.tier_used(0) <= sz, "RAM within capacity");
        assert!(s.tier_used(1) <= sz, "disk counter must not underflow");
        assert_eq!(s.tier_of(ChunkId(2)), Some(1), "2 demoted by the cascade");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn q_entry_size(rows: usize) -> u64 {
        quantize_entry(&encode(&toy_cache(rows, 0.0)))
            .unwrap()
            .len() as u64
    }

    #[test]
    fn quantized_tier_demote_uses_exact_transcoded_size() {
        let sz = entry_size(2);
        let qsz = q_entry_size(2);
        // Cold capacity admits the old size/3 heuristic but not the real
        // int8 size: the demote must evict, never store over capacity.
        assert!(sz / 3 < qsz);
        let s = KvStore::new(vec![
            TierConfig::new("ram", sz),
            TierConfig::quantized("cold", qsz - 1),
        ]);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap(); // forces 1 out
        assert!(!s.contains(ChunkId(1)), "must be evicted, not wedged");
        assert_eq!(s.stats().evictions, 1);
        assert_eq!(s.tier_used(1), 0);
        // With capacity for the exact size, the same demote succeeds.
        let s = KvStore::new(vec![
            TierConfig::new("ram", sz),
            TierConfig::quantized("cold", qsz),
        ]);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        assert_eq!(s.tier_of(ChunkId(1)), Some(1));
        assert_eq!(s.tier_used(1), qsz);
    }

    #[test]
    fn dequantizing_demote_uses_exact_f32_size() {
        let sz = entry_size(2);
        let qsz = q_entry_size(2);
        // The old policy gated this demote on the quantized resident size
        // and then stored the ~4× dequantized entry over capacity.
        let s = KvStore::new(vec![
            TierConfig::quantized("q-ram", qsz),
            TierConfig::new("f32-disk", sz - 1),
        ]);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert_eq!(s.tier_used(0), qsz);
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        assert!(!s.contains(ChunkId(1)), "exact f32 size exceeds the tier");
        assert_eq!(s.tier_used(1), 0);
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn insert_falls_past_a_quantized_tier_too_small_for_the_entry() {
        let sz = entry_size(2);
        let qsz = q_entry_size(2);
        // The old code picked the cold tier off the size/3 heuristic and
        // returned TooLarge when the exact int8 size overflowed it,
        // instead of trying the larger tier below.
        let s = KvStore::new(vec![
            TierConfig::quantized("tiny-cold", qsz - 1),
            TierConfig::new("big", 4 * sz),
        ]);
        let c = toy_cache(2, 1.0);
        assert_eq!(s.insert(ChunkId(1), &c).unwrap(), 1, "falls through");
        assert_eq!(s.get(ChunkId(1)).unwrap().unwrap().0, c);
        // Still TooLarge when no tier fits the exact size.
        let s = KvStore::new(vec![TierConfig::quantized("tiny", qsz - 1)]);
        assert!(matches!(
            s.insert(ChunkId(1), &c),
            Err(StoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn oversized_entry_falls_through_to_bigger_tier() {
        let small = entry_size(2);
        let s = KvStore::new(vec![
            TierConfig::new("ram", small),
            TierConfig::new("ssd", 100 * small),
        ]);
        let tier = s.insert(ChunkId(7), &toy_cache(10, 0.0)).unwrap();
        assert_eq!(tier, 1, "large entry should land on the SSD tier");
    }

    #[test]
    fn entry_larger_than_everything_is_rejected() {
        let s = KvStore::single("ram", 16);
        let err = s.insert(ChunkId(1), &toy_cache(8, 0.0)).unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { .. }));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let s = KvStore::single("ram", 1 << 20);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn corrupt_entry_is_reported_and_evicted() {
        // Satellite regression: a flipped byte must surface as
        // StoreError::Corrupt AND evict the entry, so the next lookup is a
        // clean miss that re-precompute can repair — never poisoned KV.
        let s = KvStore::single("ram", 1 << 20);
        let c = toy_cache(3, 1.0);
        s.insert(ChunkId(1), &c).unwrap();
        let n = encode(&c).len();
        for flip in [6usize, 40, n - 9] {
            // header, layer data, last layer byte
            let s = KvStore::single("ram", 1 << 20);
            s.insert(ChunkId(1), &c).unwrap();
            assert!(s.corrupt(ChunkId(1), flip));
            let err = s.get(ChunkId(1)).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt(_)), "flip {flip}: {err}");
            assert!(!s.contains(ChunkId(1)), "flip {flip}: must be evicted");
            assert_eq!(s.stats().corrupt_evictions, 1);
            // Round-trip repair: reinsert serves cleanly again.
            s.insert(ChunkId(1), &c).unwrap();
            assert_eq!(s.get(ChunkId(1)).unwrap().unwrap().0, c);
        }
    }

    #[test]
    fn used_bytes_tracked() {
        let s = KvStore::single("ram", 1 << 20);
        assert_eq!(s.tier_used(0), 0);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert_eq!(s.tier_used(0), entry_size(2));
    }

    #[test]
    fn remove_reclaims_capacity() {
        let s = KvStore::single("ram", 1 << 20);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert!(s.tier_used(0) > 0);
        assert!(s.remove(ChunkId(1)));
        assert!(!s.contains(ChunkId(1)));
        assert_eq!(s.tier_used(0), 0);
        assert_eq!(s.len(), 0);
        assert!(!s.remove(ChunkId(1)), "second removal is a no-op");
        assert_eq!(
            s.peak_bytes(),
            entry_size(2),
            "peak survives removal as a high-water mark"
        );
    }

    #[test]
    fn persist_then_reopen_serves_without_reinsert() {
        let dir = test_dir("persist");
        let c1 = toy_cache(2, 1.0);
        let c2 = toy_cache(3, 2.0);
        {
            let s = ram_disk(1 << 20, 1 << 20, &dir);
            s.insert(ChunkId(1), &c1).unwrap();
            s.insert(ChunkId(2), &c2).unwrap();
            assert_eq!(s.tier_of(ChunkId(1)), Some(0), "fits in RAM while live");
            s.persist().unwrap();
            assert_eq!(s.tier_of(ChunkId(1)), Some(1), "persist demotes to disk");
        }
        let s = ram_disk(1 << 20, 1 << 20, &dir);
        assert_eq!(s.len(), 2, "recovered from the cache dir");
        assert_eq!(s.tier_of(ChunkId(2)), Some(1));
        let (got, tier) = s.get(ChunkId(2)).unwrap().unwrap();
        assert_eq!(got, c2);
        assert_eq!(tier, 1);
        assert_eq!(s.tier_of(ChunkId(2)), Some(0), "recovered hit promotes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sibling_stores_over_one_shared_dir_discover_entries() {
        let dir = test_dir("shared");
        let mk = || {
            KvStore::with_backends(vec![
                (
                    TierConfig::new("ram", 1 << 20),
                    Arc::new(MemBackend::new()) as Arc<dyn cb_storage::backend::StorageBackend>,
                ),
                (
                    TierConfig::new("disk", 1 << 20),
                    Arc::new(DiskBackend::open_shared(&dir, None).unwrap()),
                ),
            ])
        };
        let a = mk();
        let b = mk(); // built before `a` persists anything
        let c = toy_cache(3, 1.0);
        a.insert(ChunkId(1), &c).unwrap();
        a.persist().unwrap();

        // `b` never saw the insert, but the shared tier holds the segment:
        // contains() adopts it, get() serves it, prefetch() streams it.
        assert!(b.contains(ChunkId(1)), "discovered via the shared tier");
        assert_eq!(b.tier_of(ChunkId(1)), Some(1));
        let (got, tier) = b.get(ChunkId(1)).unwrap().unwrap();
        assert_eq!((got, tier), (c.clone(), 1));
        assert_eq!(b.stats().discovered, 1);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 0);

        // A store built after the persist sees the segment at startup
        // recovery (no discovery needed) and can stream it immediately.
        let b2 = mk();
        let mut h = b2.prefetch(ChunkId(1)).unwrap().expect("recovered");
        assert_eq!(h.tier(), 1);
        assert_eq!(h.meta().unwrap().rows, 3);
        assert_eq!(b2.stats().discovered, 0, "recovery indexed it already");

        // The prefetch path discovers too: persist a *new* entry from `a`
        // and stream it from `b2`, whose index has never seen it.
        let c2 = toy_cache(4, 2.0);
        a.insert(ChunkId(2), &c2).unwrap();
        a.persist().unwrap();
        let mut h = b2.prefetch(ChunkId(2)).unwrap().expect("discovered");
        assert_eq!(h.tier(), 1);
        assert_eq!(h.meta().unwrap().rows, 4);
        assert_eq!(b2.stats().discovered, 1);

        // An id on no tier anywhere stays a clean miss.
        assert!(!b.contains(ChunkId(99)));
        assert!(b.get(ChunkId(99)).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replicate_to_persistent_copies_without_demoting() {
        let dir = test_dir("replicate");
        let s = ram_disk(1 << 20, 1 << 20, &dir);
        let c = toy_cache(3, 4.0);
        s.insert(ChunkId(5), &c).unwrap();
        assert_eq!(s.tier_of(ChunkId(5)), Some(0));
        assert!(s.replicate_to_persistent(ChunkId(5)).unwrap());
        s.flush().unwrap();
        // Residency unchanged: the RAM copy still serves as a tier-0 hit.
        assert_eq!(s.tier_of(ChunkId(5)), Some(0));
        let (_, tier) = s.get(ChunkId(5)).unwrap().unwrap();
        assert_eq!(tier, 0);
        // But a sibling store over the same dir can serve the copy.
        let sibling = ram_disk(1 << 20, 1 << 20, &dir);
        assert_eq!(sibling.get(ChunkId(5)).unwrap().unwrap().0, c);
        // Single-tier / already-persistent cases are clean no-ops.
        let ram_only = KvStore::single("ram", 1 << 20);
        ram_only.insert(ChunkId(1), &c).unwrap();
        assert!(!ram_only.replicate_to_persistent(ChunkId(1)).unwrap());
        assert!(!s.replicate_to_persistent(ChunkId(404)).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_tier_capacity_eviction_keeps_sibling_segments() {
        // Regression (review finding): LRU eviction at a *shared* last
        // tier must release only this handle's claim — unlinking the
        // segment would steal it from sibling replicas.
        let dir = test_dir("shared-evict");
        let sz = entry_size(2);
        let shared_store = |disk_cap: u64| {
            KvStore::with_backends(vec![(
                TierConfig::new("disk", disk_cap),
                Arc::new(DiskBackend::open_shared(&dir, None).unwrap())
                    as Arc<dyn cb_storage::backend::StorageBackend>,
            )])
        };
        let a = shared_store(10 * sz);
        for i in 0..3u64 {
            a.insert(ChunkId(i), &toy_cache(2, i as f32)).unwrap();
        }
        a.flush().unwrap();
        // A capacity-starved sibling over the same dir: recovery trims its
        // *claims* to capacity, but every segment file must survive.
        let b = shared_store(sz);
        assert_eq!(b.len(), 1, "sibling claims trimmed to capacity");
        for i in 0..3u64 {
            assert_eq!(
                a.get(ChunkId(i)).unwrap().unwrap().0,
                toy_cache(2, i as f32),
                "entry {i} must survive the sibling's eviction"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_trims_to_capacity() {
        let dir = test_dir("trim");
        let sz = entry_size(2);
        {
            let s = ram_disk(1 << 20, 10 * sz, &dir);
            for i in 0..5u64 {
                s.insert(ChunkId(i), &toy_cache(2, i as f32)).unwrap();
            }
            s.persist().unwrap();
        }
        // Reopen with a disk tier that only fits two entries.
        let s = ram_disk(1 << 20, 2 * sz, &dir);
        assert_eq!(s.len(), 2, "recovered index trimmed to capacity");
        assert!(s.tier_used(1) <= 2 * sz);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
