//! A tiny leveled stderr logger: `CB_LOG=debug|info|warn|error|off`
//! filter (default `info`), one global writer lock so concurrent lines
//! never interleave, timestamps relative to process start. The `cb_*!`
//! macros check [`enabled`] **before** evaluating format arguments, so a
//! disabled `cb_debug!` of a frame costs one relaxed load — no
//! allocation, no formatting.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

const LEVEL_OFF: u8 = 4;
const LEVEL_UNSET: u8 = 255;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    match std::env::var("CB_LOG").as_deref() {
        Ok("debug") => Level::Debug as u8,
        Ok("info") => Level::Info as u8,
        Ok("warn") => Level::Warn as u8,
        Ok("error") => Level::Error as u8,
        Ok("off") | Ok("none") => LEVEL_OFF,
        _ => Level::Info as u8,
    }
}

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return v;
    }
    let parsed = level_from_env();
    // A racing first caller may store the same parsed value; harmless.
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the `CB_LOG` filter programmatically (tests, bins with a
/// `--quiet`/`--verbose` flag). `None` silences everything.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(
        level.map(|l| l as u8).unwrap_or(LEVEL_OFF),
        Ordering::Relaxed,
    );
}

/// True when a record at `level` would be written. Inline and cheap —
/// the macros call this before touching their format arguments.
#[inline]
pub fn enabled(level: Level) -> bool {
    if cfg!(feature = "noop") || !crate::enabled() {
        return false;
    }
    level as u8 >= max_level()
}

/// Writes one formatted record. Call through the macros, which gate on
/// [`enabled`] first.
pub fn write(level: Level, target: &str, args: fmt::Arguments<'_>) {
    static WRITER: Mutex<()> = Mutex::new(());
    let secs = crate::now_nanos() as f64 / 1e9;
    let _guard = WRITER.lock().unwrap();
    let mut err = std::io::stderr().lock();
    // A failed stderr write has nowhere to report; drop it.
    let _ = writeln!(err, "[{secs:9.3}s {:5} {target}] {args}", level.tag());
}

/// Logs at an explicit level: `cb_log!(Level::Warn, "gateway", "...")`.
#[macro_export]
macro_rules! cb_log {
    ($lvl:expr, $tgt:expr, $($arg:tt)*) => {
        if $crate::log::enabled($lvl) {
            $crate::log::write($lvl, $tgt, ::core::format_args!($($arg)*));
        }
    };
}

/// Debug-level log; format arguments are not evaluated when disabled.
#[macro_export]
macro_rules! cb_debug {
    ($tgt:expr, $($arg:tt)*) => { $crate::cb_log!($crate::log::Level::Debug, $tgt, $($arg)*) };
}

/// Info-level log.
#[macro_export]
macro_rules! cb_info {
    ($tgt:expr, $($arg:tt)*) => { $crate::cb_log!($crate::log::Level::Info, $tgt, $($arg)*) };
}

/// Warn-level log.
#[macro_export]
macro_rules! cb_warn {
    ($tgt:expr, $($arg:tt)*) => { $crate::cb_log!($crate::log::Level::Warn, $tgt, $($arg)*) };
}

/// Error-level log.
#[macro_export]
macro_rules! cb_error {
    ($tgt:expr, $($arg:tt)*) => { $crate::cb_log!($crate::log::Level::Error, $tgt, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    /// Serializes the tests that mutate the global filter.
    static FILTER_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn filter_gates_by_level() {
        let _serial = FILTER_TESTS.lock().unwrap();
        // Force a known filter (the env default may be anything here).
        set_max_level(Some(Level::Warn));
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Info));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Error));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        // Restore the env-derived default for other tests.
        MAX_LEVEL.store(LEVEL_UNSET, Ordering::Relaxed);
    }

    #[test]
    fn disabled_macro_does_not_evaluate_arguments() {
        let _serial = FILTER_TESTS.lock().unwrap();
        set_max_level(Some(Level::Error));
        let mut evaluated = false;
        cb_debug!("test", "{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "disabled log must not evaluate its arguments");
        MAX_LEVEL.store(LEVEL_UNSET, Ordering::Relaxed);
    }
}
