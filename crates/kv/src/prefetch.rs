//! Layer-granular prefetch: the async loader that lets the pipelined
//! blend hide disk latency behind selective recompute.
//!
//! [`KvStore::prefetch`] starts a read *without* waiting for the bytes:
//!
//! - A RAM-tier hit wraps the in-memory bytes in an [`EntryReader`] —
//!   layers decode on demand, nothing to overlap.
//! - A persistent-tier hit spawns a reader thread that streams the entry
//!   off the backend one layer block at a time through a bounded channel
//!   (capacity 2). The device read of layer `i+1` proceeds while the
//!   consumer (the fusor's loader) is still decoding/recomputing layer
//!   `i` — the §5.2 compute/load pipeline, on real threads.
//!
//! Every block is checksum-verified before its bytes are handed out, and a
//! completed stream *promotes* the entry to the RAM tier (the reader
//! necessarily assembled the full bytes, so promotion costs no extra I/O).
//! The entry is pinned for the stream's duration so LRU spill/eviction
//! cannot delete the segment mid-read.

use bytes::{Bytes, BytesMut};
use cb_model::LayerKv;
use cb_storage::backend::ReadStream;
use crossbeam::channel::{bounded, Receiver};

use crate::chunk::ChunkId;
use crate::serialize::{
    header_len, parse_dims_any, parse_header, DecodeError, EntryFormat, EntryMeta,
};
use crate::store::{KvStore, ReadLoc, StoreError};

use bytes::BufMut;

enum State {
    /// In-memory entry: random-access layer decode.
    Ram(crate::serialize::EntryReader),
    /// Streaming read off a persistent tier. The record streams in its
    /// *stored* format: a quantized cold-tier entry arrives as int8
    /// blocks that dequantize per layer on decode — the whole entry is
    /// never materialized in f32 just to start streaming.
    Stream {
        meta_rx: Receiver<Result<(EntryMeta, EntryFormat), StoreError>>,
        block_rx: Receiver<Result<Bytes, StoreError>>,
        meta: Option<(EntryMeta, EntryFormat)>,
        next: usize,
    },
}

/// A handle to an in-flight entry read (see module docs). Obtain one per
/// chunk *before* blending starts, then consume layers in order.
pub struct PrefetchHandle {
    tier: usize,
    origin: Option<(KvStore, ChunkId)>,
    state: State,
}

impl std::fmt::Debug for PrefetchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.state {
            State::Ram(_) => "ram",
            State::Stream { .. } => "stream",
        };
        f.debug_struct("PrefetchHandle")
            .field("tier", &self.tier)
            .field("kind", &kind)
            .finish()
    }
}

impl PrefetchHandle {
    /// Wraps already-loaded entry bytes (no store, no streaming) — used by
    /// the pipeline for caller-supplied parts.
    pub fn from_bytes(bytes: Bytes, tier: usize) -> Result<Self, DecodeError> {
        Ok(Self {
            tier,
            origin: None,
            state: State::Ram(crate::serialize::EntryReader::new(bytes)?),
        })
    }

    /// Index of the store tier serving this read (0 = fastest).
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Blocks until the entry's header is available and returns it.
    pub fn meta(&mut self) -> Result<&EntryMeta, StoreError> {
        match &mut self.state {
            State::Ram(reader) => Ok(reader.meta()),
            State::Stream { meta_rx, meta, .. } => {
                if meta.is_none() {
                    let got = meta_rx
                        .recv()
                        .map_err(|_| StoreError::Backend("prefetch reader died".into()))??;
                    *meta = Some(got);
                }
                Ok(&meta.as_ref().expect("just filled").0)
            }
        }
    }

    /// Decodes layer `l` into `out`, blocking until its bytes are
    /// available. Streamed handles must consume layers in order
    /// (`0, 1, 2, …`) — exactly how the pipelined loader walks them.
    pub fn layer_into(&mut self, l: usize, out: &mut LayerKv) -> Result<(), StoreError> {
        match &mut self.state {
            State::Ram(reader) => reader.layer_into(l, out).map_err(|e| {
                if let Some((store, id)) = &self.origin {
                    store.evict_corrupt(*id);
                }
                StoreError::Corrupt(e)
            }),
            State::Stream {
                block_rx,
                meta,
                next,
                ..
            } => {
                assert_eq!(l, *next, "streamed layers must be consumed in order");
                let (m, format) = meta.as_ref().expect("call meta() before layer_into()");
                let block = block_rx
                    .recv()
                    .map_err(|_| StoreError::Backend("prefetch reader died".into()))??;
                *next += 1;
                format
                    .decode_layer_block(&block, m.rows, m.width, out)
                    .map_err(|e| {
                        if let Some((store, id)) = &self.origin {
                            store.evict_corrupt(*id);
                        }
                        StoreError::Corrupt(e)
                    })
            }
        }
    }
}

/// Reads exactly `len` bytes from a backend stream (short reads mean the
/// segment is shorter than its header declared — torn).
fn read_exactly(stream: &mut (dyn ReadStream + Send), len: usize) -> Result<Bytes, StoreError> {
    let first = stream.read_next(len).map_err(StoreError::from)?;
    if first.len() == len {
        return Ok(first);
    }
    let mut buf = BytesMut::with_capacity(len);
    buf.put_slice(&first);
    while buf.len() < len {
        let chunk = stream
            .read_next(len - buf.len())
            .map_err(StoreError::from)?;
        if chunk.is_empty() {
            return Err(StoreError::Corrupt(DecodeError::Truncated));
        }
        buf.put_slice(&chunk);
    }
    Ok(buf.freeze())
}

impl KvStore {
    /// Begins an asynchronous entry read (see module docs). Returns
    /// `Ok(None)` on a store miss. The hit/miss/recency accounting matches
    /// [`KvStore::get_bytes`].
    pub fn prefetch(&self, id: ChunkId) -> Result<Option<PrefetchHandle>, StoreError> {
        // Like get_bytes, an unpinned RAM-tier lookup races concurrent
        // spill/promote; retry the locked lookup when the captured backend
        // no longer holds the key. (The persistent branch pins, so it
        // cannot lose the race and never loops.)
        let mut located = None;
        for attempt in 0..8 {
            match self.read_begin(id, true, attempt == 0) {
                ReadLoc::Miss => {
                    // A shared persistent tier may hold the entry even if
                    // this handle has not indexed it (sibling replica
                    // persisted it after this store was built).
                    if attempt == 0 && self.discover_entry(id, true) {
                        continue;
                    }
                    return Ok(None);
                }
                ReadLoc::Hit {
                    tier,
                    backend,
                    persistent,
                } => {
                    if persistent {
                        located = Some((tier, backend));
                        break;
                    }
                    // RAM-resident: the bytes are already in memory;
                    // verification happens per layer at decode time.
                    let bytes = match backend.get(id.0) {
                        Ok(Some(b)) => b,
                        Ok(None) => continue, // migrated or removed
                        Err(e) => return Err(e.into()),
                    };
                    // Multi-RAM-tier configurations still promote on a
                    // slow hit (Bytes clones are refcount bumps).
                    let promote_copy = (tier > 0).then(|| bytes.clone());
                    let reader = crate::serialize::EntryReader::new(bytes).map_err(|e| {
                        self.evict_corrupt(id);
                        StoreError::Corrupt(e)
                    })?;
                    if let Some(b) = promote_copy {
                        self.promote_bytes(id, &b);
                    }
                    return Ok(Some(PrefetchHandle {
                        tier,
                        origin: Some((self.clone(), id)),
                        state: State::Ram(reader),
                    }));
                }
            }
        }
        let Some((tier, backend)) = located else {
            return Ok(None); // pathological migration churn: removal race
        };

        // Persistent tier: stream layer blocks off the device on a reader
        // thread. The entry was pinned by read_begin.
        let (meta_tx, meta_rx) = bounded::<Result<(EntryMeta, EntryFormat), StoreError>>(2);
        let (block_tx, block_rx) = bounded::<Result<Bytes, StoreError>>(2);
        let store = self.clone();
        std::thread::Builder::new()
            .name("cb-prefetch".to_string())
            .spawn(move || {
                let mut assembled = BytesMut::new();
                let mut complete = false;
                let run = (|| -> Result<(), StoreError> {
                    let mut stream = backend
                        .open_read(id.0)
                        .map_err(StoreError::from)?
                        .ok_or_else(|| StoreError::Backend("entry vanished before read".into()))?;
                    let stream = &mut *stream;
                    let payload_len = stream.payload_len();
                    let dims = read_exactly(stream, crate::serialize::DIMS_LEN)?;
                    // The dims are not checksum-verified yet; bound every
                    // allocation they imply against the backend-reported
                    // payload length before trusting them (a corrupt
                    // `rows` must surface as Corrupt, not as a huge
                    // allocation).
                    let (format, n_layers, rows, width) =
                        parse_dims_any(&dims).map_err(StoreError::Corrupt)?;
                    if format.entry_len_u128(n_layers, rows, width) != payload_len as u128 {
                        return Err(StoreError::Corrupt(DecodeError::Truncated));
                    }
                    let mut header = BytesMut::with_capacity(header_len(rows));
                    header.put_slice(&dims);
                    header.put_slice(&read_exactly(stream, header_len(rows) - dims.len())?);
                    let header = header.freeze();
                    let meta = parse_header(&header).map_err(StoreError::Corrupt)?;
                    assembled.put_slice(&header);
                    if meta_tx.send(Ok((meta.clone(), format))).is_err() {
                        return Ok(()); // handle dropped before the header
                    }
                    let block_len = format.layer_block_len(meta.rows, meta.width);
                    for _ in 0..meta.n_layers {
                        let block = read_exactly(stream, block_len)?;
                        assembled.put_slice(&block);
                        if block_tx.send(Ok(block)).is_err() {
                            return Ok(()); // handle dropped mid-stream
                        }
                    }
                    complete = true;
                    Ok(())
                })();
                match run {
                    Ok(()) => {
                        let promoted = complete.then(|| assembled.freeze());
                        store.stream_finished(id, promoted);
                    }
                    Err(e) => {
                        if matches!(e, StoreError::Corrupt(_)) {
                            store.evict_corrupt(id);
                        }
                        let _ = meta_tx.send(Err(e.clone()));
                        let _ = block_tx.send(Err(e));
                        store.stream_finished(id, None);
                    }
                }
            })
            .map_err(|e| {
                // The reader never ran: release the pin read_begin took.
                self.stream_finished(id, None);
                StoreError::Backend(e.to_string())
            })?;
        Ok(Some(PrefetchHandle {
            tier,
            origin: Some((self.clone(), id)),
            state: State::Stream {
                meta_rx,
                block_rx,
                meta: None,
                next: 0,
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::encode;
    use crate::store::TierConfig;
    use cb_model::KvCache;
    use cb_storage::backend::MemBackend;
    use cb_storage::{DiskBackend, Throttle};
    use cb_tensor::Matrix;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn toy_cache(rows: usize, layers: usize, fill: f32) -> KvCache {
        let mut c = KvCache::empty(layers, 4);
        for l in 0..layers {
            let k = Matrix::from_fn(rows, 4, |r, d| fill + (l * 1000 + r * 4 + d) as f32);
            let v = Matrix::from_fn(rows, 4, |r, d| -(fill + (l * 1000 + r * 4 + d) as f32));
            c.layers[l].append(&k, &v);
        }
        c.positions = (1..=rows).collect();
        c.tokens = vec![7; rows];
        c
    }

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cb-prefetch-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ram_disk(ram_cap: u64, dir: &std::path::Path, throttle: Option<Throttle>) -> KvStore {
        KvStore::with_backends(vec![
            (TierConfig::new("ram", ram_cap), Arc::new(MemBackend::new())),
            (
                TierConfig::new("disk", 1 << 24),
                Arc::new(DiskBackend::new(dir, throttle).unwrap()),
            ),
        ])
    }

    #[test]
    fn ram_prefetch_decodes_all_layers() {
        let s = KvStore::single("ram", 1 << 20);
        let c = toy_cache(3, 2, 0.5);
        s.insert(ChunkId(1), &c).unwrap();
        let mut h = s.prefetch(ChunkId(1)).unwrap().unwrap();
        assert_eq!(h.tier(), 0);
        assert_eq!(h.meta().unwrap().rows, 3);
        for l in 0..2 {
            let mut out = LayerKv::empty(4);
            h.layer_into(l, &mut out).unwrap();
            assert_eq!(out, c.layers[l]);
        }
    }

    #[test]
    fn disk_prefetch_streams_layers_in_order_and_promotes() {
        let dir = test_dir("stream");
        // RAM too small for the entry: it lands on disk at insert.
        let c = toy_cache(4, 3, 1.0);
        let sz = encode(&c).len() as u64;
        let s = ram_disk(sz - 1, &dir, None);
        s.insert(ChunkId(9), &c).unwrap();
        assert_eq!(s.tier_of(ChunkId(9)), Some(1));
        let mut h = s.prefetch(ChunkId(9)).unwrap().unwrap();
        assert_eq!(h.tier(), 1);
        let meta = h.meta().unwrap().clone();
        assert_eq!(meta.n_layers, 3);
        assert_eq!(meta.tokens, vec![7; 4]);
        for l in 0..3 {
            let mut out = LayerKv::empty(4);
            h.layer_into(l, &mut out).unwrap();
            assert_eq!(out, c.layers[l], "layer {l}");
        }
        // The completed stream promotes (RAM can't fit here, so the entry
        // stays on disk — promotion must not evict it by accident).
        s.flush().unwrap();
        assert!(s.contains(ChunkId(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_prefetch_promotes_into_roomy_ram() {
        let dir = test_dir("promote");
        let c = toy_cache(4, 2, 2.0);
        let s = ram_disk(1 << 20, &dir, None);
        s.insert(ChunkId(3), &c).unwrap();
        s.persist().unwrap(); // demote to disk
        assert_eq!(s.tier_of(ChunkId(3)), Some(1));
        let mut h = s.prefetch(ChunkId(3)).unwrap().unwrap();
        h.meta().unwrap();
        let mut out = LayerKv::empty(4);
        for l in 0..2 {
            h.layer_into(l, &mut out).unwrap();
        }
        // Wait for the reader thread to finish promotion.
        for _ in 0..200 {
            if s.tier_of(ChunkId(3)) == Some(0) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(s.tier_of(ChunkId(3)), Some(0), "completed stream promotes");
        assert_eq!(s.stats().promotions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_layer_is_detected_and_evicted() {
        let dir = test_dir("corrupt");
        let c = toy_cache(4, 3, 3.0);
        let sz = encode(&c).len() as u64;
        let s = ram_disk(sz - 1, &dir, None);
        s.insert(ChunkId(5), &c).unwrap();
        s.flush().unwrap();
        // Flip a byte inside layer 1's block on the segment file.
        assert!(s.corrupt(
            ChunkId(5),
            crate::serialize::header_len(4) + sz as usize / 2
        ));
        let mut h = s.prefetch(ChunkId(5)).unwrap().unwrap();
        h.meta().unwrap();
        let mut out = LayerKv::empty(4);
        let mut saw_err = None;
        for l in 0..3 {
            if let Err(e) = h.layer_into(l, &mut out) {
                saw_err = Some(e);
                break;
            }
        }
        assert!(
            matches!(saw_err, Some(StoreError::Corrupt(_))),
            "mid-stream corruption must surface: {saw_err:?}"
        );
        assert!(!s.contains(ChunkId(5)), "corrupt entry evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_dims_surface_as_corrupt_not_huge_allocation() {
        // Regression: the reader thread sizes buffers from the on-disk
        // `rows`/`n_layers` fields before their checksum is verified. A
        // flipped dims byte must be rejected against the segment's payload
        // length — never turned into a multi-gigabyte allocation.
        let dir = test_dir("dims");
        let c = toy_cache(4, 2, 5.0);
        let sz = encode(&c).len() as u64;
        let s = ram_disk(sz - 1, &dir, None);
        s.insert(ChunkId(11), &c).unwrap();
        s.flush().unwrap();
        // Flip the high byte of `rows` (dims bytes 8..12): header framing
        // still parses, declared entry length explodes.
        assert!(s.corrupt(ChunkId(11), 11));
        let mut h = s.prefetch(ChunkId(11)).unwrap().unwrap();
        let err = h.meta().unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt(_)),
            "corrupt dims must be reported, got {err:?}"
        );
        assert!(!s.contains(ChunkId(11)), "poisoned entry evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_handle_mid_stream_is_clean() {
        let dir = test_dir("drop");
        let c = toy_cache(6, 4, 4.0);
        let sz = encode(&c).len() as u64;
        let s = ram_disk(sz - 1, &dir, Some(Throttle::bandwidth(50.0e6)));
        s.insert(ChunkId(8), &c).unwrap();
        {
            let mut h = s.prefetch(ChunkId(8)).unwrap().unwrap();
            h.meta().unwrap();
            // Consume one layer, then abandon the stream.
            let mut out = LayerKv::empty(4);
            h.layer_into(0, &mut out).unwrap();
        }
        // The reader thread must unpin; a later spill/evict pass works.
        for _ in 0..200 {
            let inner_ok = s.get(ChunkId(8)).is_ok();
            if inner_ok {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(s.contains(ChunkId(8)));
        assert!(s.remove(ChunkId(8)), "unpinned entry can be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetch_miss_is_counted() {
        let s = KvStore::single("ram", 1 << 20);
        assert!(s.prefetch(ChunkId(404)).unwrap().is_none());
        assert_eq!(s.stats().misses, 1);
    }
}
