//! `cb_worker`: one engine worker process. Connects to a `cb_gateway`
//! over TCP, announces itself, and serves submissions until the gateway
//! ends the session.
//!
//! ```text
//! cb_worker --gateway ADDR[,ADDR...] [--workers 2] [--seed 11] [--retry-attach]
//! ```
//!
//! `--gateway` takes an **ordered** endpoint list: the primary first,
//! warm-standby gateways after; the worker dials them in order. An
//! unreachable gateway fails fast: a few capped-backoff passes over the
//! list (about two seconds), then a clear message and a non-zero exit.
//!
//! With `--retry-attach`, a worker whose gateway session ends keeps its
//! engine (and every cached chunk) alive, redials the list with backoff,
//! and re-attaches under the **same identity with a bumped incarnation**
//! — so the gateway (primary or freshly promoted standby) lets it adopt
//! its old slot and no chunk home moves.
//!
//! The engine is a Tiny-profile instance built from `--seed`; every
//! worker in a cluster must use the same profile and seed so routing
//! never changes results.

use cb_core::engine::EngineBuilder;
use cb_core::scheduler::{EngineService, ServiceConfig};
use cb_model::ModelProfile;
use cb_net::retry::RetryPolicy;
use cb_net::tcp::TcpTransport;
use cb_net::worker::{Worker, WorkerConfig};
use cb_obs::{cb_error, cb_info};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: cb_worker --gateway ADDR[,ADDR...] [--workers N] [--seed S] [--retry-attach]"
    );
    std::process::exit(2);
}

/// Dials the endpoint list in order, with the policy's capped backoff
/// between passes. Returns the first connection, or the last error.
fn dial(endpoints: &[String], policy: &RetryPolicy) -> Result<TcpTransport, String> {
    let mut last = String::from("<no endpoints>");
    for attempt in 0..=policy.max_retries {
        std::thread::sleep(policy.backoff(attempt));
        for ep in endpoints {
            match TcpTransport::connect(ep.as_str()) {
                Ok(t) => return Ok(t),
                Err(e) => last = format!("{ep}: {e}"),
            }
        }
    }
    Err(last)
}

fn main() {
    let mut gateway = None;
    let mut workers = 2usize;
    let mut seed = 11u64;
    let mut retry_attach = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gateway" => gateway = args.next(),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--retry-attach" => retry_attach = true,
            _ => usage(),
        }
    }
    let Some(addrs) = gateway else { usage() };
    let endpoints: Vec<String> = addrs.split(',').map(str::to_string).collect();

    // ~2s of capped backoff over the whole list: enough to ride out a
    // gateway still binding its listener, fast enough that a wrong
    // address fails visibly instead of hanging.
    let policy = RetryPolicy::default().max_retries(6);

    // One engine for the process lifetime: re-attaches keep every cached
    // chunk warm.
    let engine = EngineBuilder::new(ModelProfile::Tiny)
        .seed(seed)
        .build()
        .expect("Tiny engine builds");
    let service = Arc::new(EngineService::new(
        engine,
        ServiceConfig::default().workers(workers).queue_capacity(64),
    ));

    let mut identity: Option<(u64, u64)> = None;
    loop {
        let conn = match dial(&endpoints, &policy) {
            Ok(c) => c,
            Err(e) => {
                if identity.is_none() || !retry_attach {
                    cb_error!(
                        "worker",
                        "no gateway reachable among {endpoints:?} (last error: {e}); giving up"
                    );
                    std::process::exit(1);
                }
                continue; // dial() already paced the attempts.
            }
        };
        let cfg = match identity {
            // Same id, next incarnation: adopt the old slot.
            Some((id, incarnation)) => WorkerConfig::default().identity(id, incarnation + 1),
            None => WorkerConfig::default(),
        };
        let worker = match Worker::start(Arc::clone(&service), Arc::new(conn), cfg) {
            Ok(w) => w,
            Err(e) => {
                if !retry_attach {
                    cb_error!("worker", "gateway handshake failed: {e}");
                    std::process::exit(1);
                }
                continue;
            }
        };
        let (id, incarnation) = worker.identity();
        identity = Some((id, incarnation));
        cb_info!(
            "worker",
            "serving {endpoints:?} as {id:#018x} incarnation {incarnation} \
             (scheduler workers: {workers}, seed: {seed})"
        );
        worker.run_until_disconnected();
        if !retry_attach {
            cb_info!("worker", "gateway session ended, exiting");
            return;
        }
        cb_info!("worker", "gateway session ended, re-attaching");
    }
}
