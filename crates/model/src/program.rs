//! The recall-program compiler.
//!
//! Compiles transformer weights that perform *cross-chunk multi-hop
//! associative recall* — no training involved. The program gives the
//! reproduction a model where the paper's central claims are mechanical
//! facts rather than empirical tendencies:
//!
//! 1. **Cross-attention matters** — a `REF` (coreference) fact's subject
//!    lives in a *previous* chunk; the last-entity head resolves it across
//!    the chunk boundary. Precomputing a chunk's KV in isolation (full KV
//!    reuse) resolves `REF` to the null entity and the answer is lost.
//! 2. **Cross-attention is sparse** — only the tokens of `REF`-facts (and
//!    chunk-initial tokens of continuation chains) depend on preceding
//!    chunks, so their KV deviation is high while everyone else's is near
//!    zero: exactly the HKVD structure of §4.3.
//! 3. **Selective recompute repairs quality** — recomputing just those
//!    tokens' KV restores the recall path.
//!
//! ## Layer map
//!
//! | Layer | Component | Writes |
//! |-------|-----------|--------|
//! | 0 / head 0 | previous-token head (relative bias) | `PREV` |
//! | 0 / head 1 | last-entity head (class + slow RoPE recency) | `ENT` |
//! | 1 / MLP    | bilinear fact binding `code(ent) ⊙ code(prev)` | `KEY` |
//! | 2 / head 0 | induction head (chain continuation) | `ANS` |
//! | 3 / head 0 | recall head (fact lookup by `KEY`) | `ANS` |
//! | all others | seeded noise heads/MLPs (mixing layers) | scratch |
//!
//! The numeric constants below are chosen so every softmax selector has a
//! multi-nat margin over its worst-case distractor at context lengths up to
//! ~1100 tokens; `margin` tests in this module verify the kernels directly.

use cb_tensor::rope::RopeTable;
use cb_tensor::Matrix;
use cb_tokenizer::codes::CodeBook;
use cb_tokenizer::{TokenKind, Vocab};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::{
    cls, ModelConfig, Subspace, CLS_DIMS, CLS_OFFSET, CODE_DIM, CONST_OFFSET, SINK_OFFSET,
};
use crate::model::Model;
use crate::weights::{AttnBias, HeadWeights, Layer, Mlp};

/// Sharpness of the previous-token kernel.
const PREV_LAMBDA: f32 = 14.0;
/// Recency kernel mass on the fast pair (θ = 0.01; period 628).
const REC_M1: f32 = 5000.0;
/// Fast recency frequency.
const REC_THETA1: f32 = 0.01;
/// Recency kernel mass on the slow pair (θ = 0.0035; period 1795) — damps
/// the fast pair's wrap-around so distant entities cannot steal attention.
const REC_M2: f32 = 5240.0;
/// Slow recency frequency.
const REC_THETA2: f32 = 0.0035;
/// Class bonus keeping entity tokens ahead of non-entities at any distance.
const REC_CLS: f32 = 2700.0;
/// Content-match logit gain of the induction and recall heads.
const BETA: f32 = 2.0;
/// Output gain of the induction head. Strictly above the recall gain: when
/// a chain is being continued the recall head re-matches the *previous*
/// chain link (its binding `(entity, prev_value)` also exists in context)
/// and would re-emit it; induction must outvote that echo.
const G_IND: f32 = 1.5;
/// Output gain of the recall head. At the `?` step induction is silent
/// (nothing in context follows a `?`), so recall decides the first answer
/// token unopposed.
const G_REC: f32 = 1.0;
/// Self-attention penalty for induction/recall.
const SELF_PENALTY: f32 = 1e4;
/// BOS-sink logit for the recall head: above worst-case binding noise
/// (≈ 34·BETA = 68), below a genuine match (64·BETA = 128), so "no match"
/// attends the sink (whose value is cancelled to zero) instead of noise.
const SINK_RECALL: f32 = 96.0;
/// BOS-sink logit for the (single-width) induction head: between worst-case
/// code noise (≈ 24·BETA = 48) and a genuine match (32·BETA = 64).
const SINK_INDUCTION: f32 = 56.0;
/// Logit bias of EOS so empty `ANS` stops decoding instead of sampling noise.
const EOS_BIAS: f32 = 4.0;
/// Hidden width of noise MLPs.
const NOISE_HIDDEN: usize = 64;

/// Maximum context length (tokens) at which the recency kernel is
/// guaranteed monotone enough to resolve coreference. Generators cap
/// contexts at this length; beyond it quality degrades gracefully (the
/// reproduction's "lost in the middle" analogue).
pub const MAX_RELIABLE_CONTEXT: usize = 1100;

/// Maximum distance (tokens) between a coreference and its antecedent
/// entity at which resolution is guaranteed. Dataset generators keep `REF`
/// antecedents within this window (the paper's chunks likewise keep
/// coreferents nearby — a pronoun's antecedent is almost always within a
/// couple hundred tokens).
pub const MAX_ANTECEDENT_DISTANCE: usize = 200;

/// Class-indicator channel for a token kind.
pub fn class_of(kind: TokenKind) -> usize {
    match kind {
        TokenKind::Entity(_) | TokenKind::Bos => cls::ENT_OR_BOS,
        TokenKind::Attr(_) => cls::ATTR,
        TokenKind::Value(_) => cls::VALUE,
        TokenKind::Ref => cls::REF,
        TokenKind::QMark => cls::QMARK,
        TokenKind::Sep => cls::SEP,
        TokenKind::Filler(_) => cls::FILLER,
        TokenKind::Query | TokenKind::Eos | TokenKind::Pad => cls::OTHER,
    }
}

fn build_embed(vocab: &Vocab, codebook: &CodeBook, d_model: usize) -> Matrix {
    let mut e = Matrix::zeros(vocab.size(), d_model);
    for t in 0..vocab.size() as u32 {
        let row = e.row_mut(t as usize);
        let code = codebook.code(t);
        row[Subspace::Cur.offset()..Subspace::Cur.offset() + CODE_DIM].copy_from_slice(code);
        let c = class_of(vocab.kind(t));
        debug_assert!(c < CLS_DIMS);
        row[CLS_OFFSET + c] = 1.0;
        row[CONST_OFFSET] = 1.0;
        if vocab.kind(t) == TokenKind::Bos {
            row[SINK_OFFSET] = 1.0;
            // BOS acts as the *null* entity: discounting its entity-class
            // indicator puts it ~REC_CLS·0.05 ≈ 135 logits behind any real
            // entity in the recency head, so it resolves coreference only
            // when no antecedent exists and never dilutes a genuine one.
            row[CLS_OFFSET + c] = 0.95;
        }
    }
    e
}

fn build_unembed(vocab: &Vocab, codebook: &CodeBook, d_model: usize) -> Matrix {
    let mut u = Matrix::zeros(d_model, vocab.size());
    for t in 0..vocab.size() as u32 {
        let code = codebook.code(t);
        for i in 0..CODE_DIM {
            u[(Subspace::Ans.offset() + i, t as usize)] = code[i];
        }
    }
    u[(CONST_OFFSET, vocab.id(TokenKind::Eos) as usize)] = EOS_BIAS;
    u
}

/// Identity map from a residual subspace into head dims `0..CODE_DIM`.
fn read_subspace(d_model: usize, head_dim: usize, from: Subspace, gain: f32) -> Matrix {
    let mut w = Matrix::zeros(d_model, head_dim);
    for i in 0..CODE_DIM {
        w[(from.offset() + i, i)] = gain;
    }
    w
}

/// Identity map from head dims `0..CODE_DIM` into a residual subspace.
fn write_subspace(d_model: usize, head_dim: usize, to: Subspace, gain: f32) -> Matrix {
    let mut w = Matrix::zeros(head_dim, d_model);
    for i in 0..CODE_DIM {
        w[(i, to.offset() + i)] = gain;
    }
    w
}

fn prev_token_head(d_model: usize, head_dim: usize, codebook: &CodeBook, bos: u32) -> HeadWeights {
    // The value is sink-cancelled so PREV(BOS) ≈ 0: BOS then contributes no
    // content to downstream lookup keys, keeping the lookup heads' sink
    // logits exact.
    HeadWeights {
        wq: Matrix::zeros(d_model, head_dim),
        wk: Matrix::zeros(d_model, head_dim),
        wv: sink_cancelled_value(d_model, head_dim, codebook, bos),
        wo: write_subspace(d_model, head_dim, Subspace::Prev, 1.0),
        rope: None,
        bias: AttnBias::PrevToken {
            lambda: PREV_LAMBDA,
        },
        scale: 1.0,
    }
}

fn last_entity_head(d_model: usize, head_dim: usize, codebook: &CodeBook, bos: u32) -> HeadWeights {
    let s1 = REC_M1.sqrt();
    let s2 = REC_M2.sqrt();
    let c = REC_CLS.sqrt();
    // Query: constant probe (every position asks "nearest entity?").
    let mut wq = Matrix::zeros(d_model, head_dim);
    wq[(CONST_OFFSET, 0)] = s1;
    wq[(CONST_OFFSET, 2)] = s2;
    wq[(CONST_OFFSET, 4)] = c;
    // Key: present only at entity/BOS tokens (class-gated), so non-entities
    // score exactly zero.
    let mut wk = Matrix::zeros(d_model, head_dim);
    wk[(CLS_OFFSET + cls::ENT_OR_BOS, 0)] = s1;
    wk[(CLS_OFFSET + cls::ENT_OR_BOS, 2)] = s2;
    wk[(CLS_OFFSET + cls::ENT_OR_BOS, 4)] = c;
    HeadWeights {
        wq,
        wk,
        // Sink-cancelled: a token whose nearest "entity" is BOS gets a zero
        // ENT (null), so its binding key is zero and recall sinks cleanly.
        wv: sink_cancelled_value(d_model, head_dim, codebook, bos),
        wo: write_subspace(d_model, head_dim, Subspace::Ent, 1.0),
        // Dims (0,1) rotate at θ1, dims (2,3) at θ2, dim 4 (class) is not
        // rotated. The kernel m1·cos(dθ1) + m2·cos(dθ2) decays with
        // distance d, so the *nearest* entity wins; reusing cached K at the
        // wrong absolute position corrupts exactly this head — which is why
        // the Appendix-A re-rotation is load-bearing.
        rope: Some(RopeTable::from_thetas(vec![REC_THETA1, REC_THETA2])),
        bias: AttnBias::None,
        scale: 1.0,
    }
}

/// Reads two subspaces into head dims `0..32` / `32..64`.
fn read_pair(d_model: usize, head_dim: usize, a: Subspace, b: Subspace, gain: f32) -> Matrix {
    assert!(head_dim >= 2 * CODE_DIM, "lookup heads need 64 head dims");
    let mut w = Matrix::zeros(d_model, head_dim);
    for i in 0..CODE_DIM {
        w[(a.offset() + i, i)] = gain;
        w[(b.offset() + i, CODE_DIM + i)] = gain;
    }
    w
}

/// Value projection reading CUR, with the BOS sink's content cancelled to
/// zero (via the SINK flag dim), so attending the sink writes nothing.
fn sink_cancelled_value(
    d_model: usize,
    head_dim: usize,
    codebook: &CodeBook,
    bos_id: u32,
) -> Matrix {
    let mut wv = read_subspace(d_model, head_dim, Subspace::Cur, 1.0);
    let bos_code = codebook.code(bos_id);
    for i in 0..CODE_DIM {
        wv[(SINK_OFFSET, i)] = -bos_code[i];
    }
    wv
}

fn induction_head(d_model: usize, head_dim: usize, codebook: &CodeBook, bos: u32) -> HeadWeights {
    // Classic induction: the query is the *current* token's code and keys
    // are each position's *previous*-token code, so position `p` attends to
    // successors of earlier occurrences of its own token and copies them
    // into ANS — this continues multi-token value chains during decoding
    // (and ends them: the successor of the last chain token is a separator,
    // which stops greedy decoding). The BOS sink absorbs no-match queries.
    // Single-width: "doubling" a plain code match is dot-product invariant
    // and gains nothing, unlike the recall head's product-code halves.
    HeadWeights {
        wq: read_subspace(d_model, head_dim, Subspace::Cur, BETA),
        wk: read_subspace(d_model, head_dim, Subspace::Prev, 1.0),
        wv: sink_cancelled_value(d_model, head_dim, codebook, bos),
        wo: write_subspace(d_model, head_dim, Subspace::Ans, G_IND),
        rope: None,
        bias: AttnBias::LookupGate {
            self_penalty: SELF_PENALTY,
            sink_score: SINK_INDUCTION,
        },
        scale: 1.0,
    }
}

fn recall_head(d_model: usize, head_dim: usize, codebook: &CodeBook, bos: u32) -> HeadWeights {
    HeadWeights {
        wq: read_pair(d_model, head_dim, Subspace::KeyA, Subspace::KeyB, BETA),
        wk: read_pair(d_model, head_dim, Subspace::KeyA, Subspace::KeyB, 1.0),
        wv: sink_cancelled_value(d_model, head_dim, codebook, bos),
        wo: write_subspace(d_model, head_dim, Subspace::Ans, G_REC),
        rope: None,
        bias: AttnBias::LookupGate {
            self_penalty: SELF_PENALTY,
            sink_score: SINK_RECALL,
        },
        scale: 1.0,
    }
}

fn binding_mlp(d_model: usize) -> Mlp {
    // KEYA ← ENT ⊙ PREV and KEYB ← roll(ENT, 1) ⊙ PREV at every position:
    // value tokens get their fact's binding (subject ⊗ attribute), the
    // query's `?` gets the probe. Two halves double the lookup margin.
    let hidden = 2 * CODE_DIM;
    let mut wg = Matrix::zeros(d_model, hidden);
    let mut wu = Matrix::zeros(d_model, hidden);
    let mut wd = Matrix::zeros(hidden, d_model);
    for i in 0..CODE_DIM {
        wg[(Subspace::Ent.offset() + i, i)] = 1.0;
        wg[(Subspace::Ent.offset() + (i + 1) % CODE_DIM, CODE_DIM + i)] = 1.0;
        wu[(Subspace::Prev.offset() + i, i)] = 1.0;
        wu[(Subspace::Prev.offset() + i, CODE_DIM + i)] = 1.0;
        wd[(i, Subspace::KeyA.offset() + i)] = 1.0;
        wd[(CODE_DIM + i, Subspace::KeyB.offset() + i)] = 1.0;
    }
    Mlp::Bilinear { wg, wu, wd }
}

/// Compiles the recall program for `cfg`.
///
/// Layers 0–3 carry the program; any further layers are seeded noise
/// ("mixing") layers emulating the bulk of a trained model, so deviation
/// statistics have realistic depth (Figures 7/8).
pub fn compile(cfg: ModelConfig) -> Model {
    assert!(cfg.n_layers() >= 4, "program needs at least 4 layers");
    assert!(
        cfg.head_dim >= 2 * CODE_DIM,
        "head_dim must hold a doubled code"
    );
    assert!(cfg.n_heads >= 2, "program needs 2 heads on layer 0");
    let d = cfg.d_model();
    let hd = cfg.head_dim;
    let codebook = CodeBook::new(cfg.vocab.size(), CODE_DIM, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(cfg.n_layers() as u64),
    );

    let bos = cfg.vocab.id(TokenKind::Bos);
    let noise_head = |rng: &mut SmallRng| HeadWeights::noise(rng, d, hd, cfg.noise_scale);
    let mut layers = Vec::with_capacity(cfg.n_layers());
    for l in 0..cfg.n_layers() {
        let mut heads = Vec::with_capacity(cfg.n_heads);
        match l {
            0 => {
                heads.push(prev_token_head(d, hd, &codebook, bos));
                heads.push(last_entity_head(d, hd, &codebook, bos));
            }
            2 => heads.push(induction_head(d, hd, &codebook, bos)),
            3 => heads.push(recall_head(d, hd, &codebook, bos)),
            _ => {}
        }
        while heads.len() < cfg.n_heads {
            heads.push(noise_head(&mut rng));
        }
        let mlp = match l {
            0 => Mlp::None,
            1 => binding_mlp(d),
            _ => Mlp::noise(&mut rng, d, NOISE_HIDDEN, cfg.noise_scale),
        };
        layers.push(Layer::new(heads, mlp));
    }

    let embed = build_embed(&cfg.vocab, &codebook, d);
    let unembed = build_unembed(&cfg.vocab, &codebook, d);
    Model {
        cfg,
        codebook,
        embed,
        unembed,
        layers,
        reference_kernels: false,
    }
}

/// Compiles an all-noise model of the same shape (throughput benches).
pub fn compile_noise_only(cfg: ModelConfig) -> Model {
    let d = cfg.d_model();
    let hd = cfg.head_dim;
    let codebook = CodeBook::new(cfg.vocab.size(), CODE_DIM, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cfg.n_layers() as u64),
    );
    let layers = (0..cfg.n_layers())
        .map(|_| {
            let heads = (0..cfg.n_heads)
                .map(|_| HeadWeights::noise(&mut rng, d, hd, 0.1))
                .collect();
            Layer::new(heads, Mlp::noise(&mut rng, d, NOISE_HIDDEN, 0.1))
        })
        .collect();
    let embed = build_embed(&cfg.vocab, &codebook, d);
    let unembed = build_unembed(&cfg.vocab, &codebook, d);
    Model {
        cfg,
        codebook,
        embed,
        unembed,
        layers,
        reference_kernels: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelProfile;
    use cb_tokenizer::TokenId;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    /// The recency kernel: margin of the nearest entity over competitors.
    fn recency_score(d: f32) -> f32 {
        REC_CLS + REC_M1 * (d * REC_THETA1).cos() + REC_M2 * (d * REC_THETA2).cos()
    }

    #[test]
    fn recency_kernel_prefers_nearer_entities() {
        // A nearest entity within the antecedent window must beat any
        // entity ≥ 4 tokens further back, anywhere in the reliable context.
        for d_near in [1usize, 2, 5, 10, 50, 100, 200] {
            for gap in [4usize, 8, 16, 64, 256, 512] {
                let d_far = d_near + gap;
                if d_far > MAX_RELIABLE_CONTEXT {
                    continue;
                }
                let margin = recency_score(d_near as f32) - recency_score(d_far as f32);
                assert!(
                    margin > 4.0,
                    "weak margin {margin} at d_near={d_near}, d_far={d_far}"
                );
            }
        }
    }

    #[test]
    fn recency_kernel_positive_within_antecedent_window() {
        // Within the guaranteed antecedent window an entity must beat the 0
        // score of every non-entity token.
        for d in 1..=MAX_ANTECEDENT_DISTANCE {
            assert!(
                recency_score(d as f32) > 4.0,
                "entity at distance {d} loses to non-entities"
            );
        }
    }

    fn seq(v: &Vocab, spec: &[TokenKind]) -> Vec<TokenId> {
        spec.iter().map(|&k| v.id(k)).collect()
    }

    #[test]
    fn prev_head_writes_predecessor_code() {
        let m = model();
        let v = m.cfg.vocab.clone();
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(3),
                TokenKind::Attr(1),
                TokenKind::Value(9),
            ],
        );
        let (_, x) = m.prefill(&toks);
        // After layer 0 the PREV subspace of row 2 (attr) holds the code of
        // the entity token; measured at the end it still should (noise is
        // small). Dot with the true predecessor code ≈ CODE_DIM.
        let prev = &x.row(2)[Subspace::Prev.offset()..Subspace::Prev.offset() + CODE_DIM];
        let code = m.codebook.code(toks[1]);
        let dot: f32 = prev.iter().zip(code.iter()).map(|(a, b)| a * b).sum();
        assert!(dot > 24.0, "prev-token head weak: dot = {dot}");
        // And clearly larger than against an unrelated token's code.
        let other = m.codebook.code(v.id(TokenKind::Entity(7)));
        let dot_other: f32 = prev.iter().zip(other.iter()).map(|(a, b)| a * b).sum();
        assert!(dot_other < dot / 2.0);
    }

    #[test]
    fn last_entity_head_resolves_nearest_entity() {
        let m = model();
        let v = m.cfg.vocab.clone();
        // ent5 ... ent8 ... attr2 — the attr's ENT must be ent8 (nearer).
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Sep,
                TokenKind::Entity(8),
                TokenKind::Attr(2),
            ],
        );
        let (_, x) = m.prefill(&toks);
        let ent = &x.row(6)[Subspace::Ent.offset()..Subspace::Ent.offset() + CODE_DIM];
        let near = m.codebook.code(v.id(TokenKind::Entity(8)));
        let far = m.codebook.code(v.id(TokenKind::Entity(5)));
        let dot_near: f32 = ent.iter().zip(near.iter()).map(|(a, b)| a * b).sum();
        let dot_far: f32 = ent.iter().zip(far.iter()).map(|(a, b)| a * b).sum();
        assert!(dot_near > 24.0, "nearest entity not resolved: {dot_near}");
        assert!(dot_far < dot_near / 2.0, "stale entity leaks: {dot_far}");
    }

    #[test]
    fn ref_fact_resolves_antecedent_entity() {
        let m = model();
        let v = m.cfg.vocab.clone();
        // "ent5 attr0 val1 . it attr2 val7 ." — the REF fact's subject is
        // ent5; its attr position must carry ent5 in ENT.
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Sep,
                TokenKind::Ref,
                TokenKind::Attr(2),
                TokenKind::Value(7),
                TokenKind::Sep,
            ],
        );
        let (_, x) = m.prefill(&toks);
        let ent = &x.row(6)[Subspace::Ent.offset()..Subspace::Ent.offset() + CODE_DIM];
        let ante = m.codebook.code(v.id(TokenKind::Entity(5)));
        let dot: f32 = ent.iter().zip(ante.iter()).map(|(a, b)| a * b).sum();
        assert!(dot > 24.0, "REF antecedent not resolved: {dot}");
    }

    #[test]
    fn single_hop_recall_answers_query() {
        let m = model();
        let v = m.cfg.vocab.clone();
        // Facts: ent5.attr0 = val1; ent8.attr0 = val7. Query ent8.attr0.
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Sep,
                TokenKind::Entity(8),
                TokenKind::Attr(0),
                TokenKind::Value(7),
                TokenKind::Sep,
                TokenKind::Query,
                TokenKind::Entity(8),
                TokenKind::Attr(0),
                TokenKind::QMark,
            ],
        );
        let ans = m.generate(&toks, 4);
        assert_eq!(ans, vec![v.id(TokenKind::Value(7))], "wrong recall");
    }

    #[test]
    fn recall_distinguishes_attributes_of_same_entity() {
        let m = model();
        let v = m.cfg.vocab.clone();
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Sep,
                TokenKind::Ref,
                TokenKind::Attr(3),
                TokenKind::Value(9),
                TokenKind::Sep,
                TokenKind::Query,
                TokenKind::Entity(5),
                TokenKind::Attr(3),
                TokenKind::QMark,
            ],
        );
        let ans = m.generate(&toks, 4);
        assert_eq!(ans, vec![v.id(TokenKind::Value(9))]);
    }

    #[test]
    fn value_chains_continue_by_induction() {
        let m = model();
        let v = m.cfg.vocab.clone();
        // ent5.attr0 = [val1 val2 val3].
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Value(2),
                TokenKind::Value(3),
                TokenKind::Sep,
                TokenKind::Query,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::QMark,
            ],
        );
        let ans = m.generate(&toks, 8);
        let expect: Vec<TokenId> = [
            TokenKind::Value(1),
            TokenKind::Value(2),
            TokenKind::Value(3),
        ]
        .iter()
        .map(|&k| v.id(k))
        .collect();
        assert_eq!(ans, expect, "chain decode failed");
    }

    #[test]
    fn absent_fact_stops_or_misses() {
        let m = model();
        let v = m.cfg.vocab.clone();
        let toks = seq(
            &v,
            &[
                TokenKind::Bos,
                TokenKind::Entity(5),
                TokenKind::Attr(0),
                TokenKind::Value(1),
                TokenKind::Sep,
                TokenKind::Query,
                TokenKind::Entity(9),
                TokenKind::Attr(4),
                TokenKind::QMark,
            ],
        );
        let ans = m.generate(&toks, 4);
        // Without the fact in context the model must not "recall" val1 via
        // the recall head; either it stops immediately or hallucinates an
        // unrelated value — but never the (9,4) ground truth, which does not
        // exist. The strong guarantee we need: it does not return val1
        // *because of* entity mismatch.
        assert_ne!(ans, vec![v.id(TokenKind::Value(1))]);
    }

    #[test]
    fn deeper_profiles_preserve_recall() {
        for p in [ModelProfile::Mistral7B, ModelProfile::Yi34B] {
            let m = Model::compiled(ModelConfig::standard(p, 11));
            let v = m.cfg.vocab.clone();
            let toks = seq(
                &v,
                &[
                    TokenKind::Bos,
                    TokenKind::Entity(5),
                    TokenKind::Attr(0),
                    TokenKind::Value(1),
                    TokenKind::Sep,
                    TokenKind::Entity(8),
                    TokenKind::Attr(0),
                    TokenKind::Value(7),
                    TokenKind::Sep,
                    TokenKind::Query,
                    TokenKind::Entity(8),
                    TokenKind::Attr(0),
                    TokenKind::QMark,
                ],
            );
            let ans = m.generate(&toks, 4);
            assert_eq!(
                ans,
                vec![v.id(TokenKind::Value(7))],
                "recall broken at profile {p:?}"
            );
        }
    }
}
