//! Shared experiment harness for the figure-regenerating binaries.
//!
//! Every binary in `src/bin/` reproduces one figure/table of the paper (see
//! `DESIGN.md` §3 for the index). This library provides the pieces they
//! share: compiled models per profile, chunk-cache memoization, per-scheme
//! quality evaluation on the tiny models, per-scheme TTFT from the
//! paper-scale delay model, and row emission (pretty table + JSON under
//! `target/experiments/`).

pub mod experiments;
pub mod harness;
pub mod out;

pub use harness::{ExpModel, QualityEval, SchemeQuality};
pub use out::{emit, Row};
