//! The serving engine: CacheBlend behind one request/response front door.
//!
//! Everything the paper's serving system does per request — KV store
//! lookup, precompute of missing chunk caches, recompute-ratio selection
//! via the §5.1 controller, pipelined load+selective-recompute, and greedy
//! decoding — is wired by hand in six crates elsewhere in this workspace.
//! This module packages that lifecycle as a single concurrent API:
//!
//! 1. [`EngineBuilder`] fixes the deployment: model profile, tiered store
//!    (each tier is a [`DeviceKind`] with a byte capacity), [`BlendConfig`],
//!    and the recompute-[`RatioPolicy`].
//! 2. [`Engine::register_chunk`] makes a chunk servable: content-hash the
//!    tokens, precompute its standalone KV cache on a store miss, and place
//!    the serialized entry on the tiered [`KvStore`].
//! 3. [`Engine::submit`] serves one [`Request`]: look each chunk up in the
//!    store (re-precomputing entries the LRU evicted), pick the recompute
//!    ratio, stream the entries through [`blend_pipelined`], decode, and
//!    return a [`Response`] with the answer, the [`BlendResult`] stats, and
//!    a [`TtftBreakdown`]. [`Engine::submit_streaming`] is the same
//!    lifecycle with per-phase [`Event`]s emitted as they happen
//!    ([`Event::FirstToken`] when prefill completes, [`Event::Token`] per
//!    decoded token).
//! 4. Continuous serving goes through the
//!    [`EngineService`](crate::scheduler::EngineService) scheduler, which
//!    owns a worker pool and an admission queue over a shared [`Engine`]
//!    handle — [`Engine`] is a cheap clone ([`Arc`] inside) and `Sync`; the
//!    store serializes itself internally. [`Engine::submit_many`] is a
//!    compatibility wrapper that routes a batch through an ephemeral
//!    service.
//!
//! [`EngineError`] unifies the error surfaces ([`DecodeError`],
//! [`StoreError`], unknown ids, empty inputs) that previously leaked from
//! each layer separately.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cb_kv::chunk::hash_tokens;
use cb_kv::prefetch::PrefetchHandle;
use cb_kv::serialize::{encode, DecodeError};
use cb_kv::store::{KvStore, StoreError, TierConfig};
use cb_kv::ChunkId;
use cb_model::{Model, ModelConfig, ModelProfile};
use cb_storage::backend::{MemBackend, StorageBackend, Throttle};
use cb_storage::device::DeviceKind;
use cb_storage::disk::DiskBackend;
use cb_storage::perf::{PaperModel, PerfModel};
use cb_storage::segment_log::SegmentLogBackend;
use cb_tokenizer::TokenId;
use parking_lot::Mutex;

use crate::controller::LoadingController;
use crate::fusor::{BlendConfig, BlendResult};
use crate::pipeline::blend_prefetched;
use crate::scheduler::{EngineService, ServiceConfig};
use crate::stream::Event;

/// Stable wire identity of an [`EngineError`] variant. Service
/// boundaries (the network control plane, logs, metrics) transmit the
/// code plus a numeric detail and a message instead of the Rust enum, and
/// [`EngineError::from_wire`] reconstructs the closest possible variant
/// on the far side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`EngineError::UnknownChunk`]; detail carries the chunk id.
    UnknownChunk = 1,
    /// [`EngineError::EmptyChunk`].
    EmptyChunk = 2,
    /// [`EngineError::EmptyQuery`].
    EmptyQuery = 3,
    /// [`EngineError::TooLarge`]; detail carries the size in bytes.
    TooLarge = 4,
    /// [`EngineError::Corrupt`]; the decode detail survives only as the
    /// message string.
    Corrupt = 5,
    /// [`EngineError::Storage`].
    Storage = 6,
    /// [`EngineError::Config`].
    Config = 7,
    /// [`EngineError::Canceled`].
    Canceled = 8,
    /// [`EngineError::Panicked`].
    Panicked = 9,
    /// No healthy worker could accept the request — synthesized by
    /// cluster front ends (a gateway), never by a single engine.
    NoHealthyWorker = 10,
}

impl ErrorCode {
    /// True when a failure with this code says nothing about the request
    /// itself — only about the worker that happened to be serving it —
    /// so re-submitting the identical request to a *different* worker can
    /// succeed. Cluster front ends use this to drive client-invisible
    /// retries:
    ///
    /// - [`ErrorCode::Canceled`] — the serving worker's scheduler shut
    ///   down mid-request;
    /// - [`ErrorCode::Panicked`] — the serving worker's thread died;
    /// - [`ErrorCode::Storage`] — a worker-local backend failed (another
    ///   replica has its own store).
    ///
    /// Everything else is a property of the request (unknown chunk, empty
    /// query, oversized cache, misconfiguration) or of the cluster as a
    /// whole ([`ErrorCode::NoHealthyWorker`]) and retrying elsewhere
    /// would fail identically.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::Canceled | ErrorCode::Panicked | ErrorCode::Storage
        )
    }

    /// Inverse of `code as u16`; `None` for unassigned values.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::UnknownChunk,
            2 => ErrorCode::EmptyChunk,
            3 => ErrorCode::EmptyQuery,
            4 => ErrorCode::TooLarge,
            5 => ErrorCode::Corrupt,
            6 => ErrorCode::Storage,
            7 => ErrorCode::Config,
            8 => ErrorCode::Canceled,
            9 => ErrorCode::Panicked,
            10 => ErrorCode::NoHealthyWorker,
            _ => return None,
        })
    }
}

/// Unified error surface of the engine API.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A requested chunk id was never registered with this engine, so a
    /// store miss cannot be repaired by precompute.
    UnknownChunk(ChunkId),
    /// A chunk registration carried no tokens.
    EmptyChunk,
    /// The request's query was empty (the suffix is never cached and must
    /// exist for the fusor to run).
    EmptyQuery,
    /// A chunk's serialized cache exceeds every store tier's capacity.
    TooLarge {
        /// Size of the rejected entry in bytes.
        size: u64,
    },
    /// A stored entry failed its checksum or layout checks.
    Corrupt(DecodeError),
    /// A storage backend failed (cache-dir I/O error, flusher gone).
    Storage(String),
    /// The engine was misconfigured (builder-time or policy errors).
    Config(String),
    /// The request was accepted but its scheduler shut down before a
    /// worker finished it.
    Canceled,
    /// The worker serving the request panicked. The scheduler contains
    /// the panic (the pool keeps serving); only this request fails.
    Panicked,
    /// A failure reported across a service boundary that has no exact
    /// local variant — either the original carried non-serializable
    /// detail (a [`DecodeError`]) or it was synthesized by a remote front
    /// end ([`ErrorCode::NoHealthyWorker`]). The code and message
    /// preserve what crossed the wire.
    Remote {
        /// The original failure's wire code.
        code: ErrorCode,
        /// Human-readable detail rendered on the failing side.
        message: String,
    },
}

impl EngineError {
    /// This error's wire code (exact for every local variant;
    /// [`EngineError::Remote`] reports the code it arrived with).
    pub fn code(&self) -> ErrorCode {
        match self {
            EngineError::UnknownChunk(_) => ErrorCode::UnknownChunk,
            EngineError::EmptyChunk => ErrorCode::EmptyChunk,
            EngineError::EmptyQuery => ErrorCode::EmptyQuery,
            EngineError::TooLarge { .. } => ErrorCode::TooLarge,
            EngineError::Corrupt(_) => ErrorCode::Corrupt,
            EngineError::Storage(_) => ErrorCode::Storage,
            EngineError::Config(_) => ErrorCode::Config,
            EngineError::Canceled => ErrorCode::Canceled,
            EngineError::Panicked => ErrorCode::Panicked,
            EngineError::Remote { code, .. } => *code,
        }
    }

    /// Flattens the error into its wire representation:
    /// `(code, numeric detail, message)`. The numeric detail carries the
    /// chunk id for [`EngineError::UnknownChunk`] and the byte size for
    /// [`EngineError::TooLarge`]; variants whose payload is text put it in
    /// the message.
    pub fn to_wire(&self) -> (ErrorCode, u64, String) {
        match self {
            EngineError::UnknownChunk(id) => (ErrorCode::UnknownChunk, id.0, String::new()),
            EngineError::TooLarge { size } => (ErrorCode::TooLarge, *size, String::new()),
            EngineError::Corrupt(e) => (ErrorCode::Corrupt, 0, e.to_string()),
            EngineError::Storage(msg) => (ErrorCode::Storage, 0, msg.clone()),
            EngineError::Config(msg) => (ErrorCode::Config, 0, msg.clone()),
            EngineError::Remote { code, message } => (*code, 0, message.clone()),
            other => (other.code(), 0, String::new()),
        }
    }

    /// Reconstructs an error from its wire representation. Round-trips
    /// every variant except [`EngineError::Corrupt`], whose structured
    /// [`DecodeError`] cannot cross the wire — it (and codes with no local
    /// variant) come back as [`EngineError::Remote`] carrying the original
    /// code and rendered message.
    pub fn from_wire(code: ErrorCode, detail: u64, message: String) -> EngineError {
        match code {
            ErrorCode::UnknownChunk => EngineError::UnknownChunk(ChunkId(detail)),
            ErrorCode::EmptyChunk => EngineError::EmptyChunk,
            ErrorCode::EmptyQuery => EngineError::EmptyQuery,
            ErrorCode::TooLarge => EngineError::TooLarge { size: detail },
            ErrorCode::Storage => EngineError::Storage(message),
            ErrorCode::Config => EngineError::Config(message),
            ErrorCode::Canceled => EngineError::Canceled,
            ErrorCode::Panicked => EngineError::Panicked,
            ErrorCode::Corrupt | ErrorCode::NoHealthyWorker => {
                EngineError::Remote { code, message }
            }
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownChunk(id) => {
                write!(f, "chunk {id:?} is not registered with this engine")
            }
            EngineError::EmptyChunk => write!(f, "cannot register an empty chunk"),
            EngineError::EmptyQuery => write!(f, "request query must be non-empty"),
            EngineError::TooLarge { size } => {
                write!(f, "chunk cache of {size} bytes exceeds every store tier")
            }
            EngineError::Corrupt(e) => write!(f, "stored cache entry corrupt: {e}"),
            EngineError::Storage(msg) => write!(f, "storage backend failed: {msg}"),
            EngineError::Config(msg) => write!(f, "engine misconfigured: {msg}"),
            EngineError::Canceled => {
                write!(f, "request canceled: scheduler shut down before completion")
            }
            EngineError::Panicked => {
                write!(f, "request failed: its worker panicked while serving it")
            }
            EngineError::Remote { code, message } if message.is_empty() => {
                write!(f, "remote failure: {code:?}")
            }
            EngineError::Remote { code, message } => {
                write!(f, "remote failure ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::TooLarge { size } => EngineError::TooLarge { size },
            StoreError::Corrupt(d) => EngineError::Corrupt(d),
            StoreError::Backend(m) => EngineError::Storage(m),
        }
    }
}

impl From<DecodeError> for EngineError {
    fn from(e: DecodeError) -> Self {
        EngineError::Corrupt(e)
    }
}

/// How [`Engine::submit`] picks the recompute ratio when the request does
/// not override it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RatioPolicy {
    /// Always run at the builder's [`BlendConfig::recompute_ratio`].
    Fixed,
    /// Ask the §5.1 [`LoadingController`] per request: the smallest ratio
    /// whose recomputation hides the serving tier's load delay, floored at
    /// the quality-preserving `r*`. Requires
    /// [`EngineBuilder::paper_model`].
    Auto,
}

/// Scheduling lane of a request in the
/// [`EngineService`](crate::scheduler::EngineService) admission queue.
///
/// Within a lane requests are served FIFO. High-priority requests are
/// served first, but the scheduler guarantees progress for the normal lane
/// (see [`ServiceConfig::fair_burst`](crate::scheduler::ServiceConfig)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive lane, served ahead of [`Priority::Normal`].
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// One serving request: retrieved chunks (by id) plus the user query.
#[derive(Clone, Debug)]
pub struct Request {
    /// Ids of the retrieved chunks, in context order.
    pub chunk_ids: Vec<ChunkId>,
    /// The query suffix (never cached, always recomputed).
    pub query: Vec<TokenId>,
    /// Maximum tokens to decode for the answer.
    pub max_new_tokens: usize,
    /// Per-request recompute-ratio override (else the engine policy).
    pub ratio: Option<f32>,
    /// Scheduling lane when the request goes through an
    /// [`EngineService`](crate::scheduler::EngineService).
    pub priority: Priority,
    /// TTFT deadline, measured from admission-queue entry to first token.
    /// Missing it does not fail the request — the scheduler counts the
    /// miss in its [`ServiceStats`](crate::scheduler::ServiceStats).
    pub deadline: Option<Duration>,
    /// Observability trace id (0 = untraced). Carried across worker hops
    /// in `Submit` frames; the scheduler binds it to the serving thread
    /// so engine phase spans land on this request's timeline.
    pub trace: u64,
    /// Parent span id for spans recorded while serving this request
    /// (e.g. the gateway's `serve` span); 0 roots them at the trace.
    pub trace_parent: u64,
}

impl Request {
    /// A request with the default decode budget (8 tokens), normal
    /// priority, and no deadline.
    pub fn new(chunk_ids: Vec<ChunkId>, query: Vec<TokenId>) -> Self {
        Self {
            chunk_ids,
            query,
            max_new_tokens: 8,
            ratio: None,
            priority: Priority::Normal,
            deadline: None,
            trace: 0,
            trace_parent: 0,
        }
    }

    /// Sets the decode budget.
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new_tokens = n;
        self
    }

    /// Overrides the recompute ratio for this request only.
    pub fn ratio(mut self, r: f32) -> Self {
        self.ratio = Some(r);
        self
    }

    /// Sets the scheduling lane.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets a TTFT deadline (queue entry → first token).
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Attaches an observability trace: phase spans recorded while this
    /// request is served carry `trace` and nest under `parent` (0 for a
    /// trace root).
    pub fn trace(mut self, trace: u64, parent: u64) -> Self {
        self.trace = trace;
        self.trace_parent = parent;
        self
    }
}

/// Where each requested chunk's KV came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkSource {
    /// Served from the store; `tier` is the store tier index.
    Hit {
        /// Index of the tier that held the entry (0 = fastest).
        tier: usize,
    },
    /// Missing (never inserted or LRU-evicted); precomputed and re-inserted
    /// during this request.
    Precomputed,
}

/// Where this request's time went (measured on this process, plus the
/// paper-scale model's prediction when one is configured).
#[derive(Clone, Copy, Debug, Default)]
pub struct TtftBreakdown {
    /// Prefill spent precomputing chunk caches that missed in the store.
    pub precompute: Duration,
    /// Time the fusor sat blocked on the loader thread
    /// ([`crate::pipeline::PipelineReport::wait`]).
    pub load_wait: Duration,
    /// Time the fusor spent computing (selective recompute + suffix
    /// prefill): pipeline total minus load wait.
    pub recompute: Duration,
    /// Greedy decoding of the answer tokens.
    pub decode: Duration,
    /// Whole [`Engine::submit`] wall clock.
    pub total: Duration,
    /// Paper-scale TTFT predicted by the configured [`PerfModel`] for this
    /// request's shape, if the engine has one.
    pub modeled_ttft_s: Option<f64>,
}

/// The engine's answer to one request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Greedily decoded answer tokens.
    pub answer: Vec<TokenId>,
    /// The blend output: fused cache, final residual, per-layer stats.
    /// `blend.cache` includes the decoded answer's rows (appended during
    /// generation), so it is ready for continued decoding.
    pub blend: BlendResult,
    /// Timing evidence.
    pub ttft: TtftBreakdown,
    /// Recompute ratio the request actually ran at.
    pub recompute_ratio: f32,
    /// Per-chunk provenance, in request order.
    pub chunk_sources: Vec<ChunkSource>,
}

/// On-disk layout of a persistent store tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiskLayout {
    /// One segment file per chunk ([`DiskBackend`], the reference
    /// layout): simple, but every entry costs a file open.
    #[default]
    FilePerChunk,
    /// Packed append-only segment logs with group commit and background
    /// compaction ([`SegmentLogBackend`]): thousands of chunks share a
    /// few files, cutting per-entry syscalls and metadata churn.
    PackedLog,
}

/// One tier of an engine's [`StorageConfig`], fastest first.
#[derive(Clone, Debug)]
pub enum TierSpec {
    /// A RAM tier. The device kind names the tier and provides its
    /// delay model for the controller.
    Mem {
        /// Device this tier emulates (naming + delay model).
        device: DeviceKind,
        /// Capacity in bytes.
        capacity: u64,
    },
    /// A persistent disk tier: file-per-chunk segments under `dir`,
    /// surviving process restart. With `throttle` set, reads sleep
    /// according to the device's bandwidth/latency spec — the §5.2 device
    /// grid emulated with real I/O plus real delays.
    Disk {
        /// Device whose spec names and (optionally) throttles the tier.
        device: DeviceKind,
        /// Capacity in bytes.
        capacity: u64,
        /// Cache directory holding the segment files.
        dir: PathBuf,
        /// Emulate the device's read speed with real sleeps.
        throttle: bool,
        /// Other live engines use the same `dir` (cluster replicas over
        /// one persistent tier): entries they persist are discovered on
        /// demand, promotion copies instead of moving, and temp files
        /// never collide. See [`DiskBackend::open_shared`].
        shared: bool,
        /// How entries are laid out on disk.
        layout: DiskLayout,
        /// Store entries int8-quantized (a *cold* tier, ~4× smaller on
        /// disk; transcoded at the tier boundary — see
        /// [`cb_kv::store::TierConfig::quantized`]).
        quantized: bool,
    },
}

impl TierSpec {
    fn device(&self) -> DeviceKind {
        match self {
            TierSpec::Mem { device, .. } | TierSpec::Disk { device, .. } => *device,
        }
    }

    fn capacity(&self) -> u64 {
        match self {
            TierSpec::Mem { capacity, .. } | TierSpec::Disk { capacity, .. } => *capacity,
        }
    }

    fn quantized(&self) -> bool {
        match self {
            TierSpec::Mem { .. } => false,
            TierSpec::Disk { quantized, .. } => *quantized,
        }
    }
}

/// The engine's storage hierarchy: an ordered list of tiers, fastest
/// first. Built fluently:
///
/// ```ignore
/// StorageConfig::default()
///     .tier(DeviceKind::CpuRam, 64 << 20)
///     .disk_tier(DeviceKind::NvmeSsd, 1 << 30, "/var/cache/cb")
/// ```
#[derive(Clone, Debug, Default)]
pub struct StorageConfig {
    /// Tier specs, fastest first. Empty means the default single 1 GiB
    /// CPU-RAM tier.
    pub tiers: Vec<TierSpec>,
}

impl StorageConfig {
    /// Appends a RAM tier.
    pub fn tier(mut self, device: DeviceKind, capacity: u64) -> Self {
        self.tiers.push(TierSpec::Mem { device, capacity });
        self
    }

    /// Appends a persistent (unthrottled) disk tier under `dir`.
    pub fn disk_tier(self, device: DeviceKind, capacity: u64, dir: impl Into<PathBuf>) -> Self {
        self.disk_tier_opts(device, capacity, dir, false)
    }

    /// Appends a persistent disk tier, optionally throttled to the
    /// device's catalogue read speed.
    pub fn disk_tier_opts(
        mut self,
        device: DeviceKind,
        capacity: u64,
        dir: impl Into<PathBuf>,
        throttle: bool,
    ) -> Self {
        self.tiers.push(TierSpec::Disk {
            device,
            capacity,
            dir: dir.into(),
            throttle,
            shared: false,
            layout: DiskLayout::default(),
            quantized: false,
        });
        self
    }

    /// Switches the most recently appended disk tier to the packed
    /// segment-log layout ([`DiskLayout::PackedLog`]). No-op on a RAM
    /// tier.
    pub fn packed_log(mut self) -> Self {
        if let Some(TierSpec::Disk { layout, .. }) = self.tiers.last_mut() {
            *layout = DiskLayout::PackedLog;
        }
        self
    }

    /// Marks the most recently appended disk tier as a quantized *cold*
    /// tier: entries land int8-quantized (~4× smaller on disk) and are
    /// dequantized as they promote out. No-op on a RAM tier.
    pub fn quantized(mut self) -> Self {
        if let Some(TierSpec::Disk { quantized, .. }) = self.tiers.last_mut() {
            *quantized = true;
        }
        self
    }

    /// Appends the full cold tier in one call: packed segment-log layout
    /// plus int8 quantization — the archival bottom of a RAM → disk →
    /// cold hierarchy.
    pub fn cold_tier(self, device: DeviceKind, capacity: u64, dir: impl Into<PathBuf>) -> Self {
        self.disk_tier(device, capacity, dir)
            .packed_log()
            .quantized()
    }

    /// Appends a persistent disk tier whose segment dir is *shared* with
    /// other live engines (cluster replicas all backed by one persistent
    /// tier). Entries persisted by any sibling are servable by every
    /// engine over the dir.
    pub fn shared_disk_tier(
        mut self,
        device: DeviceKind,
        capacity: u64,
        dir: impl Into<PathBuf>,
        throttle: bool,
    ) -> Self {
        self.tiers.push(TierSpec::Disk {
            device,
            capacity,
            dir: dir.into(),
            throttle,
            shared: true,
            layout: DiskLayout::default(),
            quantized: false,
        });
        self
    }
}

/// Builder for [`Engine`].
#[derive(Debug)]
pub struct EngineBuilder {
    profile: ModelProfile,
    seed: u64,
    model: Option<Model>,
    storage: StorageConfig,
    blend: BlendConfig,
    paper: Option<PaperModel>,
    ratio_policy: RatioPolicy,
    emulate_load_delay: bool,
}

impl EngineBuilder {
    /// Starts a builder for a model profile with defaults: seed 11, one
    /// 1 GiB CPU-RAM store tier, default [`BlendConfig`], fixed ratio,
    /// no load-delay emulation.
    pub fn new(profile: ModelProfile) -> Self {
        Self {
            profile,
            seed: 11,
            model: None,
            storage: StorageConfig::default(),
            blend: BlendConfig::default(),
            paper: None,
            ratio_policy: RatioPolicy::Fixed,
            emulate_load_delay: false,
        }
    }

    /// Sets the model compilation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an already-compiled model instead of compiling one from the
    /// profile/seed.
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Appends a RAM store tier (declare fastest first). The device kind
    /// names the tier and provides its load-delay model.
    pub fn tier(mut self, device: DeviceKind, capacity_bytes: u64) -> Self {
        self.storage = self.storage.tier(device, capacity_bytes);
        self
    }

    /// Appends a persistent disk store tier under `dir` (declare fastest
    /// first). Entries spilled or persisted to it survive process restart;
    /// a rebuilt engine over the same `dir` serves them without
    /// re-precompute.
    pub fn disk_tier(
        mut self,
        device: DeviceKind,
        capacity_bytes: u64,
        dir: impl Into<PathBuf>,
    ) -> Self {
        self.storage = self.storage.disk_tier(device, capacity_bytes, dir);
        self
    }

    /// Replaces the whole storage hierarchy with an explicit
    /// [`StorageConfig`].
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the fusor configuration (ratio, gamma, selection policy).
    pub fn blend_config(mut self, cfg: BlendConfig) -> Self {
        self.blend = cfg;
        self
    }

    /// Attaches a paper-scale delay model: enables the [`RatioPolicy::Auto`]
    /// controller and `modeled_ttft_s` in responses.
    pub fn paper_model(mut self, paper: PaperModel) -> Self {
        self.paper = Some(paper);
        self
    }

    /// Sets how the recompute ratio is chosen per request.
    pub fn ratio_policy(mut self, policy: RatioPolicy) -> Self {
        self.ratio_policy = policy;
        self
    }

    /// When set, the loader thread sleeps per layer according to the
    /// serving tier's device read time — end-to-end tests of the §5
    /// pipelining overlap use this. Don't combine it with a *throttled*
    /// disk tier ([`StorageConfig::disk_tier_opts`]): the device delay
    /// would be charged twice.
    pub fn emulate_load_delay(mut self, on: bool) -> Self {
        self.emulate_load_delay = on;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// [`EngineError::Config`] if [`RatioPolicy::Auto`] was requested
    /// without a paper model, or a tier has zero capacity.
    pub fn build(self) -> Result<Engine, EngineError> {
        if self.ratio_policy == RatioPolicy::Auto && self.paper.is_none() {
            return Err(EngineError::Config(
                "RatioPolicy::Auto requires EngineBuilder::paper_model".into(),
            ));
        }
        let specs = if self.storage.tiers.is_empty() {
            vec![TierSpec::Mem {
                device: DeviceKind::CpuRam,
                capacity: 1 << 30,
            }]
        } else {
            self.storage.tiers
        };
        if specs.iter().any(|t| t.capacity() == 0) {
            return Err(EngineError::Config("store tier with zero capacity".into()));
        }
        let tier_devices: Vec<DeviceKind> = specs.iter().map(|t| t.device()).collect();
        let mut tiers: Vec<(TierConfig, Arc<dyn StorageBackend>)> = Vec::with_capacity(specs.len());
        for spec in specs {
            let mut cfg = TierConfig::new(spec.device().spec().name, spec.capacity());
            cfg.quantized = spec.quantized();
            let backend: Arc<dyn StorageBackend> = match spec {
                TierSpec::Mem { .. } => Arc::new(MemBackend::new()),
                TierSpec::Disk {
                    device,
                    dir,
                    throttle,
                    shared,
                    layout,
                    ..
                } => {
                    let throttle = throttle.then(|| Throttle::device(device));
                    let storage_err =
                        |e: cb_storage::BackendError| EngineError::Storage(e.to_string());
                    match layout {
                        DiskLayout::FilePerChunk => {
                            let backend = if shared {
                                DiskBackend::open_shared(dir, throttle)
                            } else {
                                DiskBackend::new(dir, throttle)
                            };
                            Arc::new(backend.map_err(storage_err)?)
                        }
                        DiskLayout::PackedLog => {
                            let backend = if shared {
                                SegmentLogBackend::open_shared(dir, throttle)
                            } else {
                                SegmentLogBackend::new(dir, throttle)
                            };
                            Arc::new(backend.map_err(storage_err)?)
                        }
                    }
                }
            };
            tiers.push((cfg, backend));
        }
        let store = KvStore::with_backends(tiers);
        let model = self
            .model
            .unwrap_or_else(|| Model::compiled(ModelConfig::standard(self.profile, self.seed)));
        let controller = self
            .paper
            .map(|p| LoadingController::new(PerfModel::on_a40(p)));
        Ok(Engine {
            core: Arc::new(EngineCore {
                model,
                store,
                tier_devices,
                blend: self.blend,
                ratio_policy: self.ratio_policy,
                controller,
                emulate_load_delay: self.emulate_load_delay,
                registry: Mutex::new(HashMap::new()),
            }),
        })
    }
}

/// The CacheBlend serving engine — a cheaply cloneable handle whose state
/// (model, tiered store, chunk registry) lives behind an [`Arc`], so
/// clones share one deployment. The
/// [`EngineService`](crate::scheduler::EngineService) workers each hold a
/// clone. See the module docs for the lifecycle.
#[derive(Clone, Debug)]
pub struct Engine {
    core: Arc<EngineCore>,
}

#[derive(Debug)]
struct EngineCore {
    model: Model,
    store: KvStore,
    tier_devices: Vec<DeviceKind>,
    blend: BlendConfig,
    ratio_policy: RatioPolicy,
    controller: Option<LoadingController>,
    emulate_load_delay: bool,
    /// Registered chunk tokens, for precompute-on-miss after LRU eviction.
    registry: Mutex<HashMap<ChunkId, Vec<TokenId>>>,
}

impl Engine {
    /// The engine's model (for vocabulary access and baselines).
    pub fn model(&self) -> &Model {
        &self.core.model
    }

    /// The tiered KV store (for stats and capacity inspection).
    pub fn store(&self) -> &KvStore {
        &self.core.store
    }

    /// The engine's loading controller, when a paper model is configured.
    pub fn controller(&self) -> Option<&LoadingController> {
        self.core.controller.as_ref()
    }

    /// Registers a chunk: content-hashes the tokens, precomputes its
    /// standalone KV cache if the store does not already hold it, and
    /// returns the chunk's id for use in [`Request::chunk_ids`].
    pub fn register_chunk(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.core.register_chunk(tokens)
    }

    /// Registers many chunks, returning ids in input order.
    pub fn register_chunks(&self, chunks: &[Vec<TokenId>]) -> Result<Vec<ChunkId>, EngineError> {
        chunks.iter().map(|c| self.register_chunk(c)).collect()
    }

    /// Registers a chunk *without* precomputing its KV cache: only the
    /// tokens enter the registry, and the cache is computed on the chunk's
    /// first use (charged to that request as a store miss). Use this when
    /// registration must not pay the precompute up front — e.g. serving
    /// backends that measure cold-start admissions.
    pub fn register_chunk_lazy(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.core.register_tokens(tokens)
    }

    /// Forgets a chunk: drops its tokens from the registry *and* its KV
    /// entry from the store, so both the registry retention and the
    /// entry's resident bytes are reclaimed. Long-running deployments
    /// whose chunk corpus churns should unregister retired chunks. After
    /// this, requests naming `id` fail with [`EngineError::UnknownChunk`].
    pub fn unregister_chunk(&self, id: ChunkId) -> bool {
        let registered = self.core.registry.lock().remove(&id).is_some();
        let stored = self.core.store.remove(id);
        registered || stored
    }

    /// Number of chunks currently registered.
    pub fn registered_chunks(&self) -> usize {
        self.core.registry.lock().len()
    }

    /// Demotes every RAM-resident store entry to the persistent tier (if
    /// one is configured) and flushes it, so the KV state survives this
    /// process. An engine rebuilt over the same cache dir then serves
    /// re-registered chunks without re-precompute.
    pub fn persist(&self) -> Result<(), EngineError> {
        self.core.store.persist().map_err(EngineError::from)
    }

    /// Blocks until every storage backend's write-behind queue is durable.
    pub fn flush_storage(&self) -> Result<(), EngineError> {
        self.core.store.flush().map_err(EngineError::from)
    }
}

impl EngineCore {
    fn register_tokens(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        if tokens.is_empty() {
            return Err(EngineError::EmptyChunk);
        }
        let id = hash_tokens(tokens);
        // Content-addressed: a present entry already holds these tokens,
        // so re-registration allocates nothing.
        self.registry
            .lock()
            .entry(id)
            .or_insert_with(|| tokens.to_vec());
        Ok(id)
    }

    fn register_chunk(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        let id = self.register_tokens(tokens)?;
        if !self.store.contains(id) {
            self.precompute_into_store(id, tokens)?;
        }
        Ok(id)
    }

    fn precompute_into_store(
        &self,
        id: ChunkId,
        tokens: &[TokenId],
    ) -> Result<bytes::Bytes, EngineError> {
        let cache = cb_kv::precompute::precompute_chunk(&self.model, tokens);
        let bytes = encode(&cache);
        self.store.insert_bytes(id, bytes.clone())?;
        // A concurrent unregister_chunk may have run between our registry
        // read and this insert; it removes the registry entry *before* the
        // store entry, so if the registry no longer names the chunk we
        // must undo the insert ourselves or the bytes leak unreachably
        // (the in-flight request still serves from `bytes`).
        if !self.registry.lock().contains_key(&id) {
            self.store.remove(id);
        }
        Ok(bytes)
    }

    /// The full request lifecycle with per-phase event emission; see
    /// [`Engine::submit_streaming`].
    fn submit_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Event),
    ) -> Result<Response, EngineError> {
        let prefilled = self.prefill_streaming(request, emit)?;
        Ok(self.decode_prefilled(prefilled, emit))
    }

    /// Everything up to and including the `FirstToken` emission: chunk
    /// fetch/repair, ratio selection, and the blend. The returned
    /// [`Prefilled`] carries what decode needs, so the scheduler's batched
    /// path can hand it to a shared decode loop while this worker prefills
    /// the next request (blend/decode overlap).
    pub(crate) fn prefill_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Event),
    ) -> Result<Prefilled, EngineError> {
        if request.query.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        let t0 = Instant::now();

        // Store lookup per chunk: a hit *prefetches* (disk-resident
        // entries start streaming layer blocks immediately, ahead of the
        // fusor); a miss is repaired by precompute. The hit path only
        // needs the chunk's length — the token vector is cloned out of the
        // registry solely when a miss must be re-precomputed.
        let mut parts: Vec<PrefetchHandle> = Vec::with_capacity(request.chunk_ids.len());
        let mut chunk_sources = Vec::with_capacity(request.chunk_ids.len());
        let mut slowest_tier = 0usize;
        let mut hit_rows = 0usize;
        let mut miss_rows = 0usize;
        let mut precompute = Duration::ZERO;
        let fetch_span = cb_obs::trace::Span::begin("prefill.fetch");
        for &id in &request.chunk_ids {
            let chunk_len = self
                .registry
                .lock()
                .get(&id)
                .map(Vec::len)
                .ok_or(EngineError::UnknownChunk(id))?;
            match self.store.prefetch(id)? {
                Some(handle) => {
                    slowest_tier = slowest_tier.max(handle.tier());
                    hit_rows += chunk_len;
                    chunk_sources.push(ChunkSource::Hit {
                        tier: handle.tier(),
                    });
                    parts.push(handle);
                }
                None => {
                    let tokens = self
                        .registry
                        .lock()
                        .get(&id)
                        .cloned()
                        .ok_or(EngineError::UnknownChunk(id))?;
                    let t = Instant::now();
                    let bytes = self.precompute_into_store(id, &tokens)?;
                    precompute += t.elapsed();
                    miss_rows += chunk_len;
                    chunk_sources.push(ChunkSource::Precomputed);
                    // Served from the just-computed bytes (RAM), whatever
                    // tier the store placed the entry on.
                    parts.push(PrefetchHandle::from_bytes(bytes, 0)?);
                }
            }
        }
        fetch_span.end();
        let ctx_rows = hit_rows + miss_rows;

        // The serving tier is the slowest tier any hit came from; its
        // device model drives the controller and delay emulation.
        let device = self.tier_devices[slowest_tier.min(self.tier_devices.len() - 1)];
        let recompute_ratio = match request.ratio {
            Some(r) => r,
            None => match self.ratio_policy {
                RatioPolicy::Fixed => self.blend.recompute_ratio,
                RatioPolicy::Auto => {
                    let ctl = self.controller.as_ref().expect("checked at build");
                    ctl.pick_ratio(ctx_rows.max(1), device) as f32
                }
            },
        };
        let cfg = BlendConfig {
            recompute_ratio,
            ..self.blend
        };
        let throttle = if self.emulate_load_delay {
            let mut total_bytes = 0usize;
            for h in &mut parts {
                total_bytes += h.meta().map_err(EngineError::from)?.entry_len();
            }
            let per_layer = total_bytes as f64 / self.model.n_layers() as f64;
            Some(Duration::from_secs_f64(device.read_time(per_layer)))
        } else {
            None
        };

        let blend_span = cb_obs::trace::Span::begin("prefill.blend");
        let out = blend_prefetched(&self.model, cfg, parts, &request.query, throttle)?;
        blend_span.end();

        // Prefill is complete — the next computed row is the first answer
        // token. The breakdown emitted here is the TTFT measurement;
        // `decode`/`total` are finalized in the response's copy.
        let ttft = TtftBreakdown {
            precompute,
            load_wait: out.report.wait,
            recompute: out.report.total.saturating_sub(out.report.wait),
            decode: Duration::ZERO,
            total: t0.elapsed(),
            // Charge hits as pipelined blend from the serving tier and
            // misses as full prefill — the same split the serving
            // simulator charges via [`blend_admission`].
            modeled_ttft_s: self.controller.as_ref().map(|c| {
                blend_admission(
                    &c.perf,
                    device,
                    recompute_ratio as f64,
                    hit_rows,
                    miss_rows,
                    request.query.len(),
                )
                .ttft_s
            }),
        };
        emit(Event::FirstToken(ttft));
        Ok(Prefilled {
            blend: out.result,
            ttft,
            recompute_ratio,
            chunk_sources,
            max_new_tokens: request.max_new_tokens,
            started: t0,
        })
    }

    /// The sequential decode half of [`EngineCore::submit_streaming`]:
    /// greedy-decodes the blended cache, emitting `Token` events, and
    /// finalizes the response's TTFT copy.
    pub(crate) fn decode_prefilled(
        &self,
        prefilled: Prefilled,
        emit: &mut dyn FnMut(Event),
    ) -> Response {
        let Prefilled {
            mut blend,
            mut ttft,
            recompute_ratio,
            chunk_sources,
            max_new_tokens,
            started,
        } = prefilled;
        let t_dec = Instant::now();
        let decode_span = cb_obs::trace::Span::begin("decode");
        let answer = self.model.decode_greedy_with(
            &mut blend.cache,
            &blend.last_residual,
            max_new_tokens,
            &mut |t| emit(Event::Token(t)),
        );
        decode_span.end();
        ttft.decode = t_dec.elapsed();
        ttft.total = started.elapsed();
        Response {
            answer,
            blend,
            ttft,
            recompute_ratio,
            chunk_sources,
        }
    }
}

/// A request that has completed prefill (blend done, `FirstToken` emitted)
/// but not yet decoded; produced by [`EngineCore::prefill_streaming`] and
/// consumed either by [`EngineCore::decode_prefilled`] (sequential) or by
/// the scheduler's continuous-batching decode loop.
pub(crate) struct Prefilled {
    pub(crate) blend: BlendResult,
    pub(crate) ttft: TtftBreakdown,
    pub(crate) recompute_ratio: f32,
    pub(crate) chunk_sources: Vec<ChunkSource>,
    pub(crate) max_new_tokens: usize,
    pub(crate) started: Instant,
}

impl Engine {
    /// Serves one request. See the module docs for the lifecycle; returns
    /// the decoded answer plus blend statistics and a TTFT breakdown.
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        self.core.submit_streaming(&request, &mut |_| {})
    }

    /// The prefill half of [`Engine::submit_streaming`] (through the
    /// `FirstToken` emission); the scheduler's batched decode path pairs
    /// it with a shared [`cb_model::DecodeBatch`] loop.
    pub(crate) fn prefill_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Event),
    ) -> Result<Prefilled, EngineError> {
        self.core.prefill_streaming(request, emit)
    }

    /// Serves one request, emitting streaming [`Event`]s as each phase
    /// completes: [`Event::FirstToken`] when prefill finishes (that
    /// breakdown *is* the TTFT measurement — its `decode` is zero) and
    /// [`Event::Token`] per decoded answer token. The returned response is
    /// identical to [`Engine::submit`]'s. The
    /// [`EngineService`](crate::scheduler::EngineService) scheduler wraps
    /// this with [`Event::Queued`]/[`Event::Admitted`]/[`Event::Done`].
    pub fn submit_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Event),
    ) -> Result<Response, EngineError> {
        self.core.submit_streaming(request, emit)
    }

    /// Serves a batch concurrently, returning per-request results in input
    /// order.
    ///
    /// Compatibility wrapper over the streaming scheduler: the batch is
    /// routed through an ephemeral
    /// [`EngineService`](crate::scheduler::EngineService) sized to the
    /// batch (so batch serving and continuous serving exercise one code
    /// path). Deployments serving an ongoing request stream should hold a
    /// long-lived service instead of calling this repeatedly.
    pub fn submit_many(&self, requests: Vec<Request>) -> Vec<Result<Response, EngineError>> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
            .min(8);
        if workers <= 1 {
            return requests
                .iter()
                .map(|r| self.core.submit_streaming(r, &mut |_| {}))
                .collect();
        }
        let service = EngineService::new(
            self.clone(),
            ServiceConfig::default().workers(workers).queue_capacity(n),
        );
        let streams: Vec<_> = requests
            .into_iter()
            .map(|r| service.submit_stream(r))
            .collect();
        streams.into_iter().map(|s| s.collect()).collect()
    }
}

/// Paper-scale admission cost of one blended request: cached context is
/// loaded pipelined with selective recompute, missed context and the query
/// are prefilled in full. `ttft_s` is the request's latency contribution;
/// `gpu_s` is the GPU busy time it leaves behind (loading overlaps compute,
/// so they differ). This is the engine's delay model — the serving
/// simulator's CacheBlend arm goes through it rather than re-deriving the
/// formula.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionCost {
    /// Seconds until the first token (queueing excluded).
    pub ttft_s: f64,
    /// GPU-seconds of compute consumed.
    pub gpu_s: f64,
}

/// Computes the [`AdmissionCost`] of a blended request with `hit_tokens`
/// of cached context on `device`, `miss_tokens` of uncached context, and a
/// `query_tokens` suffix.
pub fn blend_admission(
    perf: &PerfModel,
    device: DeviceKind,
    ratio: f64,
    hit_tokens: usize,
    miss_tokens: usize,
    query_tokens: usize,
) -> AdmissionCost {
    let (blend_ttft, blend_gpu) = if hit_tokens > 0 {
        (
            perf.ttft_blend(ratio, hit_tokens, 0, device),
            perf.blend_compute_time(ratio, hit_tokens, 0),
        )
    } else {
        (0.0, 0.0)
    };
    let miss = perf.ttft_full_prefill(miss_tokens + query_tokens);
    AdmissionCost {
        ttft_s: blend_ttft + miss,
        gpu_s: blend_gpu + miss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_tokenizer::TokenKind::*;

    fn engine() -> Engine {
        EngineBuilder::new(ModelProfile::Tiny).build().unwrap()
    }

    fn scenario(e: &Engine) -> (Vec<TokenId>, Vec<TokenId>, Vec<TokenId>, TokenId) {
        let v = &e.model().cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [
            Ref,
            Attr(3),
            Value(9),
            Sep,
            Entity(8),
            Attr(1),
            Value(4),
            Sep,
        ]
        .map(|k| v.id(k))
        .to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        (c1, c2, q, v.id(Value(9)))
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn submit_answers_the_cross_chunk_query() {
        let e = engine();
        let (c1, c2, q, gold) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        let resp = e
            .submit(Request::new(ids, q).ratio(0.45).max_new_tokens(4))
            .unwrap();
        assert_eq!(resp.answer, vec![gold]);
        assert!(resp
            .chunk_sources
            .iter()
            .all(|s| matches!(s, ChunkSource::Hit { tier: 0 })));
        assert_eq!(resp.blend.stats.ctx_len, 13); // BOS + 4 + 8
    }

    #[test]
    fn unknown_chunk_is_an_error() {
        let e = engine();
        let (_, _, q, _) = scenario(&e);
        let err = e.submit(Request::new(vec![ChunkId(42)], q)).unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(ChunkId(42)));
    }

    #[test]
    fn empty_query_is_an_error() {
        let e = engine();
        let err = e.submit(Request::new(vec![], vec![])).unwrap_err();
        assert_eq!(err, EngineError::EmptyQuery);
    }

    #[test]
    fn empty_chunk_is_an_error() {
        let e = engine();
        assert_eq!(e.register_chunk(&[]).unwrap_err(), EngineError::EmptyChunk);
    }

    #[test]
    fn evicted_entries_are_precomputed_on_miss() {
        // A store sized for one entry forces the first chunk out when the
        // second is registered; submit must repair it transparently.
        let e0 = engine();
        let (c1, c2, q, gold) = scenario(&e0);
        let entry_size = {
            let cache = cb_kv::precompute::precompute_chunk(e0.model(), &c2);
            encode(&cache).len() as u64
        };
        let e = EngineBuilder::new(ModelProfile::Tiny)
            .tier(DeviceKind::CpuRam, entry_size + entry_size / 4)
            .build()
            .unwrap();
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        assert_eq!(e.store().len(), 1, "tiny tier must have evicted");
        let resp = e
            .submit(Request::new(ids, q).ratio(0.45).max_new_tokens(4))
            .unwrap();
        assert_eq!(resp.answer, vec![gold]);
        assert!(resp.chunk_sources.contains(&ChunkSource::Precomputed));
        assert!(resp.ttft.precompute > Duration::ZERO);
    }

    #[test]
    fn corrupt_store_entry_surfaces_unified_error() {
        let e = engine();
        let (c1, _, q, _) = scenario(&e);
        let id = e.register_chunk(&c1).unwrap();
        assert!(e.store().corrupt(id, 40));
        let err = e.submit(Request::new(vec![id], q)).unwrap_err();
        assert!(matches!(err, EngineError::Corrupt(_)));
    }

    #[test]
    fn auto_policy_requires_paper_model() {
        let err = EngineBuilder::new(ModelProfile::Tiny)
            .ratio_policy(RatioPolicy::Auto)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn auto_policy_floors_at_quality_ratio() {
        let e = EngineBuilder::new(ModelProfile::Tiny)
            .paper_model(PaperModel::Mistral7B)
            .ratio_policy(RatioPolicy::Auto)
            .build()
            .unwrap();
        let (c1, c2, q, _) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        let resp = e.submit(Request::new(ids, q)).unwrap();
        // The engine must run at exactly the controller's pick for this
        // context length and tier, which is itself floored at r* = 15%.
        let expect =
            e.controller()
                .unwrap()
                .pick_ratio(resp.blend.stats.ctx_len - 1, DeviceKind::CpuRam) as f32;
        assert!((resp.recompute_ratio - expect).abs() < 1e-6);
        assert!(resp.recompute_ratio >= 0.15);
        assert!(resp.ttft.modeled_ttft_s.unwrap() > 0.0);
    }

    #[test]
    fn unregister_bounds_the_registry() {
        let e = engine();
        let (c1, c2, q, _) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        assert_eq!(e.registered_chunks(), 2);
        assert!(e.unregister_chunk(ids[0]));
        assert!(!e.unregister_chunk(ids[0]), "second removal is a no-op");
        assert_eq!(e.registered_chunks(), 1);
        let err = e.submit(Request::new(ids.clone(), q)).unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(ids[0]));
    }

    #[test]
    fn unregister_reclaims_store_capacity() {
        // Regression: unregistering used to drop only the registry tokens
        // and leave the serialized KV entry resident, so the "freed"
        // capacity could never be reused.
        let e = engine();
        let (c1, c2, _, _) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        let used_both = e.store().tier_used(0);
        assert!(used_both > 0);
        assert!(e.unregister_chunk(ids[0]));
        assert!(!e.store().contains(ids[0]), "KV entry must be dropped too");
        assert!(e.store().tier_used(0) < used_both);
        assert!(e.unregister_chunk(ids[1]));
        assert_eq!(e.store().tier_used(0), 0, "all bytes reclaimed");
        assert_eq!(e.store().len(), 0);
    }

    #[test]
    fn lazy_registration_defers_precompute_to_first_use() {
        let e = engine();
        let (c1, _, q, _) = scenario(&e);
        let id = e.register_chunk_lazy(&c1).unwrap();
        assert!(!e.store().contains(id), "no KV precomputed at registration");
        assert_eq!(e.registered_chunks(), 1);
        let resp = e.submit(Request::new(vec![id], q).ratio(0.45)).unwrap();
        assert_eq!(resp.chunk_sources, vec![ChunkSource::Precomputed]);
        assert!(e.store().contains(id), "first use populated the store");
    }

    #[test]
    fn engine_clones_share_state() {
        let e = engine();
        let (c1, _, q, _) = scenario(&e);
        let clone = e.clone();
        let id = clone.register_chunk(&c1).unwrap();
        assert_eq!(e.registered_chunks(), 1, "clones share the registry");
        assert!(e.store().contains(id));
        let resp = e.submit(Request::new(vec![id], q).ratio(0.45)).unwrap();
        assert_eq!(resp.chunk_sources, vec![ChunkSource::Hit { tier: 0 }]);
    }

    #[test]
    fn modeled_ttft_charges_misses_as_prefill() {
        // Same request shape, warm vs cold store: the cold request's
        // modeled TTFT must carry the full-prefill term for its misses,
        // matching what blend_admission charges the simulator.
        let (c1, c2, q, _) = scenario(&engine());
        let build = |cap: Option<u64>| {
            let mut b = EngineBuilder::new(ModelProfile::Tiny).paper_model(PaperModel::Mistral7B);
            if let Some(cap) = cap {
                b = b.tier(DeviceKind::CpuRam, cap);
            }
            b.build().unwrap()
        };
        let warm = build(None);
        let ids = warm.register_chunks(&[c1.clone(), c2.clone()]).unwrap();
        let warm_resp = warm
            .submit(Request::new(ids, q.clone()).ratio(0.3))
            .unwrap();

        let entry = {
            let cache = cb_kv::precompute::precompute_chunk(warm.model(), &c2);
            encode(&cache).len() as u64
        };
        let cold = build(Some(entry + entry / 4));
        let ids = cold.register_chunks(&[c1, c2]).unwrap();
        let cold_resp = cold.submit(Request::new(ids, q).ratio(0.3)).unwrap();
        assert!(cold_resp.chunk_sources.contains(&ChunkSource::Precomputed));
        let (w, c) = (
            warm_resp.ttft.modeled_ttft_s.unwrap(),
            cold_resp.ttft.modeled_ttft_s.unwrap(),
        );
        assert!(c > w, "cold modeled TTFT {c} must exceed warm {w}");
    }

    #[test]
    fn submit_many_preserves_order_and_matches_submit() {
        let e = engine();
        let (c1, c2, q, gold) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        let reqs: Vec<Request> = (0..12)
            .map(|i| {
                Request::new(ids.clone(), q.clone())
                    .ratio(if i % 2 == 0 { 0.45 } else { 1.0 })
                    .max_new_tokens(4)
            })
            .collect();
        let out = e.submit_many(reqs);
        assert_eq!(out.len(), 12);
        for r in out {
            assert_eq!(r.unwrap().answer, vec![gold]);
        }
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "cb-engine-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disk_tier_serves_spilled_chunks() {
        // RAM sized below one entry: every registered chunk falls through
        // to the disk tier, and submit streams it back layer by layer.
        let dir = test_dir("serve");
        let e = EngineBuilder::new(ModelProfile::Tiny)
            .storage(
                StorageConfig::default()
                    .tier(DeviceKind::CpuRam, 64)
                    .disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir),
            )
            .build()
            .unwrap();
        let (c1, c2, q, gold) = scenario(&e);
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        assert!(ids.iter().all(|&id| e.store().tier_of(id) == Some(1)));
        let resp = e
            .submit(Request::new(ids, q).ratio(0.45).max_new_tokens(4))
            .unwrap();
        assert_eq!(resp.answer, vec![gold]);
        assert!(resp
            .chunk_sources
            .iter()
            .all(|s| matches!(s, ChunkSource::Hit { tier: 1 })));
        assert!(e.store().stats().loaded_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_rebuilt_on_cache_dir_serves_without_recompute() {
        // The acceptance scenario: persist, drop the engine, rebuild over
        // the same cache dir, re-register the same chunks (content hashes
        // match the recovered entries) and serve warm.
        let dir = test_dir("rebuild");
        let build = || {
            EngineBuilder::new(ModelProfile::Tiny)
                .disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir)
                .build()
                .unwrap()
        };
        let (c1, c2, q, gold) = {
            let e = build();
            let (c1, c2, q, gold) = scenario(&e);
            let ids = e.register_chunks(&[c1.clone(), c2.clone()]).unwrap();
            assert_eq!(e.store().stats().inserts, 2, "cold registration computes");
            let resp = e
                .submit(Request::new(ids, q.clone()).ratio(0.45).max_new_tokens(4))
                .unwrap();
            assert_eq!(resp.answer, vec![gold]);
            e.persist().unwrap();
            (c1, c2, q, gold)
        };

        let e = build();
        assert_eq!(e.store().len(), 2, "recovered from the cache dir");
        let ids = e.register_chunks(&[c1, c2]).unwrap();
        assert_eq!(
            e.store().stats().inserts,
            0,
            "re-registration must not re-precompute"
        );
        let resp = e
            .submit(Request::new(ids, q).ratio(0.45).max_new_tokens(4))
            .unwrap();
        assert_eq!(resp.answer, vec![gold], "warm answer served from disk");
        assert!(resp
            .chunk_sources
            .iter()
            .all(|s| matches!(s, ChunkSource::Hit { .. })));
        assert!(
            resp.ttft.precompute == Duration::ZERO,
            "no recompute charged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unregister_reclaims_disk_tier_too() {
        let dir = test_dir("unregister");
        let e = EngineBuilder::new(ModelProfile::Tiny)
            .tier(DeviceKind::CpuRam, 1 << 20)
            .disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir)
            .build()
            .unwrap();
        let (c1, _, _, _) = scenario(&e);
        let id = e.register_chunk(&c1).unwrap();
        assert_eq!(e.store().tier_of(id), Some(0));
        e.persist().unwrap();
        assert_eq!(e.store().tier_of(id), Some(1));
        assert!(e.unregister_chunk(id));
        e.flush_storage().unwrap();
        assert!(!e.store().contains(id));
        assert_eq!(e.store().used_bytes(), 0, "both tiers reclaimed");
        // A rebuilt engine must not resurrect the unregistered chunk.
        drop(e);
        let e2 = EngineBuilder::new(ModelProfile::Tiny)
            .disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir)
            .build()
            .unwrap();
        assert_eq!(e2.store().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_cost_orders_sensibly() {
        let perf = PerfModel::on_a40(PaperModel::Yi34B);
        let warm = blend_admission(&perf, DeviceKind::NvmeSsd, 0.15, 3072, 0, 32);
        let cold = blend_admission(&perf, DeviceKind::NvmeSsd, 0.15, 0, 3072, 32);
        assert!(
            warm.ttft_s < cold.ttft_s,
            "{} !< {}",
            warm.ttft_s,
            cold.ttft_s
        );
        assert!(warm.gpu_s < cold.gpu_s);
        assert!(cold.ttft_s == cold.gpu_s, "cold path is pure prefill");
    }
}
