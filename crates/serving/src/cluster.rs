//! Cluster serving: N engine replicas behind one chunk-locality router —
//! now a thin facade over the `cb-net` control plane.
//!
//! One [`EngineService`] scales *up* (more workers over one engine); this
//! module scales *out*: a [`ClusterService`] fronts several replicas, each
//! with its own model instance, scheduler, and RAM store tier — typically
//! all backed by one **shared persistent tier** (a
//! [`DiskBackend::open_shared`] segment dir), so any replica can serve any
//! chunk via the existing prefetch pipeline even when its RAM is cold.
//!
//! **Architecture.** The routing, spill, and failover policy lives in
//! [`cb_net::gateway::Gateway`]; this facade wires each replica behind a
//! [`cb_net::worker::Worker`] over an in-process
//! [`loopback transport`](cb_net::transport::LoopbackTransport) and
//! attaches them all to one gateway. Loopback carries *encoded frames*,
//! so every in-process cluster test exercises the identical wire protocol
//! the TCP deployment uses — routing decisions, spill rounds, heartbeats,
//! and token streams all cross the codec.
//!
//! **Routing.** Requests are routed by *rendezvous hashing over their
//! chunk ids*: every chunk has a stable home replica, and a request goes
//! to the replica home to the most of its chunks. Repeated RAG contexts —
//! the paper's workload is exactly this — keep hitting the replica whose
//! RAM cache is already warm.
//!
//! **Spill and failover.** Admission is non-blocking at the routed
//! replica: a full queue answers `Rejected` and the gateway respills the
//! request to the least-loaded healthy replica (blocking there only when
//! every healthy queue is full). Replica health combines the operator
//! mark, the scheduler probe, heartbeat freshness, and connection
//! liveness; [`ClusterStats::failovers`] counts health **down-edges**
//! idempotently — a replica observed down twice is one failover, a
//! replica that recovers and fails again is two. A replica whose worker
//! session dies and re-attaches ([`ClusterService::bounce_replica`])
//! *adopts* its old slot via its stable worker identity: homes,
//! admission counters, and roster size are all unchanged. Requests
//! stranded mid-stream on a dead replica are transparently retried on a
//! healthy sibling ([`ClusterStats::retries`]), the already-delivered
//! prefix suppressed.
//!
//! **Observability.** [`ClusterStats`] reports per-replica admissions, the
//! chunk- and request-level locality rates, spill/reroute/failover counts,
//! and the summed scheduler counters (deadline misses included).
//!
//! [`DiskBackend::open_shared`]: cb_storage::DiskBackend::open_shared

use std::sync::Arc;
use std::time::{Duration, Instant};

use cb_core::engine::{Engine, EngineError, Request, Response};
use cb_core::scheduler::{EngineService, ServiceConfig, ServiceStats};
use cb_core::stream::ResponseStream;
use cb_kv::ChunkId;
use cb_net::gateway::{Gateway, GatewayConfig};
use cb_net::transport::loopback_pair;
use cb_net::worker::{Worker, WorkerConfig};
use cb_tokenizer::TokenId;

pub use cb_net::gateway::{ClusterError, ClusterStats};

/// The cluster front end (see module docs). Dropping it shuts the gateway
/// down first (closing worker sessions), then every replica's scheduler
/// after draining its queue.
#[derive(Debug)]
pub struct ClusterService {
    // Field order is drop order: gateway before workers before services.
    gateway: Gateway,
    #[allow(dead_code)] // Held for teardown; all traffic flows via the gateway.
    workers: Vec<Worker>,
    services: Vec<Arc<EngineService>>,
}

impl ClusterService {
    /// Fronts an explicit set of running replicas: each is wrapped in a
    /// control-plane worker and attached to a fresh gateway over a
    /// loopback transport.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<EngineService>) -> Self {
        assert!(!replicas.is_empty(), "cluster needs at least one replica");
        let services: Vec<Arc<EngineService>> = replicas.into_iter().map(Arc::new).collect();
        let gateway = Gateway::new(GatewayConfig::default());
        let workers = services
            .iter()
            .map(|service| {
                let (worker_end, gateway_end) = loopback_pair();
                let worker = Worker::start(
                    Arc::clone(service),
                    Arc::new(worker_end),
                    WorkerConfig::default(),
                )
                .expect("loopback worker handshake cannot fail");
                gateway
                    .attach(Arc::new(gateway_end))
                    .expect("loopback attach cannot fail");
                worker
            })
            .collect();
        Self {
            gateway,
            workers,
            services,
        }
    }

    /// Builds `n` replicas from an engine factory (called with the replica
    /// index) and starts each behind its own scheduler with `service_cfg`.
    /// Replicas meant to produce identical outputs must be built from the
    /// same model profile and seed — routing then changes only placement
    /// and latency, never results.
    pub fn build<F>(
        n: usize,
        service_cfg: ServiceConfig,
        mut engine: F,
    ) -> Result<Self, EngineError>
    where
        F: FnMut(usize) -> Result<Engine, EngineError>,
    {
        let replicas = (0..n)
            .map(|i| Ok(EngineService::new(engine(i)?, service_cfg)))
            .collect::<Result<Vec<_>, EngineError>>()?;
        Ok(Self::new(replicas))
    }

    /// The gateway this facade fronts (direct access for network-level
    /// tooling — e.g. attaching remote TCP clients to an in-process
    /// cluster).
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Number of replicas (healthy or not).
    pub fn n_replicas(&self) -> usize {
        self.services.len()
    }

    /// A replica's scheduler (for stats, probes, or direct registration).
    pub fn replica(&self, i: usize) -> &EngineService {
        &self.services[i]
    }

    /// Marks a replica up or down for routing. A downed replica receives
    /// no new cluster traffic (in-flight requests finish); marking it up
    /// restores it. Fault-injection tests and operators use this.
    /// Idempotent with respect to [`ClusterStats::failovers`]: only the
    /// down-transition counts.
    pub fn set_replica_health(&self, i: usize, healthy: bool) {
        self.gateway.set_worker_health(i, healthy);
    }

    /// True if replica `i` is eligible for routing: marked up, its
    /// scheduler can make progress, and its heartbeats are fresh.
    pub fn replica_healthy(&self, i: usize) -> bool {
        self.gateway.worker_healthy(i)
    }

    /// Simulates replica `i`'s worker process dying and restarting: the
    /// old control-plane session is torn down (the gateway observes the
    /// disconnect — one failover edge), then a fresh worker re-attaches
    /// under the **same identity with a bumped incarnation** and adopts
    /// its old slot — same index, chunk homes untouched, roster size
    /// unchanged, one adoption counted. The replica's engine and warm
    /// cache survive, exactly like a worker process that kept its store
    /// across a reconnect.
    pub fn bounce_replica(&mut self, i: usize) {
        let (id, incarnation) = self.workers[i].identity();
        let (worker_end, gateway_end) = loopback_pair();
        let replacement = Worker::start(
            Arc::clone(&self.services[i]),
            Arc::new(worker_end),
            WorkerConfig::default().identity(id, incarnation + 1),
        )
        .expect("loopback worker handshake cannot fail");
        // Drop the old session and wait until the gateway has observed
        // the death — a restarted process always dials back after its
        // predecessor's sockets closed.
        self.workers[i] = replacement;
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.gateway.worker_healthy(i) {
            assert!(
                Instant::now() < deadline,
                "gateway never observed the bounced replica's disconnect"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let adopted = self
            .gateway
            .attach(Arc::new(gateway_end))
            .expect("loopback re-attach cannot fail");
        assert_eq!(adopted, i, "re-attach must adopt the old slot");
    }

    /// The stable home replica of a chunk: the replica with the highest
    /// rendezvous score for its id, over *all* replicas (health does not
    /// move homes — routing falls back instead, so a recovering replica
    /// finds its cache assignments unchanged).
    pub fn home_of(&self, id: ChunkId) -> usize {
        self.gateway.home_of(id)
    }

    /// The locality-preferred replica for a chunk set (health ignored).
    pub fn preferred(&self, chunk_ids: &[ChunkId]) -> usize {
        self.gateway.preferred(chunk_ids)
    }

    /// Routing decision for a chunk set: the locality-preferred replica if
    /// healthy, else the healthy replica with the best (votes, rendezvous)
    /// rank. `None` if no replica is healthy. The second field reports
    /// whether the preferred replica had to be skipped (a reroute).
    pub fn route(&self, chunk_ids: &[ChunkId]) -> Option<(usize, bool)> {
        self.gateway.route(chunk_ids)
    }

    /// The healthy replica currently owing the least work (queued plus in
    /// flight) per its latest probe. Ties go to the lowest index.
    pub fn least_loaded(&self, exclude: Option<usize>) -> Option<usize> {
        self.gateway.least_loaded(exclude)
    }

    /// Registers a chunk cluster-wide: the tokens enter every replica's
    /// registry (so any replica can repair a miss by precompute), the KV
    /// cache is precomputed eagerly only at the chunk's *home* replica —
    /// warming exactly the cache the router will route to — and the
    /// entry is replicated onto the home store's persistent tier (when
    /// one is configured), so a spilled or failed-over request at any
    /// sibling replica discovers it there instead of re-precomputing.
    pub fn register_chunk(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.gateway.register_chunk(tokens)
    }

    /// Registers a chunk on every replica without precomputing any KV
    /// (content-addressed ids are identical across replicas). The first
    /// request naming it pays the precompute at whichever replica serves
    /// it.
    pub fn register_chunk_lazy(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.gateway.register_chunk_lazy(tokens)
    }

    /// Registers many chunks, returning ids in input order.
    pub fn register_chunks(&self, chunks: &[Vec<TokenId>]) -> Result<Vec<ChunkId>, EngineError> {
        self.gateway.register_chunks(chunks)
    }

    /// Submits a request through the locality router and returns its event
    /// stream. Placement: routed replica if it admits, else respill to the
    /// least-loaded healthy replica (blocking there only if every healthy
    /// queue is full). Admission is asynchronous — a rejection at the
    /// routed replica is observed and re-placed by the gateway without the
    /// caller blocking.
    pub fn submit_stream(&self, request: Request) -> Result<ResponseStream, ClusterError> {
        self.gateway.submit_stream(request)
    }

    /// Blocking one-shot convenience over [`ClusterService::submit_stream`].
    /// A fully-unhealthy cluster surfaces the structured
    /// [`EngineError::Remote`] carrying
    /// [`ErrorCode::NoHealthyWorker`](cb_core::engine::ErrorCode::NoHealthyWorker).
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        self.gateway.submit(request)
    }

    /// Submits directly to an explicit replica, bypassing the router but
    /// keeping the cluster accounting (admin tooling and the bench harness
    /// drive placement themselves).
    pub fn submit_to(&self, replica: usize, request: Request) -> ResponseStream {
        self.gateway.submit_to(replica, request)
    }

    /// Snapshot of the cluster counters.
    ///
    /// Note: the retry/failover/adoption/spill counters here are also
    /// published into the metrics registry as `cb_gateway_*_total` and
    /// reachable through [`ClusterService::scrape`] alongside every other
    /// series — prefer the scrape for monitoring; this struct remains for
    /// in-process assertions.
    pub fn stats(&self) -> ClusterStats {
        self.gateway.stats()
    }

    /// Cluster-aggregated metrics registry snapshot (see
    /// [`Gateway::scrape`]): counters, gauges, and TTFT/queue-wait
    /// histograms across the gateway and every worker, ready for
    /// [`to_prometheus`](cb_obs::metrics::MetricsSnapshot::to_prometheus)
    /// rendering.
    pub fn scrape(&self) -> cb_obs::metrics::MetricsSnapshot {
        self.gateway.scrape()
    }

    /// Per-replica scheduler counters.
    ///
    /// Note: process-wide totals of these counters are also live in the
    /// metrics registry (`cb_requests_*_total`); this per-replica view
    /// remains authoritative for placement assertions.
    pub fn service_stats(&self) -> Vec<ServiceStats> {
        self.services.iter().map(|r| r.stats()).collect()
    }

    /// Summed scheduler counters across replicas (deadline misses, peak
    /// queue depth as the max over replicas).
    pub fn aggregate_service_stats(&self) -> ServiceStats {
        let mut agg = ServiceStats::default();
        for s in self.service_stats() {
            agg.submitted += s.submitted;
            agg.rejected += s.rejected;
            agg.completed += s.completed;
            agg.failed += s.failed;
            agg.deadline_misses += s.deadline_misses;
            agg.canceled += s.canceled;
            agg.peak_queue_depth = agg.peak_queue_depth.max(s.peak_queue_depth);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_core::engine::{EngineBuilder, ErrorCode};
    use cb_model::ModelProfile;
    use cb_tokenizer::TokenKind::*;

    /// SplitMix64 finalizer — the same mix the gateway's rendezvous
    /// scoring uses; tests reuse it as a cheap id scrambler.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn cluster(n: usize, workers: usize, capacity: usize) -> ClusterService {
        ClusterService::build(
            n,
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(capacity),
            |_| EngineBuilder::new(ModelProfile::Tiny).build(),
        )
        .unwrap()
    }

    /// Registers `n` distinct chunks and the cross-chunk query.
    fn scenario(c: &ClusterService, n: usize) -> (Vec<ChunkId>, Vec<TokenId>) {
        let v = c.replica(0).engine().model().cfg.vocab.clone();
        let chunks: Vec<Vec<TokenId>> = (0..n)
            .map(|i| {
                vec![
                    v.id(Entity(i as u32 % 16)),
                    v.id(Attr(i as u32 % 8)),
                    v.id(Value(i as u32 % 24)),
                    v.id(Sep),
                ]
            })
            .collect();
        let ids = c.register_chunks(&chunks).unwrap();
        let q = vec![v.id(Query), v.id(Entity(0)), v.id(Attr(0)), v.id(QMark)];
        (ids, q)
    }

    #[test]
    fn homes_are_stable_and_roughly_balanced() {
        let a = cluster(4, 0, 4);
        let b = cluster(4, 0, 4);
        let mut per_replica = [0usize; 4];
        for i in 0..1000u64 {
            let id = ChunkId(splitmix64(i));
            assert_eq!(a.home_of(id), b.home_of(id), "homes depend only on n");
            per_replica[a.home_of(id)] += 1;
        }
        for (r, &n) in per_replica.iter().enumerate() {
            assert!(
                (150..=350).contains(&n),
                "replica {r} homes {n}/1000 chunks — rendezvous should balance"
            );
        }
    }

    #[test]
    fn route_prefers_the_majority_home() {
        let c = cluster(3, 0, 4);
        // Build a set where one replica is home to most chunks.
        let ids: Vec<ChunkId> = (0..64).map(|i| ChunkId(splitmix64(1000 + i))).collect();
        let target = c.home_of(ids[0]);
        let majority: Vec<ChunkId> = ids
            .iter()
            .copied()
            .filter(|&c2| c.home_of(c2) == target)
            .take(3)
            .collect();
        let mut set = majority.clone();
        set.push(*ids.iter().find(|&&c2| c.home_of(c2) != target).unwrap());
        // 0-worker replicas are unhealthy, so route() falls back — use the
        // internal preference which ignores health.
        assert_eq!(c.preferred(&set), target);
        // Order-independence: shuffling the set does not change the pick.
        set.reverse();
        assert_eq!(c.preferred(&set), target);
    }

    #[test]
    fn cluster_serves_requests_and_reports_locality() {
        let c = cluster(2, 1, 8);
        let (ids, q) = scenario(&c, 6);
        for i in 0..12 {
            let set = vec![ids[i % 6], ids[(i + 1) % 6], ids[(i + 2) % 6]];
            let resp = c
                .submit(Request::new(set, q.clone()).ratio(0.45).max_new_tokens(2))
                .unwrap();
            assert!(resp.blend.stats.ctx_len > 0, "request really blended");
        }
        let st = c.stats();
        assert_eq!(st.total_requests, 12);
        assert_eq!(st.admissions.iter().sum::<u64>(), 12);
        assert_eq!(st.spills, 0, "unloaded cluster never spills");
        assert_eq!(st.failovers, 0);
        assert_eq!(st.reroutes, 0);
        assert_eq!(
            st.request_locality_rate(),
            1.0,
            "every request served at its preferred replica"
        );
        assert!(
            st.locality_hit_rate() > 0.5,
            "majority voting keeps most chunks home"
        );
        assert_eq!(c.aggregate_service_stats().completed, 12);
    }

    #[test]
    fn eager_registration_warms_only_the_home_replica() {
        let c = cluster(3, 1, 8);
        let (ids, _) = scenario(&c, 8);
        for &id in &ids {
            let home = c.home_of(id);
            for r in 0..3 {
                assert_eq!(
                    c.replica(r).engine().store().contains(id),
                    r == home,
                    "chunk {id:?} must be cached exactly at home replica {home}"
                );
            }
            for r in 0..3 {
                assert_eq!(c.replica(r).engine().registered_chunks(), 8);
            }
        }
    }

    #[test]
    fn downed_replica_triggers_failover_and_recovers() {
        let c = cluster(2, 1, 8);
        let (ids, q) = scenario(&c, 4);
        let set = vec![ids[0], ids[1]];
        let preferred = c.preferred(&set);
        c.set_replica_health(preferred, false);
        let resp = c
            .submit(
                Request::new(set.clone(), q.clone())
                    .ratio(0.45)
                    .max_new_tokens(2),
            )
            .unwrap();
        assert!(!resp.answer.is_empty(), "failover still serves");
        let st = c.stats();
        assert_eq!(st.failovers, 1, "one down-transition, counted once");
        assert_eq!(st.reroutes, 1, "the request was placed away from home");
        assert_eq!(st.admissions[preferred], 0);
        assert_eq!(st.admissions[1 - preferred], 1);

        // Re-observing the downed replica (routing probes, health checks)
        // must not inflate the failover count: it is edge-triggered.
        assert!(!c.replica_healthy(preferred));
        assert!(!c.replica_healthy(preferred));
        assert_eq!(c.stats().failovers, 1);

        c.set_replica_health(preferred, true);
        c.submit(Request::new(set, q).ratio(0.45).max_new_tokens(2))
            .unwrap();
        assert_eq!(
            c.stats().admissions[preferred],
            1,
            "recovered replica gets its traffic back"
        );
        assert_eq!(c.stats().failovers, 1, "recovery is not a failover");
    }

    #[test]
    fn no_healthy_replica_is_reported() {
        let c = cluster(2, 1, 4);
        let (ids, q) = scenario(&c, 2);
        c.set_replica_health(0, false);
        c.set_replica_health(1, false);
        let err = c
            .submit_stream(Request::new(ids.clone(), q.clone()))
            .unwrap_err();
        assert_eq!(err, ClusterError::NoHealthyReplica);
        assert_eq!(c.stats().rejections, 1);
        // The blocking path surfaces the structured remote error, keeping
        // the code and human-readable detail across the service boundary.
        match c.submit(Request::new(ids, q)).unwrap_err() {
            EngineError::Remote { code, message } => {
                assert_eq!(code, ErrorCode::NoHealthyWorker);
                assert!(!message.is_empty(), "error detail must survive");
            }
            other => panic!("expected a structured remote error, got {other:?}"),
        }
    }

    #[test]
    fn zero_worker_replicas_are_unhealthy_by_probe() {
        let c = cluster(2, 0, 4);
        assert!(!c.replica_healthy(0));
        assert!(!c.replica_healthy(1));
        let (ids, q) = scenario(&c, 2);
        assert_eq!(
            c.submit_stream(Request::new(ids, q)).unwrap_err(),
            ClusterError::NoHealthyReplica
        );
    }

    #[test]
    fn bounced_replica_adopts_its_slot_and_keeps_homes() {
        let mut c = cluster(2, 1, 8);
        let (ids, q) = scenario(&c, 6);
        let homes: Vec<usize> = ids.iter().map(|&id| c.home_of(id)).collect();
        c.submit(
            Request::new(vec![ids[0]], q.clone())
                .ratio(0.45)
                .max_new_tokens(2),
        )
        .unwrap();
        c.bounce_replica(0);
        assert_eq!(c.gateway().n_workers(), 2, "the roster must not grow");
        let st = c.stats();
        assert_eq!(st.adoptions, 1, "exactly one adoption");
        assert_eq!(st.failovers, 1, "the death was observed as one edge");
        assert_eq!(
            ids.iter().map(|&id| c.home_of(id)).collect::<Vec<_>>(),
            homes,
            "chunk homes survive the bounce"
        );
        // The bounced replica serves again immediately (hello carried a
        // fresh probe, so no heartbeat wait).
        let resp = c
            .submit(Request::new(vec![ids[0]], q).ratio(0.45).max_new_tokens(2))
            .unwrap();
        assert!(!resp.answer.is_empty(), "adopted replica still serves");
        assert_eq!(c.stats().failovers, 1, "re-attach is not another edge");
    }

    #[test]
    fn queue_full_spills_to_the_least_loaded_replica() {
        // Tiny queues: flood the preferred replica's queue through the
        // cluster until an admission observes QueueFull and spills. The
        // flood is retried because the 1-worker replica drains between
        // probes — the loop is bounded and the outcome asserted exactly.
        let c = cluster(2, 1, 1);
        let (ids, q) = scenario(&c, 4);
        let set = vec![ids[0], ids[1]];
        let mk = || {
            Request::new(set.clone(), q.clone())
                .ratio(0.45)
                .max_new_tokens(8)
        };
        let mut streams = Vec::new();
        for _ in 0..64 {
            streams.push(c.submit_stream(mk()).unwrap());
            if c.stats().spills > 0 {
                break;
            }
        }
        // Spills are observed asynchronously (the rejection travels back
        // over the wire), so settle the cluster before asserting.
        for s in streams {
            s.collect().expect("every admitted request completes");
        }
        let st = c.stats();
        assert!(
            st.spills > 0,
            "a capacity-1 queue must overflow under a 64-request flood"
        );
        assert!(
            st.admissions.iter().all(|&a| a > 0),
            "spill placed work on the alternate replica: {:?}",
            st.admissions
        );
    }
}
