//! Quickstart: serve a RAG request through the [`Engine`] front door, and
//! compare the answer against full prefill and full KV reuse.
//!
//! Run with: `cargo run --release --example quickstart`

use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    // 1. Build the engine: compiled tiny model (a stand-in for Mistral-7B —
    //    see DESIGN.md for the substitution rationale), one RAM store tier,
    //    40% recompute ratio.
    let engine = EngineBuilder::new(ModelProfile::Mistral7B)
        .blend_config(BlendConfig::with_ratio(0.4))
        .build()
        .expect("engine");
    let vocab = engine.model().cfg.vocab.clone();
    let t = |k| vocab.id(k);

    // 2. Two "retrieved" text chunks. Chunk 2's first fact says "*it*
    //    attr3 = val9" — the subject lives in chunk 1, so answering a
    //    question about it needs cross-chunk attention.
    let chunk1 = vec![t(Entity(5)), t(Attr(0)), t(Value(1)), t(Sep)];
    let chunk2 = vec![
        t(Ref),
        t(Attr(3)),
        t(Value(9)),
        t(Sep),
        t(Entity(8)),
        t(Attr(1)),
        t(Value(4)),
        t(Sep),
    ];
    let query = vec![t(Query), t(Entity(5)), t(Attr(3)), t(QMark)];
    println!("chunk 1: {}", vocab.render_seq(&chunk1));
    println!("chunk 2: {}", vocab.render_seq(&chunk2));
    println!("query:   {}\n", vocab.render_seq(&query));

    // 3. Register the chunks: each is content-hashed, its standalone KV
    //    cache precomputed and placed in the engine's tiered store.
    let ids = engine
        .register_chunks(&[chunk1.clone(), chunk2.clone()])
        .expect("register");

    // 4. Gold standard: full prefill (slow — recomputes everything).
    let model = engine.model();
    let mut toks = vec![t(Bos)];
    toks.extend_from_slice(&chunk1);
    toks.extend_from_slice(&chunk2);
    toks.extend_from_slice(&query);
    let gold = model.generate(&toks, 4);
    println!("full prefill      → {}", vocab.render_seq(&gold));

    // 5. Full KV reuse: fast, but the coreference is lost.
    let parts = vec![
        cacheblend::kv::precompute::precompute_chunk(model, &chunk1),
        cacheblend::kv::precompute::precompute_chunk(model, &chunk2),
    ];
    let reuse = cacheblend::baselines::run_full_reuse(model, parts, &query, 4, true);
    println!("full KV reuse     → {}", vocab.render_seq(&reuse.answer));

    // 6. CacheBlend through the engine: store hit, pipelined load,
    //    selective recompute of the high-KV-deviation tokens, decode.
    let response = engine
        .submit(Request::new(ids, query).max_new_tokens(4))
        .expect("submit");
    println!(
        "CacheBlend (r=40%) → {}  [recomputed {:?} tokens/layer of {} context tokens]",
        vocab.render_seq(&response.answer),
        response.blend.stats.selected_per_layer,
        response.blend.stats.ctx_len,
    );
    println!(
        "TTFT breakdown: load wait {:?}, recompute {:?}, decode {:?} (total {:?})",
        response.ttft.load_wait, response.ttft.recompute, response.ttft.decode, response.ttft.total,
    );

    assert_eq!(
        gold, response.answer,
        "CacheBlend must match full prefill here"
    );
    assert_ne!(gold, reuse.answer, "full reuse must fail here");
    println!("\nCacheBlend matched full prefill; full KV reuse did not.");
}
