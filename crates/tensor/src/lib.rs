//! Dense f32 tensor kernels for the CacheBlend reproduction.
//!
//! Row-major [`Matrix`] buffers with two kernel tiers: register-blocked,
//! cache-friendly matmuls with `_into` variants that write into
//! caller-provided buffers (plus a probed sparse path for the compiled
//! program's row-sparse weights), and the original scalar loops kept as
//! `*_reference` parity baselines. Row-range parallelism runs on a small
//! persistent [`pool::ThreadPool`]; results are bit-identical for every
//! pool size (fixed per-element accumulation order).
//!
//! Modules:
//!
//! - [`matrix`] — the row-major [`Matrix`] type and matmul kernels.
//! - [`ops`] — softmax, RMSNorm, activations, masked attention helpers.
//! - [`pool`] — the persistent thread pool and the process-wide handle.
//! - [`rope`] — rotary positional embedding (RoPE) and the Appendix-A
//!   re-rotation used to relocate cached keys.
//! - [`stats`] — deviation norms, Spearman rank correlation, CDFs.

pub mod matrix;
pub mod ops;
pub mod pool;
pub mod rope;
pub mod stats;

pub use matrix::Matrix;
