//! Elementwise and row-wise neural-network operations.

use crate::matrix::Matrix;

/// Numerically stable in-place softmax over a single row (slice).
///
/// Entries equal to [`f32::NEG_INFINITY`] (masked positions) receive exactly
/// zero probability. If *every* entry is masked the row becomes all zeros
/// rather than NaN, which is the behaviour selective prefill relies on for
/// empty attention windows.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Fast exp via `2^(x·log2 e)`: exponent bit-stuffing plus a degree-5
/// polynomial on the fractional part (relative error ≈ 2e-7). Inputs are
/// expected ≤ 0 (softmax shifts by the row max); anything below the
/// flush threshold returns exactly 0.0. Branch-free and lane-parallel, so
/// the softmax loop vectorizes.
#[inline]
fn exp_fast(x: f32) -> f32 {
    // exp(-87) < f32::MIN_POSITIVE: flush to an exact zero (downstream
    // kernels rely on masked probabilities being exactly 0.0).
    let alive = (x > -87.0) as u32 as f32;
    let t = (x.max(-87.0)) * std::f32::consts::LOG2_E;
    let tf = t.floor();
    let f = t - tf;
    // Cephes exp2 minimax polynomial on [0, 1).
    let p = 1.535_336_9e-4f32;
    let p = p.mul_add(f, 1.339_887_5e-3);
    let p = p.mul_add(f, 9.618_437e-3);
    let p = p.mul_add(f, 5.550_332_8e-2);
    let p = p.mul_add(f, 2.402_264_7e-1);
    let p = p.mul_add(f, 6.931_472e-1);
    let p = p.mul_add(f, 1.0);
    let scale = f32::from_bits((((tf as i32) + 127) as u32) << 23);
    p * scale * alive
}

/// Numerically stable softmax over `row[..live]`, with `row[live..]`
/// forced to exactly zero — the blocked attention path's softmax: the
/// causally masked tail is never exponentiated at all, and the live
/// prefix uses the vectorized [`exp_fast`]. An all-masked (`live == 0`)
/// row becomes all zeros, matching [`softmax_row`].
pub fn softmax_prefix_fast(row: &mut [f32], live: usize) {
    let (head, tail) = row.split_at_mut(live);
    tail.fill(0.0);
    let max = head.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        head.fill(0.0);
        return;
    }
    // Exponentiation and summation are separate passes: a fused loop's
    // scalar `sum` chain would block vectorization of the exp itself.
    for v in head.iter_mut() {
        *v = exp_fast(*v - max);
    }
    let mut lanes = [0.0f32; 8];
    let mut ch = head.chunks_exact(8);
    for c in &mut ch {
        for t in 0..8 {
            lanes[t] += c[t];
        }
    }
    let mut sum: f32 = lanes.iter().sum();
    sum += ch.remainder().iter().sum::<f32>();
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in head.iter_mut() {
            *v *= inv;
        }
    }
}

/// Applies [`softmax_row`] to every row of `m`.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let _ = cols;
        softmax_row(m.row_mut(r));
    }
}

/// RMSNorm over each row: `x_i * g_i / rms(x)` with `rms = sqrt(mean(x^2) + eps)`.
///
/// `gain` must have length `m.cols()`.
pub fn rmsnorm_rows(m: &mut Matrix, gain: &[f32], eps: f32) {
    assert_eq!(gain.len(), m.cols(), "rmsnorm gain length mismatch");
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let ms: f32 = row.iter().map(|&v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gain.iter()) {
            *v *= inv * g;
        }
    }
}

/// SiLU (swish) activation applied in place.
pub fn silu(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        *v = *v / (1.0 + (-*v).exp());
    }
}

/// Tanh applied in place.
pub fn tanh(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        *v = v.tanh();
    }
}

/// Applies a causal mask to a `q_len × k_len` score matrix where query row
/// `i` corresponds to absolute position `q_pos[i]` and key column `j` to
/// absolute position `k_pos[j]`: entries with `k_pos[j] > q_pos[i]` are set
/// to `-inf`.
///
/// Selective prefill uses the general form: the query rows are a *subset* of
/// positions while key columns cover every position, so a plain triangular
/// mask is not enough.
pub fn causal_mask(scores: &mut Matrix, q_pos: &[usize], k_pos: &[usize]) {
    assert_eq!(scores.rows(), q_pos.len());
    assert_eq!(scores.cols(), k_pos.len());
    for (i, &qp) in q_pos.iter().enumerate() {
        let row = scores.row_mut(i);
        for (j, &kp) in k_pos.iter().enumerate() {
            if kp > qp {
                row[j] = f32::NEG_INFINITY;
            }
        }
    }
}

/// Returns the index of the maximum element of `row`.
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Returns the indices of the `k` largest elements of `vals`, sorted by
/// descending value (ties broken by lower index first).
pub fn top_k_indices(vals: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..vals.len()).collect();
    idx.sort_by(|&a, &b| {
        vals[b]
            .partial_cmp(&vals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_row(&mut row);
        assert_close(row.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_row_handles_large_values() {
        let mut row = vec![10000.0, 10001.0];
        softmax_row(&mut row);
        assert!(row.iter().all(|v| v.is_finite()));
        assert_close(row.iter().sum::<f32>(), 1.0, 1e-6);
    }

    #[test]
    fn softmax_row_masked_entries_get_zero() {
        let mut row = vec![f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY];
        softmax_row(&mut row);
        assert_eq!(row, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_row_all_masked_becomes_zero() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut row);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn softmax_prefix_fast_matches_exact_softmax() {
        // Seeded sweep: live prefixes of several lengths against the exact
        // softmax with the tail explicitly masked.
        let mut s = 0x1234_5678u64;
        for live in [0usize, 1, 3, 8, 31, 64] {
            let n = 64;
            let mut fast: Vec<f32> = (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    ((s % 400) as f32 - 200.0) / 10.0
                })
                .collect();
            let mut exact = fast.clone();
            for v in exact[live..].iter_mut() {
                *v = f32::NEG_INFINITY;
            }
            softmax_row(&mut exact);
            softmax_prefix_fast(&mut fast, live);
            for (a, b) in fast.iter().zip(exact.iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b} (live {live})");
            }
            assert!(fast[live..].iter().all(|&v| v == 0.0), "tail must be 0.0");
        }
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let mut m = Matrix::from_vec(1, 4, vec![2.0, -2.0, 2.0, -2.0]);
        rmsnorm_rows(&mut m, &[1.0; 4], 1e-6);
        let ms: f32 = m.row(0).iter().map(|&v| v * v).sum::<f32>() / 4.0;
        assert_close(ms, 1.0, 1e-4);
    }

    #[test]
    fn causal_mask_general_positions() {
        // Query rows at absolute positions 2 and 5; keys at 0..6.
        let mut s = Matrix::zeros(2, 6);
        causal_mask(&mut s, &[2, 5], &[0, 1, 2, 3, 4, 5]);
        assert_eq!(s[(0, 2)], 0.0);
        assert_eq!(s[(0, 3)], f32::NEG_INFINITY);
        assert_eq!(s[(1, 5)], 0.0);
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), 1);
    }

    #[test]
    fn top_k_orders_by_value() {
        let v = [1.0, 9.0, 5.0, 9.0, 2.0];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
    }

    #[test]
    fn top_k_k_larger_than_len() {
        let v = [1.0, 2.0];
        assert_eq!(top_k_indices(&v, 10), vec![1, 0]);
    }

    #[test]
    fn silu_matches_definition() {
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        silu(&mut m);
        assert_close(m[(0, 0)], 1.0 / (1.0 + (-1.0f32).exp()), 1e-6);
    }
}
