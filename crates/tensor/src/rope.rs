//! Rotary positional embedding (RoPE) and cached-key re-rotation.
//!
//! RoPE rotates consecutive dimension pairs `(2i, 2i+1)` of a query/key
//! vector at position `m` by angle `m·θᵢ` with `θᵢ = base^(-2i/d)`.
//!
//! CacheBlend's Appendix A relies on the group property of these rotations:
//! a key cached at position `m` can be relocated to position `m+Δ` by
//! rotating it by `Δ·θᵢ` — no recomputation required. [`rotate_rows_by`]
//! implements that correction and `tests` verify Proposition A.1 (attention
//! scores depend only on relative offsets).

use crate::matrix::Matrix;

/// Precomputed per-pair RoPE frequencies for a head dimension.
#[derive(Clone, Debug)]
pub struct RopeTable {
    /// θᵢ for each dimension pair `i ∈ [0, dim/2)`.
    thetas: Vec<f32>,
}

impl RopeTable {
    /// Builds the frequency table for vectors of length `dim` (must be even)
    /// with the given base (10000.0 in the paper; smaller bases give the
    /// compiled program faster-decaying positional kernels).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is odd or zero.
    pub fn new(dim: usize, base: f32) -> Self {
        assert!(
            dim > 0 && dim.is_multiple_of(2),
            "RoPE dim must be even, got {dim}"
        );
        let half = dim / 2;
        let thetas = (0..half)
            .map(|i| base.powf(-2.0 * i as f32 / dim as f32))
            .collect();
        Self { thetas }
    }

    /// Builds a table with explicit per-pair frequencies. Rotation then
    /// applies only to the first `2 * thetas.len()` dimensions of a vector,
    /// leaving the rest untouched (partial RoPE, GPT-NeoX style). The
    /// compiled program uses this to give positional heads hand-picked
    /// kernels while content dimensions stay position-free.
    pub fn from_thetas(thetas: Vec<f32>) -> Self {
        Self { thetas }
    }

    /// Number of dimension pairs.
    pub fn pairs(&self) -> usize {
        self.thetas.len()
    }

    /// The frequency of pair `i`.
    pub fn theta(&self, i: usize) -> f32 {
        self.thetas[i]
    }

    /// Rotates the first `2 * self.pairs()` entries of `v` in place as if at
    /// position `pos`; any remaining entries are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() < 2 * self.pairs()`.
    pub fn rotate(&self, v: &mut [f32], pos: f32) {
        assert!(
            v.len() >= 2 * self.thetas.len(),
            "vector shorter than rotated prefix"
        );
        for (i, &theta) in self.thetas.iter().enumerate() {
            let angle = pos * theta;
            let (sin, cos) = angle.sin_cos();
            let a = v[2 * i];
            let b = v[2 * i + 1];
            v[2 * i] = a * cos - b * sin;
            v[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Rotates every row of `m` (row `r` is a head vector) by its absolute
/// position `pos[r]`.
pub fn apply_rope(m: &mut Matrix, table: &RopeTable, pos: &[usize]) {
    assert_eq!(m.rows(), pos.len());
    for (r, &p) in pos.iter().enumerate() {
        table.rotate(m.row_mut(r), p as f32);
    }
}

impl RopeTable {
    /// Precomputes the per-pair `(sin, cos)` of a fixed rotation offset —
    /// relocation rotates *every* row of a cache by the same delta, so the
    /// trigonometry is hoisted out of the row loop.
    pub fn plan(&self, pos: f32) -> Vec<(f32, f32)> {
        self.thetas
            .iter()
            .map(|&theta| (pos * theta).sin_cos())
            .collect()
    }

    /// Applies a precomputed [`RopeTable::plan`] to the first
    /// `2 * plan.len()` entries of `v`.
    #[inline]
    pub fn rotate_planned(&self, v: &mut [f32], plan: &[(f32, f32)]) {
        for (i, &(sin, cos)) in plan.iter().enumerate() {
            let a = v[2 * i];
            let b = v[2 * i + 1];
            v[2 * i] = a * cos - b * sin;
            v[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Relocates cached keys: rotates every row of `m` by the *offset* `delta`
/// (may be negative), implementing the Appendix-A positional correction
/// `K(m) → K(m+Δ)`.
pub fn rotate_rows_by(m: &mut Matrix, table: &RopeTable, delta: i64) {
    let plan = table.plan(delta as f32);
    for r in 0..m.rows() {
        table.rotate_planned(m.row_mut(r), &plan);
    }
}

/// [`rotate_rows_by`] on the column block starting at `lo` of every row
/// (relocating one head's segment of head-major K rows in place).
pub fn rotate_col_block_by(m: &mut Matrix, table: &RopeTable, lo: usize, delta: i64) {
    let plan = table.plan(delta as f32);
    let hi = lo + 2 * table.pairs();
    for r in 0..m.rows() {
        table.rotate_planned(&mut m.row_mut(r)[lo..hi], &plan);
    }
}

/// Dot product helper used by the invariance tests and the compiled program
/// design: score of query at position `p_q` against key at position `p_k`.
pub fn rope_score(table: &RopeTable, q: &[f32], k: &[f32], p_q: usize, p_k: usize) -> f32 {
    let mut qr = q.to_vec();
    let mut kr = k.to_vec();
    table.rotate(&mut qr, p_q as f32);
    table.rotate(&mut kr, p_k as f32);
    qr.iter().zip(kr.iter()).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_at_zero_is_identity() {
        let t = RopeTable::new(8, 10000.0);
        let orig: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut v = orig.clone();
        t.rotate(&mut v, 0.0);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let t = RopeTable::new(16, 10000.0);
        let mut v: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let n0: f32 = v.iter().map(|x| x * x).sum();
        t.rotate(&mut v, 123.0);
        let n1: f32 = v.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() < 1e-3);
    }

    #[test]
    fn proposition_a1_relative_position_invariance() {
        // Attention score depends only on the relative offset l = p_q - p_k.
        let t = RopeTable::new(8, 100.0);
        let q: Vec<f32> = vec![0.3, -0.5, 0.9, 0.1, -0.2, 0.8, 0.4, -0.7];
        let k: Vec<f32> = vec![1.0, 0.2, -0.3, 0.5, 0.6, -0.1, 0.9, 0.4];
        let s1 = rope_score(&t, &q, &k, 10, 4);
        let s2 = rope_score(&t, &q, &k, 110, 104);
        let s3 = rope_score(&t, &q, &k, 1003, 997);
        assert!((s1 - s2).abs() < 1e-3, "{s1} vs {s2}");
        assert!((s1 - s3).abs() < 1e-2, "{s1} vs {s3}");
    }

    #[test]
    fn rotate_rows_by_relocates_cached_keys() {
        // A key computed at local position 3 then shifted by delta=7 must
        // equal the key computed directly at position 10 (Appendix A).
        let t = RopeTable::new(8, 10000.0);
        let base: Vec<f32> = vec![0.5, -0.4, 0.3, 0.9, -0.8, 0.2, 0.1, 0.7];

        let mut local = base.clone();
        t.rotate(&mut local, 3.0);
        let mut m = Matrix::from_vec(1, 8, local);
        rotate_rows_by(&mut m, &t, 7);

        let mut direct = base.clone();
        t.rotate(&mut direct, 10.0);
        for (a, b) in m.row(0).iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn negative_delta_undoes_positive() {
        let t = RopeTable::new(8, 10000.0);
        let orig: Vec<f32> = (0..8).map(|i| (i as f32).cos()).collect();
        let mut m = Matrix::from_vec(1, 8, orig.clone());
        rotate_rows_by(&mut m, &t, 42);
        rotate_rows_by(&mut m, &t, -42);
        for (a, b) in m.row(0).iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_dim_rejected() {
        let _ = RopeTable::new(7, 10000.0);
    }
}
