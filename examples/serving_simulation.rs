//! Serving-rate exploration: sweep the request rate and watch each
//! scheme's TTFT saturate (a quick interactive view of Figure 14), serve
//! a real batch through [`Engine::submit_many`], then close the loop:
//! run the same simulator against the *real* engine via
//! [`EngineBackend`].
//!
//! Run with: `cargo run --release --example serving_simulation`

use cacheblend::baselines::SchemeKind;
use cacheblend::prelude::*;
use cacheblend::rag::datasets::Dataset;
use cacheblend::serving::backend::EngineBackend;
use cacheblend::serving::sim::{ServingConfig, Simulator};
use cacheblend::serving::workload::{Workload, WorkloadConfig};
use cacheblend::storage::perf::{PaperModel, PerfModel};

fn main() {
    // Paper-scale side: the discrete-event simulator. Its CacheBlend arm
    // charges admission costs through the engine's delay model
    // (`cacheblend::engine::blend_admission`).
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullReuse,
        SchemeKind::PrefixCaching,
        SchemeKind::FullRecompute,
    ];
    println!(
        "{} on {}: mean TTFT (s) by request rate\n",
        perf.spec.name,
        DeviceKind::NvmeSsd.spec().name
    );
    print!("{:>10}", "rate(rps)");
    for s in schemes {
        print!("{:>20}", s.name());
    }
    println!();
    let saturation = 1.0 / perf.ttft_full_prefill(6 * 512 + 32);
    for mult in [0.2, 0.5, 0.8, 1.0, 1.5, 2.5, 4.0] {
        let rate = saturation * mult;
        print!("{rate:>10.3}");
        for scheme in schemes {
            let w = Workload::generate(&WorkloadConfig::extended(rate, 99));
            let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
            let stats = Simulator::new(cfg).run(&w);
            print!("{:>20.3}", stats.ttft.mean_s);
        }
        println!();
    }
    println!("\n(each column saturates at a different rate — CacheBlend's knee is furthest right among quality-preserving schemes)\n");

    // Executable side: the same concurrent-serving shape on the tiny
    // model, through the engine's worker pool.
    let engine = EngineBuilder::new(ModelProfile::Yi34B)
        .blend_config(BlendConfig::with_ratio(0.18))
        .build()
        .expect("engine");
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let chunk_ids = engine.register_chunks(&ds.chunks).expect("register");
    let batch: Vec<Request> = ds
        .cases
        .iter()
        .take(16)
        .map(|case| {
            let ctx = ds.retrieve(case, 6);
            Request::new(
                ctx.iter().map(|&c| chunk_ids[c]).collect(),
                case.query.clone(),
            )
        })
        .collect();
    let t0 = std::time::Instant::now();
    let responses = engine.submit_many(batch);
    let elapsed = t0.elapsed();
    let ok = responses.iter().filter(|r| r.is_ok()).count();
    let mean_score: f32 = responses
        .iter()
        .zip(ds.cases.iter())
        .filter_map(|(r, case)| {
            r.as_ref()
                .ok()
                .map(|resp| ds.score(&resp.answer, &case.gold))
        })
        .sum::<f32>()
        / ok.max(1) as f32;
    println!(
        "engine.submit_many: {ok}/16 requests served concurrently in {elapsed:?} \
         (mean {} {mean_score:.3}, store stats {:?})",
        ds.kind.metric_name(),
        engine.store().stats(),
    );

    // Closed loop: the same discrete-event queueing, but every admission
    // is really served through an EngineService and the measured TTFTs
    // drive the knee.
    println!("\nclosed loop (tiny compiled model through the EngineService):");
    let probe_service_s = EngineBackend::single_worker(ModelProfile::Tiny).warm_service_time_s();
    println!(
        "{:>12} {:>16} {:>16}",
        "rate(rps)", "mean TTFT (s)", "peak queue"
    );
    for mult in [0.3, 1.0, 3.0] {
        let rate = mult / probe_service_s;
        let w = Workload::generate(&WorkloadConfig {
            n_requests: 60,
            n_groups: 20,
            n_chunks: 100,
            chunks_per_request: 4,
            ..WorkloadConfig::extended(rate, 12)
        });
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let stats = Simulator::run_with(&w, &mut backend, None);
        println!(
            "{rate:>12.1} {:>16.5} {:>16}",
            stats.ttft.mean_s, stats.peak_queue_depth
        );
    }
}
