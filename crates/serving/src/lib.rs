//! Serving-layer simulation: request streams, queueing, cache-hit
//! accounting, and TTFT/throughput statistics (Figure 14).
//!
//! The quality side of the evaluation runs the tiny compiled model; the
//! *serving* side — what happens when requests arrive at rate λ against a
//! bounded KV store on a busy GPU — is a queueing question, answered here
//! with a discrete-event simulator driven by the paper-scale delay model
//! from `cb-storage`. The simulator reproduces the figure-14 mechanics:
//! Poisson arrivals, FIFO prefill admission, per-chunk cache hits with LRU
//! eviction, prefix-chain hits for the prefix-caching baseline (which must
//! store one entry per *prefix*, not per chunk — the storage blow-up §7.2
//! discusses), and pipelined load/recompute for CacheBlend.
//!
//! Modules:
//!
//! - [`workload`] — seeded Poisson request streams with popularity-skewed
//!   chunk reuse (the "extended dataset" construction).
//! - [`sim`] — the event loop and per-scheme service-time models.
//! - [`stats`] — latency summaries.

pub mod sim;
pub mod stats;
pub mod workload;

pub use sim::{ServingConfig, ServingStats, Simulator};
pub use workload::{Request, Workload, WorkloadConfig};
