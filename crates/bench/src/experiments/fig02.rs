//! Figure 2: generation quality vs number of retrieved chunks, full KV
//! recompute (with cross-attention) against full KV reuse (without).
//!
//! Paper shape: quality rises with more retrieved chunks, the gap between
//! the two schemes widens (more cross-referencing), and very large contexts
//! stop helping.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_storage::perf::PaperModel;

use crate::harness::{ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let m = ExpModel::new(PaperModel::Mistral7B, 11);
    let mut rows = Vec::new();
    for kind in [DatasetKind::MusiqueSim, DatasetKind::TwoWikiSim] {
        let ds = Dataset::standard(kind, 7);
        let mut ev = QualityEval::new(&m.model);
        for k in [2usize, 4, 6, 10, 16, 24] {
            let full = ev.eval(&ds, SchemeKind::FullRecompute, 0.0, k, 24);
            let reuse = ev.eval(&ds, SchemeKind::FullReuse, 0.0, k, 24);
            rows.push(
                Row::new("fig02")
                    .col("dataset", ds.kind.name())
                    .col("metric", ds.kind.metric_name())
                    .col("chunks", k)
                    .num("full_recompute", full.mean_score)
                    .num("full_reuse", reuse.mean_score)
                    .num("gap", full.mean_score - reuse.mean_score),
            );
        }
    }
    emit("fig02_chunks_vs_quality", &rows);
}
