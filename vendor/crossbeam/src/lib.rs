//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` with the
//! send/recv surface the pipelined loader and the engine scheduler use,
//! implemented over `std::sync::mpsc` (same semantics for this
//! workspace's usage: bounded channels rendezvous on capacity, unbounded
//! channels never block the sender).

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// All senders have hung up and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// All senders have hung up and the buffer is drained.
        Disconnected,
    }

    #[derive(Debug)]
    enum AnySender<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T>(AnySender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                AnySender::Bounded(tx) => AnySender::Bounded(tx.clone()),
                AnySender::Unbounded(tx) => AnySender::Unbounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a value. Bounded channels block until there is room;
        /// unbounded channels never block.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            match &self.0 {
                AnySender::Bounded(tx) => tx.send(v).map_err(|mpsc::SendError(v)| SendError(v)),
                AnySender::Unbounded(tx) => tx.send(v).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns immediately with a value if one is buffered.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(AnySender::Bounded(tx)), Receiver(rx))
    }

    /// Creates an unbounded channel (sends never block).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(AnySender::Unbounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_across_threads() {
            let (tx, rx) = bounded::<u32>(2);
            let t = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn unbounded_never_blocks_the_sender() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got.len(), 1000);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_recv_reports_empty_then_value() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
        }

        #[test]
        fn recv_timeout_times_out_on_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
