//! Synthetic dataset generators: the Musique/2WikiMQA/SAMSum/MultiNews
//! stand-ins.
//!
//! Each dataset is a set of *documents*; a document is a token stream of
//! facts (`subject attr value… .`) separated by filler words. Subjects are
//! either explicit entities or the coreference marker `REF` ("it"),
//! referring to the most recent entity. The stream is split into fixed
//! `chunk_len` windows — the paper's Langchain chunking — so two kinds of
//! cross-chunk dependence *emerge* rather than being planted:
//!
//! - a `REF` fact whose antecedent entity landed in an earlier chunk, and
//! - a fact whose value chain straddles a chunk boundary.
//!
//! Queries target facts and are classified [`CaseKind::CrossChunk`] /
//! [`CaseKind::WithinChunk`] / [`CaseKind::Direct`] accordingly; QA
//! datasets score with token F1, summarization datasets with Rouge-L.

use cb_tokenizer::{TokenId, TokenKind, Vocab};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::embed::Embedder;
use crate::index::VectorIndex;
use crate::metrics::{f1_score, rouge_l};

/// The four evaluation datasets (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Multi-hop QA, coreference-heavy (Musique analogue).
    MusiqueSim,
    /// Multi-document QA (2WikiMQA analogue).
    TwoWikiSim,
    /// Dialogue summarization, short chains (SAMSum analogue).
    SamsumSim,
    /// Multi-document summarization, long chains (MultiNews analogue).
    MultiNewsSim,
}

impl DatasetKind {
    /// All four datasets in the paper's order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::MusiqueSim,
            DatasetKind::TwoWikiSim,
            DatasetKind::SamsumSim,
            DatasetKind::MultiNewsSim,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MusiqueSim => "Musique-sim",
            DatasetKind::TwoWikiSim => "2WikiMQA-sim",
            DatasetKind::SamsumSim => "SAMSum-sim",
            DatasetKind::MultiNewsSim => "MultiNews-sim",
        }
    }

    /// Name of the quality metric this dataset is scored with.
    pub fn metric_name(self) -> &'static str {
        match self {
            DatasetKind::MusiqueSim | DatasetKind::TwoWikiSim => "F1",
            _ => "Rouge-L",
        }
    }

    /// True for the QA datasets (F1), false for summarization (Rouge-L).
    pub fn is_qa(self) -> bool {
        matches!(self, DatasetKind::MusiqueSim | DatasetKind::TwoWikiSim)
    }
}

/// Why a query does (or does not) need cross-chunk attention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Needs information flow between chunks (REF antecedent in an earlier
    /// chunk, or the value chain straddles a boundary).
    CrossChunk,
    /// A coreference resolved within its own chunk.
    WithinChunk,
    /// A fully self-contained fact.
    Direct,
}

/// One evaluation query.
#[derive(Clone, Debug)]
pub struct QueryCase {
    /// The prompt suffix: `Q: entity attr ?`.
    pub query: Vec<TokenId>,
    /// Gold answer tokens (the fact's values, in order).
    pub gold: Vec<TokenId>,
    /// Extra retrieval-only keywords: content tokens from the gold fact's
    /// neighborhood, *excluding* the answer. Real questions share many
    /// words with their gold paragraphs beyond the entity/relation ("who in
    /// the IT department proposed using RAG…"); these tokens model that
    /// lexical overlap and are never shown to the model.
    pub retrieval_hint: Vec<TokenId>,
    /// Chunks that must be in context for the answer to be derivable
    /// (antecedent chunk through the fact's last chunk).
    pub relevant_chunks: Vec<usize>,
    /// Cross-attention classification.
    pub kind: CaseKind,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Which dataset flavour to produce.
    pub kind: DatasetKind,
    /// Number of documents.
    pub n_docs: usize,
    /// Facts per document.
    pub doc_facts: usize,
    /// Tokens per chunk (the scaled analogue of the paper's 128/512-token
    /// chunks; the compiled model's positional kernels are reliable to
    /// ~1100 context tokens, so chunks are proportionally smaller).
    pub chunk_len: usize,
    /// Answer length range (inclusive); 1 for QA, longer for summaries.
    pub answer_len: (usize, usize),
    /// Probability a fact's subject is a coreference.
    pub ref_prob: f32,
    /// Expected filler tokens between facts.
    pub filler_rate: f32,
    /// Queries to emit.
    pub n_cases: usize,
    /// Target case mix (cross, within, direct) — best effort.
    pub case_mix: (f32, f32, f32),
    /// RNG seed.
    pub seed: u64,
}

impl GenConfig {
    /// The standard configuration for a dataset (used by the experiment
    /// binaries).
    pub fn standard(kind: DatasetKind, seed: u64) -> Self {
        match kind {
            DatasetKind::MusiqueSim => Self {
                kind,
                n_docs: 20,
                doc_facts: 12,
                chunk_len: 24,
                answer_len: (1, 1),
                ref_prob: 0.55,
                filler_rate: 1.0,
                n_cases: 48,
                case_mix: (0.6, 0.2, 0.2),
                seed,
            },
            DatasetKind::TwoWikiSim => Self {
                kind,
                n_docs: 24,
                doc_facts: 10,
                chunk_len: 24,
                answer_len: (1, 2),
                ref_prob: 0.45,
                filler_rate: 1.2,
                n_cases: 48,
                case_mix: (0.5, 0.25, 0.25),
                seed: seed.wrapping_add(1),
            },
            DatasetKind::SamsumSim => Self {
                kind,
                n_docs: 16,
                doc_facts: 6,
                chunk_len: 20,
                answer_len: (3, 5),
                ref_prob: 0.35,
                filler_rate: 0.8,
                n_cases: 40,
                case_mix: (0.5, 0.15, 0.35),
                seed: seed.wrapping_add(2),
            },
            DatasetKind::MultiNewsSim => Self {
                kind,
                n_docs: 16,
                doc_facts: 8,
                chunk_len: 32,
                answer_len: (4, 6),
                ref_prob: 0.4,
                filler_rate: 1.5,
                n_cases: 40,
                case_mix: (0.5, 0.15, 0.35),
                seed: seed.wrapping_add(3),
            },
        }
    }
}

struct FactMeta {
    subject: u32,
    attr: u32,
    values: Vec<u32>,
    subj_pos: usize,       // doc-relative position of the subject token
    end_pos: usize,        // doc-relative position of the last value token
    antecedent_pos: usize, // position of the resolving entity token
    is_ref: bool,
}

/// A generated dataset with its retrieval index.
pub struct Dataset {
    /// Dataset flavour.
    pub kind: DatasetKind,
    /// Vocabulary shared with the model.
    pub vocab: Vocab,
    /// The chunk database.
    pub chunks: Vec<Vec<TokenId>>,
    /// Document id of each chunk (chunks of one document are contiguous).
    pub chunk_doc: Vec<usize>,
    /// Evaluation queries.
    pub cases: Vec<QueryCase>,
    embedder: Embedder,
    index: VectorIndex,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset({}, {} chunks, {} cases)",
            self.kind.name(),
            self.chunks.len(),
            self.cases.len()
        )
    }
}

/// Maximum tokens since the last explicit entity before the generator
/// forces an explicit subject (keeps REF antecedents within the model's
/// reliable window).
const MAX_REF_GAP: usize = 100;

/// Keeps only content-bearing tokens (entities, attributes, values) —
/// filler and control tokens carry no retrieval signal.
fn content_tokens(vocab: &Vocab, tokens: &[TokenId]) -> Vec<TokenId> {
    tokens
        .iter()
        .copied()
        .filter(|&t| {
            matches!(
                vocab.kind(t),
                TokenKind::Entity(_) | TokenKind::Attr(_) | TokenKind::Value(_)
            )
        })
        .collect()
}

impl Dataset {
    /// Generates a dataset with the standard parameters for `kind`.
    pub fn standard(kind: DatasetKind, seed: u64) -> Self {
        Self::generate(Vocab::default_eval(), &GenConfig::standard(kind, seed))
    }

    /// Generates a dataset.
    pub fn generate(vocab: Vocab, cfg: &GenConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n_ent = vocab.n_entities();
        let n_attr = vocab.n_attrs();
        let n_val = vocab.n_values();
        let n_fill = vocab.n_fillers();
        let mut used_pairs: HashSet<(u32, u32)> = HashSet::new();

        let mut chunks: Vec<Vec<TokenId>> = Vec::new();
        let mut chunk_doc: Vec<usize> = Vec::new();
        let mut facts_by_kind: [Vec<QueryCase>; 3] = [vec![], vec![], vec![]];

        for doc in 0..cfg.n_docs {
            // 2-3 entities per document, disjoint across documents.
            let ents_per_doc = 3u32;
            let doc_ents: Vec<u32> = (0..ents_per_doc)
                .map(|j| (doc as u32 * ents_per_doc + j) % n_ent)
                .collect();
            let mut stream: Vec<TokenId> = Vec::new();
            let mut facts: Vec<FactMeta> = Vec::new();
            let mut cur_subject: Option<(u32, usize)> = None; // (entity, pos)
            let mut used_values: HashSet<u32> = HashSet::new();
            let mut ent_cursor = 0usize;

            for f in 0..cfg.doc_facts {
                // Filler between facts.
                let n_fillers = (cfg.filler_rate * rng.random::<f32>() * 3.0) as usize;
                for _ in 0..n_fillers {
                    stream.push(vocab.id(TokenKind::Filler(rng.random_range(0..n_fill))));
                }
                // Subject: explicit or coreferent.
                let gap = cur_subject
                    .map(|(_, p)| stream.len() - p)
                    .unwrap_or(usize::MAX);
                let make_ref = f > 0
                    && cur_subject.is_some()
                    && gap < MAX_REF_GAP
                    && rng.random::<f32>() < cfg.ref_prob;
                let (subject, subj_pos, antecedent_pos, is_ref) = if make_ref {
                    let (e, p) = cur_subject.unwrap();
                    stream.push(vocab.id(TokenKind::Ref));
                    (e, stream.len() - 1, p, true)
                } else {
                    let e = doc_ents[ent_cursor % doc_ents.len()];
                    ent_cursor += 1;
                    stream.push(vocab.id(TokenKind::Entity(e)));
                    let p = stream.len() - 1;
                    cur_subject = Some((e, p));
                    (e, p, p, false)
                };
                // Attribute with a globally-unique (subject, attr) pair.
                let attr = (0..n_attr)
                    .map(|_| rng.random_range(0..n_attr))
                    .find(|&a| !used_pairs.contains(&(subject, a)));
                let Some(attr) = attr else {
                    stream.pop();
                    continue; // subject exhausted its attributes
                };
                used_pairs.insert((subject, attr));
                stream.push(vocab.id(TokenKind::Attr(attr)));
                // Values: unique within the document so induction chains
                // are unambiguous.
                let len = rng.random_range(cfg.answer_len.0..=cfg.answer_len.1);
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    let v = (0..4 * n_val)
                        .map(|_| rng.random_range(0..n_val))
                        .find(|v| !used_values.contains(v))
                        .unwrap_or_else(|| rng.random_range(0..n_val));
                    used_values.insert(v);
                    values.push(v);
                    stream.push(vocab.id(TokenKind::Value(v)));
                }
                let end_pos = stream.len() - 1;
                stream.push(vocab.id(TokenKind::Sep));
                facts.push(FactMeta {
                    subject,
                    attr,
                    values,
                    subj_pos,
                    end_pos,
                    antecedent_pos,
                    is_ref,
                });
            }

            // Fixed-window chunking of the document stream.
            let base = chunks.len();
            for w in stream.chunks(cfg.chunk_len) {
                chunks.push(w.to_vec());
                chunk_doc.push(doc);
            }
            let chunk_of = |pos: usize| base + pos / cfg.chunk_len;

            // Classify facts into query cases.
            for m in &facts {
                let subj_chunk = chunk_of(m.subj_pos);
                let end_chunk = chunk_of(m.end_pos);
                let ante_chunk = chunk_of(m.antecedent_pos);
                let kind = if ante_chunk < subj_chunk || end_chunk > subj_chunk {
                    CaseKind::CrossChunk
                } else if m.is_ref {
                    CaseKind::WithinChunk
                } else {
                    CaseKind::Direct
                };
                let query = vec![
                    vocab.id(TokenKind::Query),
                    vocab.id(TokenKind::Entity(m.subject)),
                    vocab.id(TokenKind::Attr(m.attr)),
                    vocab.id(TokenKind::QMark),
                ];
                let gold: Vec<TokenId> = m
                    .values
                    .iter()
                    .map(|&v| vocab.id(TokenKind::Value(v)))
                    .collect();
                // Retrieval hint: content tokens from the neighborhood of
                // *both* hops (the fact's chunk and the antecedent's), minus
                // the answer values.
                let mut retrieval_hint: Vec<TokenId> = content_tokens(&vocab, &chunks[subj_chunk])
                    .into_iter()
                    .filter(|t| !gold.contains(t))
                    .take(3)
                    .collect();
                if ante_chunk != subj_chunk {
                    retrieval_hint.extend(
                        content_tokens(&vocab, &chunks[ante_chunk])
                            .into_iter()
                            .filter(|t| !gold.contains(t))
                            .take(3),
                    );
                }
                let slot = match kind {
                    CaseKind::CrossChunk => 0,
                    CaseKind::WithinChunk => 1,
                    CaseKind::Direct => 2,
                };
                facts_by_kind[slot].push(QueryCase {
                    query,
                    gold,
                    retrieval_hint,
                    relevant_chunks: (ante_chunk..=end_chunk).collect(),
                    kind,
                });
            }
        }

        // Stratified case sampling toward the target mix, then a seeded
        // shuffle so any prefix of `cases` approximates the mix (experiment
        // binaries cap the case count).
        let mut cases = Vec::with_capacity(cfg.n_cases);
        let targets = [
            (cfg.case_mix.0 * cfg.n_cases as f32).round() as usize,
            (cfg.case_mix.1 * cfg.n_cases as f32).round() as usize,
            usize::MAX, // direct fills the remainder
        ];
        let mut taken = [0usize; 3];
        for slot in 0..3 {
            let want = targets[slot].min(facts_by_kind[slot].len());
            while cases.len() < cfg.n_cases && taken[slot] < want {
                cases.push(facts_by_kind[slot][taken[slot]].clone());
                taken[slot] += 1;
            }
        }
        // Top up from whatever is left if a class ran short.
        for slot in 0..3 {
            while cases.len() < cfg.n_cases && taken[slot] < facts_by_kind[slot].len() {
                cases.push(facts_by_kind[slot][taken[slot]].clone());
                taken[slot] += 1;
            }
        }
        {
            use rand::seq::SliceRandom;
            let mut shuffle_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xCA5E);
            cases.shuffle(&mut shuffle_rng);
        }

        // Retrieval index over content tokens only (entities, attributes,
        // values) — the stopword filtering every real retriever does.
        let embedder = Embedder::new(cfg.seed ^ 0xE55E);
        let mut index = VectorIndex::new();
        for c in &chunks {
            index.add(embedder.embed(&content_tokens(&vocab, c)));
        }

        Dataset {
            kind: cfg.kind,
            vocab,
            chunks,
            chunk_doc,
            cases,
            embedder,
            index,
        }
    }

    /// Retrieves the top-`k` chunks for a case by embedding L2 distance and
    /// returns them in *document order* (ascending chunk id), the standard
    /// RAG practice of ordering stuffed context by source position.
    pub fn retrieve(&self, case: &QueryCase, k: usize) -> Vec<usize> {
        let mut q_tokens = content_tokens(&self.vocab, &case.query);
        q_tokens.extend_from_slice(&case.retrieval_hint);
        let q = self.embedder.embed(&q_tokens);
        let mut ids: Vec<usize> = self
            .index
            .search(&q, k)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Oracle context: the case's relevant chunks padded with retrieved
    /// distractors up to `k`, in document order. Used by experiments that
    /// isolate *generation* quality from retrieval quality.
    pub fn oracle_context(&self, case: &QueryCase, k: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = case.relevant_chunks.clone();
        for c in self.retrieve(case, k) {
            if ids.len() >= k {
                break;
            }
            if !ids.contains(&c) {
                ids.push(c);
            }
        }
        ids.sort_unstable();
        ids.truncate(k);
        ids
    }

    /// Scores a prediction against a gold answer with the dataset's metric.
    pub fn score(&self, pred: &[TokenId], gold: &[TokenId]) -> f32 {
        if self.kind.is_qa() {
            f1_score(pred, gold)
        } else {
            rouge_l(pred, gold)
        }
    }

    /// The token sequences of the given chunk ids.
    pub fn chunk_tokens(&self, ids: &[usize]) -> Vec<Vec<TokenId>> {
        ids.iter().map(|&i| self.chunks[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(kind: DatasetKind) -> Dataset {
        Dataset::standard(kind, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ds(DatasetKind::MusiqueSim);
        let b = ds(DatasetKind::MusiqueSim);
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(a.cases.len(), b.cases.len());
    }

    #[test]
    fn all_kinds_generate_cases() {
        for kind in DatasetKind::all() {
            let d = ds(kind);
            assert!(
                d.cases.len() >= 20,
                "{}: only {} cases",
                kind.name(),
                d.cases.len()
            );
            assert!(!d.chunks.is_empty());
        }
    }

    #[test]
    fn chunks_respect_length_limit() {
        for kind in DatasetKind::all() {
            let cfg = GenConfig::standard(kind, 7);
            let d = Dataset::generate(Vocab::default_eval(), &cfg);
            assert!(d.chunks.iter().all(|c| c.len() <= cfg.chunk_len));
        }
    }

    #[test]
    fn cross_chunk_cases_exist_and_are_meaningful() {
        let d = ds(DatasetKind::MusiqueSim);
        let cross = d
            .cases
            .iter()
            .filter(|c| c.kind == CaseKind::CrossChunk)
            .count();
        assert!(cross >= 10, "only {cross} cross-chunk cases");
        for c in d.cases.iter().filter(|c| c.kind == CaseKind::CrossChunk) {
            assert!(
                c.relevant_chunks.len() >= 2,
                "cross-chunk case with a single relevant chunk"
            );
        }
    }

    #[test]
    fn answer_lengths_match_dataset_flavour() {
        let qa = ds(DatasetKind::MusiqueSim);
        assert!(qa.cases.iter().all(|c| c.gold.len() == 1));
        let summ = ds(DatasetKind::MultiNewsSim);
        assert!(summ.cases.iter().all(|c| c.gold.len() >= 4));
    }

    #[test]
    fn queries_are_well_formed() {
        let d = ds(DatasetKind::TwoWikiSim);
        for c in &d.cases {
            assert_eq!(c.query.len(), 4);
            assert_eq!(d.vocab.kind(c.query[0]), TokenKind::Query);
            assert!(matches!(d.vocab.kind(c.query[1]), TokenKind::Entity(_)));
            assert!(matches!(d.vocab.kind(c.query[2]), TokenKind::Attr(_)));
            assert_eq!(d.vocab.kind(c.query[3]), TokenKind::QMark);
        }
    }

    #[test]
    fn retrieval_finds_relevant_chunks_often() {
        let d = ds(DatasetKind::MusiqueSim);
        let mut hits = 0;
        let mut total = 0;
        for c in &d.cases {
            let got = d.retrieve(c, 6);
            total += c.relevant_chunks.len();
            hits += c.relevant_chunks.iter().filter(|r| got.contains(r)).count();
        }
        let recall = hits as f32 / total as f32;
        assert!(recall > 0.5, "retrieval recall too low: {recall}");
    }

    #[test]
    fn retrieval_returns_sorted_unique_ids() {
        let d = ds(DatasetKind::SamsumSim);
        let got = d.retrieve(&d.cases[0], 8);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(got.len() <= 8);
    }

    #[test]
    fn oracle_context_contains_all_relevant() {
        let d = ds(DatasetKind::MusiqueSim);
        for c in d.cases.iter().take(10) {
            let ctx = d.oracle_context(c, 6);
            for r in &c.relevant_chunks {
                assert!(ctx.contains(r), "relevant chunk {r} missing from oracle");
            }
        }
    }

    #[test]
    fn score_dispatches_by_kind() {
        let qa = ds(DatasetKind::MusiqueSim);
        assert_eq!(qa.score(&[1, 2], &[2, 1]), 1.0); // F1 order-insensitive
        let summ = ds(DatasetKind::SamsumSim);
        assert!(summ.score(&[1, 2], &[2, 1]) < 1.0); // Rouge-L is not
    }

    #[test]
    fn fact_pairs_are_globally_unique() {
        // No two cases share (entity, attr) with different golds.
        let d = ds(DatasetKind::TwoWikiSim);
        let mut seen: std::collections::HashMap<(TokenId, TokenId), Vec<TokenId>> =
            std::collections::HashMap::new();
        for c in &d.cases {
            let key = (c.query[1], c.query[2]);
            if let Some(prev) = seen.get(&key) {
                assert_eq!(prev, &c.gold, "conflicting facts for {key:?}");
            }
            seen.insert(key, c.gold.clone());
        }
    }
}
