//! Observability for the CacheBlend stack: a process-wide lock-free
//! metrics registry, per-request span tracing with `chrome://tracing`
//! export, and a tiny leveled logger — all hand-rolled, no external
//! dependencies (the build environment has no registry access).
//!
//! # Metrics ([`metrics`])
//!
//! [`Registry::global()`](metrics::Registry::global) hands out shared
//! handles to monotonic [`Counter`](metrics::Counter)s, f64
//! [`Gauge`](metrics::Gauge)s, and log-linear
//! [`Histogram`](metrics::Histogram)s (bounded relative error γ, default
//! 1/32 ≈ 3.1%, p50/p90/p99/p999 extraction). Updates are single relaxed
//! atomic ops — safe on every hot path. A
//! [`MetricsSnapshot`](metrics::MetricsSnapshot) is the serializable view:
//! it encodes to a defensive length-checked byte format (this is what
//! crosses the wire in a `MetricsReply`), merges across processes with
//! per-registry instance-id dedup (so a loopback cluster whose replicas
//! share one registry is not double-counted), and renders Prometheus-style
//! exposition text.
//!
//! **Convention:** duration histograms record *nanoseconds* and use a
//! `_seconds` name suffix; rendering and the quantile helpers convert to
//! seconds at the edge.
//!
//! # Tracing ([`trace`])
//!
//! A [`Span`](trace::Span) is an RAII guard recording a named interval
//! into a bounded global ring buffer; [`TraceContext`](trace::TraceContext)
//! is a thread-local (trace id, parent span id) pair so nested guards
//! parent correctly without threading ids through every call. Code that
//! cannot use RAII (the gateway's event-driven request table) records
//! spans explicitly with [`trace::record_span`]. Trace ids cross worker
//! hops inside `Submit`/`Ev` frames; [`trace::chrome_trace_json`] exports
//! the ring as a `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! # Logging ([`log`])
//!
//! `cb_info!`/`cb_warn!`/`cb_error!`/`cb_debug!` write timestamped,
//! single-writer lines to stderr, filtered by the `CB_LOG` environment
//! variable (`debug|info|warn|error|off`, default `info`). The macros
//! evaluate their format arguments **only when the level is enabled** —
//! a disabled debug log of a frame costs one relaxed load, no allocation.
//!
//! # Turning it off
//!
//! [`set_enabled(false)`] short-circuits every metric update, span record,
//! and log write at one relaxed atomic load. Compiling with the `noop`
//! feature removes the bodies entirely (the floor the BENCH_obs overhead
//! guard is budgeted against).

pub mod log;
pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables all instrumentation (metrics, spans,
/// logs). Used by the overhead bench to measure the enabled-vs-noop
/// delta in one process; defaults to enabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when instrumentation is live. One relaxed load; with the `noop`
/// feature this is a compile-time `false` and every caller folds away.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first observability call in this
/// process. All span timestamps share this epoch, so intervals recorded
/// by different threads are directly comparable.
#[inline]
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Forces the clock epoch to initialize now (call early in `main` so the
/// first span does not pay the `OnceLock` initialization).
pub fn init_clock() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    // NOTE: no unit test flips `set_enabled` — tests in one binary run
    // concurrently and a momentary global disable would race the
    // recording tests. The BENCH_obs overhead guard exercises the
    // disabled path in its own process.
    #[test]
    fn instrumentation_is_enabled_by_default() {
        assert!(enabled() || cfg!(feature = "noop"));
    }
}
