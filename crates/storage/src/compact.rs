//! Background compaction for the segment log.
//!
//! A sealed log accumulates *dead* bytes as records are overwritten or
//! tombstoned; compaction rewrites the still-live records into a fresh
//! log and deletes the victim. Every step is crash-safe:
//!
//! 1. **Select** a sealed own-series log whose dead fraction exceeds
//!    [`SegmentLogConfig::compact_min_garbage`].
//! 2. **Reserve replay order.** Allocate the output log's sequence `C`
//!    and ask the flusher to rotate the active log to `C + 1` — and wait
//!    for the ack — *before* snapshotting the victim's live set. From
//!    that point every concurrent append lands in a log that replays
//!    after `C`, so a compacted (older) record can never shadow a newer
//!    concurrent write during startup replay.
//! 3. **Snapshot** the index entries (and shared-mode unclaimed records)
//!    still pointing into the victim, plus the tombstones it holds.
//! 4. **Rewrite** them — checksum-verified — into `C`'s file via a
//!    `.ctmp` temp and an atomic rename. A crash before the rename
//!    leaves only debris (the victim is untouched; exclusive startup
//!    deletes stale `.ctmp` files). A crash after the rename leaves both
//!    logs, and seq-ordered replay (victim < `C`) resolves every key to
//!    the same record the index held — the victim is then pure garbage
//!    for the next pass.
//! 5. **Repoint** the index at `C` (skipping entries that moved on while
//!    we rewrote — their copies in `C` are simply dead weight) and delete
//!    the victim. Readers that raced the delete keep succeeding through
//!    their cached file handle; a reader that misses re-checks the index
//!    and finds the repointed location.
//!
//! Tombstones are rewritten into `C` unless the victim is the oldest log
//! on the medium (then nothing older can hold a shadowed put and the
//! tombstone has done its job). Shared handles never drop tombstones —
//! a sibling series with an older sequence can appear at any time.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::backend::IoCounters;
use crate::checksum::fnv64;
use crate::segment_log::{
    frame_record, log_path, FileKey, FlushMsg, LogInfo, LogState, RecordLoc, SegmentLogConfig,
    Slot, KIND_PUT, KIND_TOMB, REC_FRAME, REC_HEADER,
};

/// Everything a compaction pass needs; shared by the background thread
/// and the synchronous [`crate::SegmentLogBackend::compact_now`] path.
pub(crate) struct CompactorCtx {
    pub(crate) state: Arc<Mutex<LogState>>,
    pub(crate) dir: PathBuf,
    pub(crate) nonce: u64,
    pub(crate) cfg: SegmentLogConfig,
    pub(crate) io: Arc<IoCounters>,
    pub(crate) flusher: Sender<FlushMsg>,
}

/// Picks the sealed own-series log with the most dead bytes, if any
/// clears the configured thresholds.
fn select_victim(s: &LogState, ctx: &CompactorCtx) -> Option<FileKey> {
    s.logs
        .iter()
        .filter(|(&fk, info)| {
            fk.1 == ctx.nonce
                && fk != s.active
                && info.len >= ctx.cfg.compact_min_bytes
                && (info.len - info.live) as f64 / info.len as f64 >= ctx.cfg.compact_min_garbage
        })
        .max_by_key(|(_, info)| info.len - info.live)
        .map(|(&fk, _)| fk)
}

/// Runs one compaction pass. Returns the bytes reclaimed (`None` when no
/// log clears the thresholds, or another pass is already running).
///
/// `abort_after` is the fault-injection hook: `Some(n)` "crashes" the
/// pass after rewriting `n` live records — the `.ctmp` is left behind
/// and no state changes, exactly like a process kill mid-rewrite.
pub(crate) fn compact_one(ctx: &CompactorCtx, abort_after: Option<usize>) -> Option<u64> {
    let t0 = std::time::Instant::now();
    let reclaimed = compact_one_inner(ctx, abort_after);
    if reclaimed.is_some() {
        // Pass timing is the one compaction fact no stats struct holds
        // (counts and reclaimed bytes reach the registry through
        // `KvStore::publish_metrics`'s maintenance fold-in).
        cb_obs::metrics::Registry::global()
            .histogram("cb_compaction_seconds")
            .record_duration(t0.elapsed());
    }
    reclaimed
}

fn compact_one_inner(ctx: &CompactorCtx, abort_after: Option<usize>) -> Option<u64> {
    // -- Select + reserve replay order ------------------------------------
    let (victim, out_fk, rotate_to) = {
        let mut s = ctx.state.lock();
        if s.compacting {
            return None;
        }
        let victim = select_victim(&s, ctx)?;
        s.compacting = true;
        let out = s.next_seq;
        s.next_seq += 2; // out log C, rotated active C+1
        (victim, (out, ctx.nonce), out + 1)
    };
    let finish = |s: &mut LogState| s.compacting = false;

    let (done_tx, done_rx) = bounded::<()>(1);
    let rotated = ctx
        .flusher
        .send(FlushMsg::Rotate {
            to_seq: rotate_to,
            done: done_tx,
        })
        .is_ok()
        && done_rx.recv().is_ok();
    if !rotated {
        finish(&mut ctx.state.lock());
        return None;
    }

    // -- Snapshot the victim's live set -----------------------------------
    // (key, old location, claimed-in-index vs shared-unclaimed)
    let (victim_path, victim_len, rewrites, tombs, drop_tombs) = {
        let mut s = ctx.state.lock();
        let Some(info) = s.logs.get(&victim) else {
            finish(&mut s);
            return None;
        };
        let victim_path = info.path.clone();
        let victim_len = info.len;
        let mut rewrites: Vec<(u64, RecordLoc, bool)> = Vec::new();
        for (&k, slot) in &s.index {
            if let Slot::Stored(loc) = slot {
                if loc.file == victim {
                    rewrites.push((k, *loc, true));
                }
            }
        }
        for (&k, &loc) in &s.unclaimed {
            if loc.file == victim {
                rewrites.push((k, loc, false));
            }
        }
        let tombs: Vec<u64> = s
            .tombstones
            .iter()
            .filter(|&(_, &f)| f == victim)
            .map(|(&k, _)| k)
            .collect();
        // A tombstone may be dropped only when no log that replays before
        // the victim could hold the put it shadows — and never in shared
        // mode, where an older sibling series can appear at any time.
        let drop_tombs = ctx.nonce == 0 && !s.logs.keys().any(|&fk| fk < victim);
        (victim_path, victim_len, rewrites, tombs, drop_tombs)
    };

    // -- Rewrite into the temp file ---------------------------------------
    ctx.io.open();
    ctx.io.read();
    let Ok(raw) = fs::read(&victim_path) else {
        finish(&mut ctx.state.lock());
        return None;
    };
    let out_path = log_path(&ctx.dir, out_fk);
    let tmp_path = out_path.with_extension("cblog.ctmp");

    let mut buf = Vec::new();
    let mut moved: Vec<(u64, RecordLoc, u64, bool)> = Vec::new();
    let mut corrupt: Vec<(u64, RecordLoc, bool)> = Vec::new();
    let mut aborted = false;
    for (k, old, claimed) in rewrites {
        if abort_after.is_some_and(|n| moved.len() >= n) {
            aborted = true;
            break;
        }
        let start = old.payload_off as usize - REC_HEADER;
        let body = old.payload_off as usize + old.len as usize;
        let valid = body + 8 <= raw.len() && {
            let declared = u64::from_le_bytes(raw[body..body + 8].try_into().unwrap());
            fnv64(&raw[start..body]) == declared
        };
        if !valid {
            corrupt.push((k, old, claimed));
            continue;
        }
        let off = frame_record(&mut buf, KIND_PUT, k, &raw[old.payload_off as usize..body]);
        moved.push((k, old, off, claimed));
    }
    if !drop_tombs && !aborted {
        for &k in &tombs {
            frame_record(&mut buf, KIND_TOMB, k, &[]);
        }
    }

    if aborted {
        // Simulated crash mid-rewrite: partial temp stays, nothing else
        // happened — startup recovery must treat it as debris.
        ctx.io.open();
        ctx.io.write();
        let _ = fs::write(&tmp_path, &buf);
        finish(&mut ctx.state.lock());
        return Some(0);
    }

    let out_len = buf.len() as u64;
    let out_file = if out_len > 0 {
        ctx.io.open();
        ctx.io.write();
        let written = fs::File::create(&tmp_path)
            .and_then(|mut f| f.write_all(&buf).and_then(|_| f.sync_all()));
        if written.is_err() {
            let _ = fs::remove_file(&tmp_path);
            finish(&mut ctx.state.lock());
            return None;
        }
        ctx.io.rename();
        if fs::rename(&tmp_path, &out_path).is_err() {
            let _ = fs::remove_file(&tmp_path);
            finish(&mut ctx.state.lock());
            return None;
        }
        ctx.io.open();
        match fs::File::open(&out_path) {
            Ok(f) => Some(Arc::new(f)),
            Err(_) => {
                finish(&mut ctx.state.lock());
                return None;
            }
        }
    } else {
        None
    };

    // -- Repoint the index and drop the victim ----------------------------
    let victim_info = {
        let mut s = ctx.state.lock();
        if let Some(file) = out_file {
            s.logs.insert(
                out_fk,
                LogInfo {
                    path: out_path,
                    file: Some(file),
                    len: out_len,
                    live: 0,
                    scan_pos: out_len,
                },
            );
        }
        for (k, old, new_off, claimed) in moved {
            let new_loc = RecordLoc {
                file: out_fk,
                payload_off: new_off,
                len: old.len,
            };
            if claimed {
                // Repoint only if the key still maps to the record we
                // copied; anything newer landed in seq ≥ C+1 and replays
                // after us, so the stale copy in C is dead weight.
                if matches!(s.index.get(&k), Some(Slot::Stored(cur)) if *cur == old) {
                    s.index.insert(k, Slot::Stored(new_loc));
                    if let Some(info) = s.logs.get_mut(&out_fk) {
                        info.live += new_loc.frame_len();
                    }
                }
            } else if s.unclaimed.get(&k) == Some(&old) {
                s.unclaimed.insert(k, new_loc);
                if let Some(info) = s.logs.get_mut(&out_fk) {
                    info.live += new_loc.frame_len();
                }
            }
        }
        for (k, old, claimed) in corrupt {
            if claimed {
                if matches!(s.index.get(&k), Some(Slot::Stored(cur)) if *cur == old) {
                    s.index.remove(&k);
                    s.used -= old.len;
                }
            } else if s.unclaimed.get(&k) == Some(&old) {
                s.unclaimed.remove(&k);
            }
            s.counters.corrupt_dropped += 1;
        }
        for &k in &tombs {
            if s.tombstones.get(&k) == Some(&victim) {
                if drop_tombs {
                    s.tombstones.remove(&k);
                } else {
                    s.tombstones.insert(k, out_fk);
                    if let Some(info) = s.logs.get_mut(&out_fk) {
                        info.live += REC_FRAME as u64;
                    }
                }
            }
        }
        let victim_info = s.logs.remove(&victim);
        s.counters.compactions += 1;
        let reclaimed = victim_len.saturating_sub(out_len);
        s.counters.reclaimed_bytes += reclaimed;
        s.counters.rewritten_bytes += out_len;
        finish(&mut s);
        victim_info
    };
    if let Some(info) = victim_info {
        ctx.io.delete();
        let _ = fs::remove_file(info.path);
    }
    Some(victim_len.saturating_sub(out_len))
}
