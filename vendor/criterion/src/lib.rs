//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this vendored
//! crate provides the API subset the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups with throughput, `iter`/`iter_batched`). It is a
//! timing-only harness: each benchmark runs a short warmup then a bounded
//! measurement loop and prints mean wall-clock per iteration — no
//! statistics, plots, or baselines. Runs are kept short so the bench
//! binaries stay cheap when `cargo test` executes them.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// harness always materializes one input per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark timing loop.
pub struct Bencher {
    iters: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the measurement loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup iteration, then the measured loop.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters as u32);
    }

    /// Times `routine` over per-iteration inputs built by `setup`
    /// (setup time is excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.iters as u32);
    }
}

fn run_one(
    label: &str,
    iters: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { iters, mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                    let gbps = n as f64 / mean.as_secs_f64() / 1e9;
                    format!("  ({gbps:.3} GB/s)")
                }
                Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                    let eps = n as f64 / mean.as_secs_f64();
                    format!("  ({eps:.0} elem/s)")
                }
                _ => String::new(),
            };
            println!("bench {label:<40} {mean:>12.3?}/iter over {iters} iters{extra}");
        }
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// The benchmark driver handed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<S: std::fmt::Display>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement-loop iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<S: std::fmt::Display>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
