//! Positional re-alignment of cached keys (Appendix A).
//!
//! A chunk's KV cache is precomputed at *local* positions; when the chunk
//! is placed at a different offset inside a request, every RoPE'd key must
//! be rotated by the position delta: `K(m) → K(m+Δ)` via the rotation
//! matrix `R(Δθᵢ)`. Values and non-RoPE'd key dims are position-independent
//! and untouched; relative-bias heads get their positions at attention time
//! and need no correction at all.
//!
//! Skipping this step is exactly the "naive reuse" failure PromptCache
//! guards against — `tests` (and the `no-rotation` ablation in the benches)
//! show it destroys the recency head.

use cb_model::{KvCache, LayerKv, Model};

/// Rotates the RoPE'd head blocks of one layer's keys by `delta` positions
/// (in place on each row's head segment — no column-block copies).
pub fn relocate_layer(model: &Model, layer: usize, kv: &mut LayerKv, delta: i64) {
    if delta == 0 {
        return;
    }
    let hd = model.cfg.head_dim;
    for (h, head) in model.layers[layer].heads.iter().enumerate() {
        if let Some(table) = &head.rope {
            cb_tensor::rope::rotate_col_block_by(&mut kv.k, table, h * hd, delta);
        }
    }
}

/// Relocates a whole cache so its first token sits at `new_start`,
/// rewriting positions and rotating keys on every layer.
///
/// # Panics
///
/// Panics if the cache is empty or `new_start` would move any position
/// below zero.
pub fn relocate(model: &Model, cache: &mut KvCache, new_start: usize) {
    assert!(!cache.is_empty(), "cannot relocate an empty cache");
    let old_start = cache.positions[0];
    let delta = new_start as i64 - old_start as i64;
    if delta == 0 {
        return;
    }
    assert!(
        cache.positions.iter().all(|&p| p as i64 + delta >= 0),
        "relocation would produce negative positions"
    );
    for (l, layer_kv) in cache.layers.iter_mut().enumerate() {
        relocate_layer(model, l, layer_kv, delta);
    }
    for p in &mut cache.positions {
        *p = (*p as i64 + delta) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    #[test]
    fn relocation_matches_direct_computation() {
        // A chunk prefilled at positions 1.. then relocated to 5.. must have
        // the same K as the same tokens directly prefilled at 5.. (behind
        // the same prefix states — we check the *first layer*, whose K
        // depends only on embeddings and position).
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1)), v.id(Attr(0)), v.id(Value(3))];
        let mut cached = cb_kv::precompute::precompute_chunk(&m, &chunk);
        relocate(&m, &mut cached, 5);
        assert_eq!(cached.positions, vec![5, 6, 7]);

        // Direct: prefill [bos pad pad pad pad chunk...] and look at rows 5..8.
        let mut toks = vec![v.id(Bos)];
        toks.extend(std::iter::repeat_n(v.id(Pad), 4));
        toks.extend_from_slice(&chunk);
        let (direct, _) = m.prefill(&toks);
        let want = direct.layers[0].k.slice_rows(5, 8);
        let d = cached.layers[0].k.frobenius_distance(&want);
        assert!(d < 1e-3, "layer-0 K mismatch after relocation: {d}");
    }

    #[test]
    fn relocation_is_reversible() {
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1)), v.id(Attr(0))];
        let orig = cb_kv::precompute::precompute_chunk(&m, &chunk);
        let mut moved = orig.clone();
        relocate(&m, &mut moved, 100);
        relocate(&m, &mut moved, 1);
        for l in 0..m.n_layers() {
            let d = moved.layers[l].k.frobenius_distance(&orig.layers[l].k);
            assert!(d < 1e-3, "layer {l} not restored: {d}");
        }
        assert_eq!(moved.positions, orig.positions);
    }

    #[test]
    fn values_are_never_touched() {
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1)), v.id(Value(2))];
        let orig = cb_kv::precompute::precompute_chunk(&m, &chunk);
        let mut moved = orig.clone();
        relocate(&m, &mut moved, 50);
        for l in 0..m.n_layers() {
            assert_eq!(
                moved.layers[l].v, orig.layers[l].v,
                "V changed at layer {l}"
            );
        }
    }

    #[test]
    fn zero_delta_is_identity() {
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1))];
        let orig = cb_kv::precompute::precompute_chunk(&m, &chunk);
        let mut moved = orig.clone();
        relocate(&m, &mut moved, 1);
        assert_eq!(moved, orig);
    }

    #[test]
    fn backward_relocation_to_zero_is_allowed() {
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1)), v.id(Attr(0))];
        let mut c = cb_kv::precompute::precompute_chunk(&m, &chunk);
        relocate(&m, &mut c, 0);
        assert_eq!(c.positions, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "negative positions")]
    fn negative_positions_rejected() {
        let m = model();
        let v = &m.cfg.vocab;
        let chunk = vec![v.id(Entity(1)), v.id(Attr(0))];
        let mut bad = cb_kv::precompute::precompute_chunk(&m, &chunk);
        // Non-contiguous positions whose minimum would underflow when the
        // first token is moved to 0 (delta = −1 applied to position 0).
        bad.positions = vec![1, 0];
        relocate(&m, &mut bad, 0);
    }
}
