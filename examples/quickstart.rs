//! Quickstart: precompute chunk KV caches, fuse them with CacheBlend, and
//! compare the answer against full prefill and full KV reuse.
//!
//! Run with: `cargo run --release --example quickstart`

use cacheblend::core::fusor::{BlendConfig, Fusor};
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::model::{Model, ModelConfig, ModelProfile};
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    // 1. Build the compiled tiny model (a stand-in for Mistral-7B — see
    //    DESIGN.md for the substitution rationale).
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let vocab = model.cfg.vocab.clone();
    let t = |k| vocab.id(k);

    // 2. Two "retrieved" text chunks. Chunk 2's first fact says "*it*
    //    attr3 = val9" — the subject lives in chunk 1, so answering a
    //    question about it needs cross-chunk attention.
    let chunk1 = vec![t(Entity(5)), t(Attr(0)), t(Value(1)), t(Sep)];
    let chunk2 = vec![
        t(Ref),
        t(Attr(3)),
        t(Value(9)),
        t(Sep),
        t(Entity(8)),
        t(Attr(1)),
        t(Value(4)),
        t(Sep),
    ];
    let query = vec![t(Query), t(Entity(5)), t(Attr(3)), t(QMark)];
    println!("chunk 1: {}", vocab.render_seq(&chunk1));
    println!("chunk 2: {}", vocab.render_seq(&chunk2));
    println!("query:   {}\n", vocab.render_seq(&query));

    // 3. Precompute each chunk's KV cache in isolation (what a KV store
    //    would hold).
    let parts = || {
        vec![
            precompute_chunk(&model, &chunk1),
            precompute_chunk(&model, &chunk2),
        ]
    };

    // 4. Gold standard: full prefill (slow — recomputes everything).
    let mut toks = vec![t(Bos)];
    toks.extend_from_slice(&chunk1);
    toks.extend_from_slice(&chunk2);
    toks.extend_from_slice(&query);
    let gold = model.generate(&toks, 4);
    println!("full prefill      → {}", vocab.render_seq(&gold));

    // 5. Full KV reuse: fast, but the coreference is lost.
    let reuse = cacheblend::baselines::run_full_reuse(&model, parts(), &query, 4, true);
    println!("full KV reuse     → {}", vocab.render_seq(&reuse.answer));

    // 6. CacheBlend: recompute only the high-KV-deviation tokens.
    let fusor = Fusor::new(&model, BlendConfig::with_ratio(0.4));
    let out = fusor.blend(parts(), &query, false);
    let mut cache = out.cache;
    let blend = model.decode_greedy(&mut cache, &out.last_residual, 4);
    println!(
        "CacheBlend (r=40%) → {}  [recomputed {:?} tokens/layer of {} context tokens]",
        vocab.render_seq(&blend),
        out.stats.selected_per_layer,
        out.stats.ctx_len,
    );

    assert_eq!(gold, blend, "CacheBlend must match full prefill here");
    assert_ne!(gold, reuse.answer, "full reuse must fail here");
    println!("\nCacheBlend matched full prefill; full KV reuse did not.");
}
