//! Deterministic ±1 identity codes for tokens.
//!
//! The compiled transformer program identifies tokens by *random codes*
//! rather than one-hot vectors: token `t` is assigned a vector
//! `c_t ∈ {−1,+1}^d` drawn deterministically from `(seed, t)`. Inner
//! products concentrate — `⟨c_t, c_t⟩ = d` while `⟨c_t, c_u⟩` for `t ≠ u`
//! is a sum of `d` independent ±1 variables (mean 0, σ = √d) — so a softmax
//! over match scores acts as a reliable selector once `d` comfortably
//! exceeds `3√d + ln(seq_len)` margins. With the default `d = 32` and
//! sequences ≤ 1024 the match/mismatch gap is ≈ 32 vs ≲ 20.
//!
//! Codes live in the tokenizer crate (not the model) because dataset
//! generators and tests also reason about code geometry.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::vocab::TokenId;

/// Default code dimensionality used by the evaluation profiles.
pub const DEFAULT_CODE_DIM: usize = 32;

/// A deterministic code book assigning each token id a ±1 vector.
#[derive(Clone, Debug)]
pub struct CodeBook {
    dim: usize,
    codes: Vec<f32>, // vocab_size × dim, row-major
}

impl CodeBook {
    /// Builds the code book for `vocab_size` tokens with `dim`-dimensional
    /// codes, deterministically from `seed`.
    pub fn new(vocab_size: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "code dim must be positive");
        let mut codes = Vec::with_capacity(vocab_size * dim);
        for t in 0..vocab_size as u64 {
            // Per-token RNG so the code of token t is independent of
            // vocab_size and of other tokens.
            let mut rng = SmallRng::seed_from_u64(seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..dim {
                codes.push(if rng.random::<bool>() { 1.0 } else { -1.0 });
            }
        }
        Self { dim, codes }
    }

    /// Code dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tokens in the book.
    pub fn vocab_size(&self) -> usize {
        self.codes.len() / self.dim
    }

    /// The code of token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside the book.
    pub fn code(&self, t: TokenId) -> &[f32] {
        let t = t as usize;
        assert!(t < self.vocab_size(), "token id {t} outside code book");
        &self.codes[t * self.dim..(t + 1) * self.dim]
    }

    /// Inner product between the codes of two tokens.
    pub fn dot(&self, a: TokenId, b: TokenId) -> f32 {
        self.code(a)
            .iter()
            .zip(self.code(b).iter())
            .map(|(x, y)| x * y)
            .sum()
    }

    /// Decodes the token whose code best matches `v` (by inner product)
    /// restricted to ids in `candidates`; returns the winning id.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `v.len() != dim`.
    pub fn nearest(&self, v: &[f32], candidates: impl IntoIterator<Item = TokenId>) -> TokenId {
        assert_eq!(v.len(), self.dim, "query vector length mismatch");
        let mut best: Option<(TokenId, f32)> = None;
        for t in candidates {
            let score: f32 = self.code(t).iter().zip(v.iter()).map(|(c, x)| c * x).sum();
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((t, score));
            }
        }
        best.expect("nearest called with no candidates").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_deterministic() {
        let a = CodeBook::new(64, 32, 7);
        let b = CodeBook::new(64, 32, 7);
        assert_eq!(a.code(13), b.code(13));
    }

    #[test]
    fn codes_differ_across_seeds() {
        let a = CodeBook::new(64, 32, 7);
        let b = CodeBook::new(64, 32, 8);
        assert_ne!(a.code(13), b.code(13));
    }

    #[test]
    fn codes_independent_of_vocab_size() {
        let a = CodeBook::new(64, 32, 7);
        let b = CodeBook::new(128, 32, 7);
        assert_eq!(a.code(13), b.code(13));
    }

    #[test]
    fn self_dot_is_dim() {
        let cb = CodeBook::new(16, 32, 1);
        for t in 0..16 {
            assert_eq!(cb.dot(t, t), 32.0);
        }
    }

    #[test]
    fn cross_dots_concentrate() {
        // With d = 32 mismatched dots should stay well below the match
        // value 32; 3σ = 3·√32 ≈ 17.
        let cb = CodeBook::new(256, 32, 42);
        let mut max_abs: f32 = 0.0;
        for a in 0..256u32 {
            for b in (a + 1)..256u32 {
                max_abs = max_abs.max(cb.dot(a, b).abs());
            }
        }
        assert!(
            max_abs < 28.0,
            "worst cross-correlation too high: {max_abs}"
        );
    }

    #[test]
    fn nearest_recovers_token_from_noisy_code() {
        let cb = CodeBook::new(100, 32, 5);
        let mut v: Vec<f32> = cb.code(37).to_vec();
        for (i, x) in v.iter_mut().enumerate() {
            *x += ((i as f32 * 0.71).sin()) * 0.4; // mild noise
        }
        assert_eq!(cb.nearest(&v, 0..100), 37);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn nearest_empty_candidates_panics() {
        let cb = CodeBook::new(4, 8, 0);
        let v = vec![0.0; 8];
        let _ = cb.nearest(&v, std::iter::empty());
    }
}
