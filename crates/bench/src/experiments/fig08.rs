//! Figure 8: Spearman rank correlation of per-token KV deviation between
//! neighboring layers, three models.
//!
//! Paper shape: consistently high correlation (≳0.7) — the justification
//! for selecting HKVD tokens on one layer and reusing the choice on the
//! next (Insight 2).

use cb_core::deviation::oracle_kv_deviation;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_tensor::stats::spearman;

use crate::harness::{reused_context_cache, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let mut rows = Vec::new();
    for exp in ExpModel::evaluation_models(11) {
        let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
        let mut ev = QualityEval::new(&exp.model);
        let n_layers = exp.model.n_layers();
        // Deviation rank correlation is only meaningful once context has
        // mixed (layer ≥ 1).
        let pairs: Vec<(usize, usize)> = (1..n_layers - 1).map(|l| (l, l + 1)).collect();
        let mut sums = vec![0.0f64; pairs.len()];
        let n_cases = 6;
        for case in ds.cases.iter().take(n_cases) {
            let ctx = ds.retrieve(case, 6);
            let reused = reused_context_cache(&exp.model, &mut ev, &ds, &ctx);
            let dev = oracle_kv_deviation(&exp.model, &reused);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                sums[i] += spearman(&dev[a], &dev[b]);
            }
        }
        for (i, &(a, b)) in pairs.iter().enumerate() {
            rows.push(
                Row::new("fig08")
                    .col("model", exp.perf.spec.name)
                    .col("layer_pair", format!("{a} vs {b}"))
                    .num("spearman", sums[i] / n_cases as f64),
            );
        }
    }
    emit("fig08_layer_correlation", &rows);
}
