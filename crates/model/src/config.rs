//! Model configuration, residual-stream layout, and scaled profiles.

use cb_tokenizer::Vocab;

/// Width of one identity-code subspace in the residual stream.
pub const CODE_DIM: usize = 32;

/// Named subspaces of the residual stream used by the compiled program.
///
/// The stream is
/// `[CUR | PREV | ENT | KEYA | KEYB | ANS | CLS(8) | CONST | SINK | scratch]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subspace {
    /// Identity code of the token at this position.
    Cur,
    /// Identity code of the *previous* token (written by the prev-token head).
    Prev,
    /// Identity code of the most recent entity (written by the last-entity
    /// head — the cross-chunk coreference channel).
    Ent,
    /// First half of the fact-binding key `code(ent) ⊙ code(prev)` (written
    /// by the bilinear MLP); value positions carry their fact's key here,
    /// the query position carries the probe.
    KeyA,
    /// Second half of the binding key, `roll(code(ent), 1) ⊙ code(prev)` —
    /// doubles the match margin of the recall lookup.
    KeyB,
    /// Answer accumulator read by the unembedding.
    Ans,
}

impl Subspace {
    /// Offset of this subspace in the residual stream.
    pub fn offset(self) -> usize {
        match self {
            Subspace::Cur => 0,
            Subspace::Prev => CODE_DIM,
            Subspace::Ent => 2 * CODE_DIM,
            Subspace::KeyA => 3 * CODE_DIM,
            Subspace::KeyB => 4 * CODE_DIM,
            Subspace::Ans => 5 * CODE_DIM,
        }
    }
}

/// Offset of the 8 class-indicator dims.
pub const CLS_OFFSET: usize = 6 * CODE_DIM;
/// Number of class-indicator dims.
pub const CLS_DIMS: usize = 8;
/// Offset of the always-one bias dim.
pub const CONST_OFFSET: usize = CLS_OFFSET + CLS_DIMS;
/// Offset of the BOS sink flag (1.0 only on the BOS embedding; lets linear
/// value projections cancel the sink token's content so "no match" heads
/// write nothing).
pub const SINK_OFFSET: usize = CONST_OFFSET + 1;
/// Offset of the scratch region (noise heads write here).
pub const SCRATCH_OFFSET: usize = SINK_OFFSET + 1;
/// Total residual width (scratch pads to a multiple of 16).
pub const D_MODEL: usize = 224;

/// Class-indicator channel indices within the CLS block.
pub mod cls {
    /// Entity tokens *and* BOS (the null-entity sink).
    pub const ENT_OR_BOS: usize = 0;
    /// Attribute tokens.
    pub const ATTR: usize = 1;
    /// Value tokens.
    pub const VALUE: usize = 2;
    /// The coreference marker.
    pub const REF: usize = 3;
    /// The end-of-query marker.
    pub const QMARK: usize = 4;
    /// The fact separator.
    pub const SEP: usize = 5;
    /// Filler words.
    pub const FILLER: usize = 6;
    /// Everything else (query introducer, EOS, PAD).
    pub const OTHER: usize = 7;
}

/// The three evaluation model profiles plus a tiny test profile.
///
/// Each profile is a *scaled stand-in* for the paper's model of the same
/// name: program depth is identical (4 layers) and extra "mixing" layers of
/// seeded noise emulate the deeper stacks, so per-layer statistics
/// (Figures 7/8) have multiple layers to range over. The matching *paper
/// scale* constants (real layer counts, KV bytes/token) live in
/// `cb-storage::perf`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelProfile {
    /// 6-layer stand-in for Mistral-7B.
    Mistral7B,
    /// 10-layer stand-in for Yi-34B.
    Yi34B,
    /// 14-layer stand-in for Llama-70B.
    Llama70B,
    /// 4-layer (program only) profile for fast unit tests.
    Tiny,
}

impl ModelProfile {
    /// All evaluation profiles (excludes [`ModelProfile::Tiny`]).
    pub fn evaluation_profiles() -> [ModelProfile; 3] {
        [
            ModelProfile::Mistral7B,
            ModelProfile::Yi34B,
            ModelProfile::Llama70B,
        ]
    }

    /// Total transformer layers in the scaled model.
    pub fn n_layers(self) -> usize {
        match self {
            ModelProfile::Tiny => 4,
            ModelProfile::Mistral7B => 6,
            ModelProfile::Yi34B => 10,
            ModelProfile::Llama70B => 14,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelProfile::Tiny => "Tiny",
            ModelProfile::Mistral7B => "Mistral-7B",
            ModelProfile::Yi34B => "Yi-34B",
            ModelProfile::Llama70B => "Llama-70B",
        }
    }
}

/// Full model configuration.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// The structured vocabulary.
    pub vocab: Vocab,
    /// Profile determining depth.
    pub profile: ModelProfile,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Dimensions per head.
    pub head_dim: usize,
    /// Seed for token codes and noise weights.
    pub seed: u64,
    /// Output scale of noise (mixing) heads and MLPs.
    pub noise_scale: f32,
}

impl ModelConfig {
    /// The standard configuration for a profile: 4 heads × 64 dims (the
    /// recall/induction heads need 64 dims for their double-width binding
    /// keys), moderate mixing noise.
    pub fn standard(profile: ModelProfile, seed: u64) -> Self {
        Self {
            vocab: Vocab::default_eval(),
            profile,
            n_heads: 4,
            head_dim: 64,
            seed,
            noise_scale: 0.02,
        }
    }

    /// Residual width (fixed by the program layout).
    pub fn d_model(&self) -> usize {
        D_MODEL
    }

    /// Total layers.
    pub fn n_layers(&self) -> usize {
        self.profile.n_layers()
    }

    /// Width of one layer's K (or V) row: heads × head_dim.
    pub fn kv_width(&self) -> usize {
        self.n_heads * self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspaces_fit_in_d_model() {
        const { assert!(SCRATCH_OFFSET < D_MODEL) };
        assert_eq!(Subspace::Ans.offset() + CODE_DIM, CLS_OFFSET);
    }

    #[test]
    fn subspaces_are_disjoint() {
        let offs = [
            Subspace::Cur.offset(),
            Subspace::Prev.offset(),
            Subspace::Ent.offset(),
            Subspace::KeyA.offset(),
            Subspace::KeyB.offset(),
            Subspace::Ans.offset(),
        ];
        for (i, &a) in offs.iter().enumerate() {
            for &b in offs.iter().skip(i + 1) {
                assert!(a + CODE_DIM <= b || b + CODE_DIM <= a);
            }
        }
    }

    #[test]
    fn profiles_have_room_for_program() {
        for p in ModelProfile::evaluation_profiles() {
            assert!(p.n_layers() >= 4, "{p:?} too shallow for the program");
        }
    }

    #[test]
    fn standard_config_is_consistent() {
        let cfg = ModelConfig::standard(ModelProfile::Tiny, 1);
        assert_eq!(cfg.kv_width(), 256);
        assert_eq!(cfg.d_model(), 224);
        assert_eq!(cfg.n_layers(), 4);
    }
}
