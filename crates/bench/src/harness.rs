//! Quality evaluation (tiny compiled models) and TTFT estimation
//! (paper-scale delay model) per scheme.

use cb_baselines::{
    run_full_recompute, run_full_reuse, run_map_reduce, run_map_rerank, SchemeKind,
};
use cb_core::engine::{Engine, EngineBuilder, Request};
use cb_core::fusor::{BlendConfig, Fusor, Selection};
use cb_model::{KvCache, Model, ModelConfig, ModelProfile};
use cb_rag::datasets::{Dataset, QueryCase};
use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};

/// Maximum answer tokens decoded per query.
pub const MAX_ANSWER_TOKENS: usize = 8;

/// A tiny executable model paired with its paper-scale delay model.
pub struct ExpModel {
    /// The compiled tiny model (quality).
    pub model: Model,
    /// The paper-scale delay model (TTFT).
    pub perf: PerfModel,
    /// Paper-scale profile.
    pub paper: PaperModel,
}

impl ExpModel {
    /// Builds the pair for a paper model.
    pub fn new(paper: PaperModel, seed: u64) -> Self {
        let profile = match paper {
            PaperModel::Llama7B | PaperModel::Mistral7B => ModelProfile::Mistral7B,
            PaperModel::Yi34B => ModelProfile::Yi34B,
            PaperModel::Llama70B => ModelProfile::Llama70B,
        };
        Self {
            model: Model::compiled(ModelConfig::standard(profile, seed)),
            perf: PerfModel::on_a40(paper),
            paper,
        }
    }

    /// The three evaluation models.
    pub fn evaluation_models(seed: u64) -> Vec<ExpModel> {
        PaperModel::evaluation_models()
            .into_iter()
            .map(|p| ExpModel::new(p, seed))
            .collect()
    }
}

/// Quality evaluator backed by an [`Engine`]: the CacheBlend arm submits
/// requests (store lookup → pipelined blend → decode), and the engine's
/// content-addressed store is the single chunk-cache memoization — the
/// FullReuse/ablation arms decode their parts from the same store. The
/// engine also owns the evaluator's only model copy ([`Engine::model`]).
pub struct QualityEval {
    engine: Engine,
}

/// Mean quality of one scheme over a dataset slice.
#[derive(Clone, Copy, Debug)]
pub struct SchemeQuality {
    /// Mean score (F1 or Rouge-L by dataset).
    pub mean_score: f64,
    /// Cases evaluated.
    pub n: usize,
}

impl QualityEval {
    /// Creates an evaluator for a model (cloned once into the engine).
    pub fn new(model: &Model) -> Self {
        let engine = EngineBuilder::new(model.cfg.profile)
            .model(model.clone())
            .build()
            .expect("engine for quality eval");
        Self { engine }
    }

    fn model(&self) -> &Model {
        self.engine.model()
    }

    /// The standalone cache of dataset chunk `id`, memoized in the
    /// engine's store (precomputed on first access, decoded thereafter).
    pub fn chunk_cache(&mut self, ds: &Dataset, id: usize) -> KvCache {
        let cid = self
            .engine
            .register_chunk(&ds.chunks[id])
            .expect("register dataset chunk");
        self.engine
            .store()
            .get(cid)
            .expect("decode stored chunk")
            .expect("just-registered chunk present")
            .0
    }

    /// Runs one scheme on one case with the given retrieved chunk ids and
    /// returns the predicted answer.
    pub fn answer(
        &mut self,
        ds: &Dataset,
        case: &QueryCase,
        ctx: &[usize],
        scheme: SchemeKind,
        ratio: f32,
    ) -> Vec<u32> {
        let chunks = ds.chunk_tokens(ctx);
        match scheme {
            // Prefix caching reuses only position-identical prefixes, so
            // its generation is exactly full recompute.
            SchemeKind::FullRecompute | SchemeKind::PrefixCaching => {
                run_full_recompute(self.model(), &chunks, &case.query, MAX_ANSWER_TOKENS).answer
            }
            SchemeKind::FullReuse => {
                let parts: Vec<KvCache> = ctx.iter().map(|&i| self.chunk_cache(ds, i)).collect();
                run_full_reuse(self.model(), parts, &case.query, MAX_ANSWER_TOKENS, true).answer
            }
            SchemeKind::CacheBlend => {
                let ids = self
                    .engine
                    .register_chunks(&chunks)
                    .expect("register retrieved chunks");
                self.engine
                    .submit(
                        Request::new(ids, case.query.clone())
                            .ratio(ratio)
                            .max_new_tokens(MAX_ANSWER_TOKENS),
                    )
                    .expect("engine submit")
                    .answer
            }
            SchemeKind::MapReduce => {
                run_map_reduce(self.model(), &chunks, &case.query, MAX_ANSWER_TOKENS).answer
            }
            SchemeKind::MapRerank => {
                run_map_rerank(self.model(), &chunks, &case.query, MAX_ANSWER_TOKENS).answer
            }
        }
    }

    /// Runs CacheBlend with random token selection (the HKVD ablation).
    pub fn answer_random_selection(
        &mut self,
        ds: &Dataset,
        case: &QueryCase,
        ctx: &[usize],
        ratio: f32,
        seed: u64,
    ) -> Vec<u32> {
        let parts: Vec<KvCache> = ctx.iter().map(|&i| self.chunk_cache(ds, i)).collect();
        let cfg = BlendConfig {
            recompute_ratio: ratio,
            gamma: 0.3,
            selection: Selection::Random { seed },
        };
        Fusor::new(self.model(), cfg).answer(parts, &case.query, MAX_ANSWER_TOKENS)
    }

    /// Mean quality of a scheme over up to `cap` cases with top-`k`
    /// retrieval.
    pub fn eval(
        &mut self,
        ds: &Dataset,
        scheme: SchemeKind,
        ratio: f32,
        k: usize,
        cap: usize,
    ) -> SchemeQuality {
        let mut total = 0.0f64;
        let mut n = 0usize;
        for case in ds.cases.iter().take(cap) {
            let ctx = ds.retrieve(case, k);
            if ctx.is_empty() {
                continue;
            }
            let pred = self.answer(ds, case, &ctx, scheme, ratio);
            total += ds.score(&pred, &case.gold) as f64;
            n += 1;
        }
        SchemeQuality {
            mean_score: if n > 0 { total / n as f64 } else { 0.0 },
            n,
        }
    }
}

/// Assembles the *reused* (concatenated, relocated, never recomputed)
/// context cache for a retrieved chunk set — the `KV^pre` of Table 1,
/// used by the oracle deviation analyses (Figures 7/8).
pub fn reused_context_cache(
    model: &Model,
    ev: &mut QualityEval,
    ds: &Dataset,
    ctx: &[usize],
) -> KvCache {
    let bos = cb_kv::precompute::bos_cache(model);
    let mut segments = vec![bos];
    let mut cursor = 1usize;
    for &i in ctx {
        let mut p = ev.chunk_cache(ds, i);
        cb_core::rope_align::relocate(model, &mut p, cursor);
        cursor += p.len();
        segments.push(p);
    }
    let refs: Vec<&KvCache> = segments.iter().collect();
    KvCache::concat(&refs)
}

/// Paper-scale TTFT of a scheme on a `k × chunk_tokens` context (Figure 12
/// setting: prefix caching is warmed on the first chunk; CacheBlend and
/// full reuse have every chunk cached).
pub fn scheme_ttft(
    perf: &PerfModel,
    scheme: SchemeKind,
    k: usize,
    chunk_tokens: usize,
    suffix: usize,
    device: DeviceKind,
    ratio: f64,
) -> f64 {
    let ctx = k * chunk_tokens;
    match scheme {
        SchemeKind::FullRecompute => perf.ttft_full_prefill(ctx + suffix),
        SchemeKind::PrefixCaching => perf.ttft_prefix_caching(ctx + suffix, chunk_tokens),
        SchemeKind::FullReuse => perf.ttft_full_reuse(ctx, suffix, device),
        SchemeKind::CacheBlend => perf.ttft_blend(ratio, ctx, suffix, device),
        // Map passes run in parallel across the batch dimension (latency =
        // one chunk+query prefill) …
        SchemeKind::MapRerank => perf.ttft_full_prefill(chunk_tokens + suffix),
        // … and MapReduce adds a second full pass over the summaries plus
        // the answer-generation latency of the map stage.
        SchemeKind::MapReduce => {
            let map = perf.ttft_full_prefill(chunk_tokens + suffix);
            let map_decode = 8.0 * perf.decode_time_per_token();
            let reduce = perf.ttft_full_prefill(k * 8 + suffix);
            map + map_decode + reduce
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_rag::datasets::DatasetKind;

    #[test]
    fn eval_orders_schemes_on_musique() {
        // The headline quality ordering: full recompute ≈ CacheBlend ≫
        // full reuse, on a cross-attention-heavy dataset.
        let m = ExpModel::new(PaperModel::Mistral7B, 11);
        let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
        let mut ev = QualityEval::new(&m.model);
        let full = ev.eval(&ds, SchemeKind::FullRecompute, 0.0, 6, 16);
        let blend = ev.eval(&ds, SchemeKind::CacheBlend, 0.18, 6, 16);
        let reuse = ev.eval(&ds, SchemeKind::FullReuse, 0.0, 6, 16);
        assert!(full.mean_score > 0.4, "full recompute weak: {full:?}");
        assert!(
            blend.mean_score >= full.mean_score - 0.15,
            "blend lost too much: {blend:?} vs {full:?}"
        );
        assert!(
            reuse.mean_score < full.mean_score - 0.15,
            "full reuse should be clearly worse: {reuse:?} vs {full:?}"
        );
    }

    #[test]
    fn ttft_orders_schemes() {
        let perf = PerfModel::on_a40(PaperModel::Yi34B);
        let t = |s| scheme_ttft(&perf, s, 6, 512, 32, DeviceKind::NvmeSsd, 0.15);
        assert!(t(SchemeKind::FullReuse) <= t(SchemeKind::CacheBlend));
        assert!(t(SchemeKind::CacheBlend) < t(SchemeKind::PrefixCaching));
        assert!(t(SchemeKind::PrefixCaching) < t(SchemeKind::FullRecompute));
        assert!(t(SchemeKind::MapReduce) > t(SchemeKind::MapRerank));
    }
}
