//! Serving-rate exploration: sweep the request rate and watch each
//! scheme's TTFT saturate (a quick interactive view of Figure 14).
//!
//! Run with: `cargo run --release --example serving_simulation`

use cacheblend::baselines::SchemeKind;
use cacheblend::serving::sim::{ServingConfig, Simulator};
use cacheblend::serving::workload::{Workload, WorkloadConfig};
use cacheblend::storage::device::DeviceKind;
use cacheblend::storage::perf::{PaperModel, PerfModel};

fn main() {
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullReuse,
        SchemeKind::PrefixCaching,
        SchemeKind::FullRecompute,
    ];
    println!(
        "{} on {}: mean TTFT (s) by request rate\n",
        perf.spec.name,
        DeviceKind::NvmeSsd.spec().name
    );
    print!("{:>10}", "rate(rps)");
    for s in schemes {
        print!("{:>20}", s.name());
    }
    println!();
    let saturation = 1.0 / perf.ttft_full_prefill(6 * 512 + 32);
    for mult in [0.2, 0.5, 0.8, 1.0, 1.5, 2.5, 4.0] {
        let rate = saturation * mult;
        print!("{rate:>10.3}");
        for scheme in schemes {
            let w = Workload::generate(&WorkloadConfig::extended(rate, 99));
            let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
            let stats = Simulator::new(cfg).run(&w);
            print!("{:>20.3}", stats.ttft.mean_s);
        }
        println!();
    }
    println!("\n(each column saturates at a different rate — CacheBlend's knee is furthest right among quality-preserving schemes)");
}
