//! Figure 17: storage-device variation (CPU RAM vs the 4 Gb/s slow disk)
//! on Yi-34B / 2WikiMQA.
//!
//! Paper shape: CacheBlend keeps its quality on both devices; on the slow
//! disk the TTFT gap to full KV reuse narrows (both become load-bound)
//! while the gap to full recompute stays wide.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_storage::device::DeviceKind;
use cb_storage::perf::PaperModel;

use crate::experiments::fig12::{CHUNK_TOKENS, K, RATIO, SUFFIX};
use crate::harness::{scheme_ttft, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let exp = ExpModel::new(PaperModel::Yi34B, 11);
    let ds = Dataset::standard(DatasetKind::TwoWikiSim, 7);
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullReuse,
        SchemeKind::PrefixCaching,
        SchemeKind::FullRecompute,
    ];
    let mut rows = Vec::new();
    for device in [DeviceKind::CpuRam, DeviceKind::SlowSsd] {
        let mut ev = QualityEval::new(&exp.model);
        for scheme in schemes {
            let q = ev.eval(&ds, scheme, RATIO, K, 20);
            let ttft = scheme_ttft(
                &exp.perf,
                scheme,
                K,
                CHUNK_TOKENS,
                SUFFIX,
                device,
                RATIO as f64,
            );
            rows.push(
                Row::new("fig17")
                    .col("device", device.spec().name)
                    .col("scheme", scheme.name())
                    .num("quality", q.mean_score)
                    .num("ttft_s", ttft),
            );
        }
    }
    emit("fig17_storage_devices", &rows);
}
