//! The metrics registry: counters, gauges, log-linear histograms, and
//! the serializable/mergeable/renderable [`MetricsSnapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter. Updates are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n`; a no-op while instrumentation is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// An f64 gauge (bit-cast into an atomic u64). `set` is a plain store;
/// `add` is a CAS loop — gauges are off the per-token hot path.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge to `v`; a no-op while instrumentation is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `d` (atomically, via CAS).
    pub fn add(&self, d: f64) {
        if !crate::enabled() {
            return;
        }
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + d).to_bits())
            });
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default sub-bucket resolution: 2⁵ = 32 sub-buckets per power of two,
/// a guaranteed relative quantile error γ ≤ 1/32 ≈ 3.13%.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// A log-linear histogram over `u64` values (HdrHistogram-shaped).
///
/// Values below 2^`sub_bits` get one exact bucket each; every power-of-two
/// range [2ᵉ, 2ᵉ⁺¹) above that is split into 2^`sub_bits` equal
/// sub-buckets, so a recorded value is reconstructed from its bucket's
/// upper bound with relative error ≤ γ = 2^-`sub_bits`. Recording is
/// three relaxed `fetch_add`s — lock-free and wait-free.
#[derive(Debug)]
pub struct Histogram {
    sub_bits: u32,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// Number of buckets for a given resolution.
fn n_buckets(sub_bits: u32) -> usize {
    (1usize << sub_bits) * (65 - sub_bits as usize)
}

/// The bucket a value lands in (shared by the live histogram and
/// snapshot reconstruction).
fn bucket_index(sub_bits: u32, v: u64) -> usize {
    let sub = 1u64 << sub_bits;
    if v < sub {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // >= sub_bits
    let shift = e - sub_bits;
    let sub_idx = ((v >> shift) - sub) as usize;
    (sub as usize) + (shift as usize) * (sub as usize) + sub_idx
}

/// The largest value that lands in bucket `i` — the quantile
/// representative (upper bound keeps the γ error one-sided).
pub fn bucket_upper(sub_bits: u32, i: usize) -> u64 {
    let sub = 1usize << sub_bits;
    if i < sub {
        return i as u64; // exact bucket
    }
    let group = (i - sub) / sub;
    let pos = ((i - sub) % sub) as u64;
    let e = group as u32 + sub_bits;
    let width = 1u64 << (e - sub_bits);
    (1u64 << e) + (pos + 1) * width - 1
}

impl Histogram {
    fn new(sub_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits out of range: {sub_bits}"
        );
        let buckets = (0..n_buckets(sub_bits))
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            sub_bits,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets,
        }
    }

    /// The configured relative error bound γ = 2^-`sub_bits`.
    pub fn gamma(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Records one value; a no-op while instrumentation is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(self.sub_bits, v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (the convention
    /// for `*_seconds` histograms).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        HistSnapshot {
            sub_bits: self.sub_bits,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Quantile of the live histogram (see [`HistSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A serializable point-in-time histogram: sparse `(bucket, count)`
/// pairs plus totals. Merging adds bucket counts, so cluster-wide
/// quantiles are exact with respect to the bucketed data (merge is
/// associative and commutative — property-tested).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub sub_bits: u32,
    pub count: u64,
    pub sum: u64,
    /// Sorted by bucket index, counts > 0.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`. Returns 0
    /// for an empty histogram. Monotone in `q` by construction; relative
    /// error ≤ γ = 2^-`sub_bits` versus the true recorded value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return bucket_upper(self.sub_bits, i as usize);
            }
        }
        // Unreachable when counts are consistent; fall back to the max.
        self.buckets
            .last()
            .map(|&(i, _)| bucket_upper(self.sub_bits, i as usize))
            .unwrap_or(0)
    }

    /// Quantile scaled to seconds (for `*_seconds` histograms, which
    /// record nanoseconds).
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e9
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s buckets into `self`. Panics if the resolutions
    /// differ (all histograms in this workspace use one γ per name).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "histogram resolution mismatch"
        );
        self.count += other.count;
        self.sum += other.sum;
        let mut map: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *map.entry(i).or_insert(0) += c;
        }
        self.buckets = map.into_iter().collect();
    }
}

/// A named collection of metrics. One global instance per process
/// ([`Registry::global`]); tests and the bench harness can build
/// private ones. Handle lookup takes a mutex; updates through the
/// returned `Arc` handles are lock-free — cache the handle, not the
/// name.
#[derive(Debug)]
pub struct Registry {
    instance: u64,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn instance_id() -> u64 {
    // splitmix64 over (pid, wall clock): distinct per process, which is
    // exactly the granularity snapshot dedup needs.
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = (std::process::id() as u64) ^ t.rotate_left(32);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)).max(1)
}

impl Registry {
    /// A fresh, private registry (tests, benches).
    pub fn new() -> Self {
        Self {
            instance: instance_id(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry every subsystem publishes into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// This registry's process-unique identity, used to deduplicate when
    /// a gateway merges worker snapshots that may alias its own registry
    /// (the in-process loopback cluster).
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The histogram named `name` at the default resolution
    /// ([`DEFAULT_SUB_BITS`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_sub_bits(name, DEFAULT_SUB_BITS)
    }

    /// The histogram named `name` with γ = 2^-`sub_bits`. The resolution
    /// is fixed by whoever registers the name first.
    pub fn histogram_with_sub_bits(&self, name: &str, sub_bits: u32) -> Arc<Histogram> {
        let mut m = self.hists.lock().unwrap();
        Arc::clone(
            m.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(sub_bits))),
        )
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let hists = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            instances: vec![self.instance],
            counters,
            gauges,
            hists,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A serializable view of one or more registries. Name-sorted vectors;
/// `instances` lists every registry merged in (dedup key).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub instances: Vec<u64>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistSnapshot)>,
}

// Defensive caps for the wire decoder: a corrupt or hostile payload may
// not cause large allocations before its claimed sizes are validated.
const MAX_NAME: usize = 512;
const MAX_ENTRIES: usize = 65_536;
const MAX_HIST_BUCKETS: usize = 1 << 20;
const SNAPSHOT_VERSION: u8 = 1;

/// Decode failure (truncated, oversized, or malformed payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDecodeError(pub &'static str);

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics snapshot decode: {}", self.0)
    }
}

impl std::error::Error for SnapshotDecodeError {}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
        if self.b.len() - self.at < n {
            return Err(SnapshotDecodeError("truncated"));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotDecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn name(&mut self) -> Result<String, SnapshotDecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_NAME {
            return Err(SnapshotDecodeError("name too long"));
        }
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| SnapshotDecodeError("name not utf-8"))
    }
    /// Validates an element count against both the hard cap and the
    /// bytes actually remaining (`min_elem` bytes per element).
    fn count(&mut self, cap: usize, min_elem: usize) -> Result<usize, SnapshotDecodeError> {
        let n = self.u32()? as usize;
        if n > cap || n * min_elem > self.b.len() - self.at {
            return Err(SnapshotDecodeError("length exceeds payload"));
        }
        Ok(n)
    }
}

fn put_name(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl MetricsSnapshot {
    /// Serializes to the length-checked little-endian wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&(self.instances.len() as u32).to_le_bytes());
        for &i in &self.instances {
            out.extend_from_slice(&i.to_le_bytes());
        }
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, v) in &self.counters {
            put_name(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (k, v) in &self.gauges {
            put_name(&mut out, k);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len() as u32).to_le_bytes());
        for (k, h) in &self.hists {
            put_name(&mut out, k);
            out.push(h.sub_bits as u8);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for &(i, c) in &h.buckets {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Decodes the wire format; every claimed length is validated against
    /// the remaining payload before any allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotDecodeError> {
        let mut c = Cur { b: bytes, at: 0 };
        if c.u8()? != SNAPSHOT_VERSION {
            return Err(SnapshotDecodeError("unknown version"));
        }
        let n = c.count(MAX_ENTRIES, 8)?;
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            instances.push(c.u64()?);
        }
        let n = c.count(MAX_ENTRIES, 12)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.name()?;
            counters.push((k, c.u64()?));
        }
        let n = c.count(MAX_ENTRIES, 12)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.name()?;
            gauges.push((k, c.f64()?));
        }
        let n = c.count(MAX_ENTRIES, 25)?;
        let mut hists = Vec::with_capacity(n);
        for _ in 0..n {
            let k = c.name()?;
            let sub_bits = c.u8()? as u32;
            if !(1..=16).contains(&sub_bits) {
                return Err(SnapshotDecodeError("bad histogram resolution"));
            }
            let count = c.u64()?;
            let sum = c.u64()?;
            let nb = c.count(MAX_HIST_BUCKETS, 12)?;
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                let i = c.u32()?;
                if i as usize >= n_buckets(sub_bits) {
                    return Err(SnapshotDecodeError("bucket index out of range"));
                }
                buckets.push((i, c.u64()?));
            }
            hists.push((
                k,
                HistSnapshot {
                    sub_bits,
                    count,
                    sum,
                    buckets,
                },
            ));
        }
        if c.at != bytes.len() {
            return Err(SnapshotDecodeError("trailing bytes"));
        }
        Ok(Self {
            instances,
            counters,
            gauges,
            hists,
        })
    }

    /// Merges `other` into `self`: counters and gauges sum by name,
    /// histograms merge bucket-wise. A snapshot whose instances are all
    /// already present is skipped entirely — this is what keeps a
    /// loopback cluster (gateway and workers sharing one process-global
    /// registry) from counting itself N times.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if !other.instances.is_empty() && other.instances.iter().all(|i| self.instances.contains(i))
        {
            return;
        }
        for &i in &other.instances {
            if !self.instances.contains(&i) {
                self.instances.push(i);
            }
        }
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (k, v) in &other.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();
        let mut gauges: BTreeMap<String, f64> = self.gauges.drain(..).collect();
        for (k, v) in &other.gauges {
            *gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        self.gauges = gauges.into_iter().collect();
        let mut hists: BTreeMap<String, HistSnapshot> = self.hists.drain(..).collect();
        for (k, h) in &other.hists {
            hists.entry(k.clone()).or_default().merge(h);
        }
        self.hists = hists.into_iter().collect();
    }

    /// Counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Histogram by exact name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Sum of a labeled gauge family, e.g. `cb_worker_queue_depth`
    /// matches `cb_worker_queue_depth{worker="w0"}`.
    pub fn gauge_family_sum(&self, base: &str) -> f64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k == base || (k.starts_with(base) && k[base.len()..].starts_with('{')))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Prometheus-style exposition text. `*_seconds` histograms (which
    /// record nanoseconds) are rendered in seconds.
    pub fn to_prometheus(&self) -> String {
        fn base(name: &str) -> &str {
            name.split('{').next().unwrap_or(name)
        }
        let mut out = String::new();
        let mut last_base = String::new();
        for (k, v) in &self.counters {
            if base(k) != last_base {
                last_base = base(k).to_string();
                out.push_str(&format!("# TYPE {last_base} counter\n"));
            }
            out.push_str(&format!("{k} {v}\n"));
        }
        last_base.clear();
        for (k, v) in &self.gauges {
            if base(k) != last_base {
                last_base = base(k).to_string();
                out.push_str(&format!("# TYPE {last_base} gauge\n"));
            }
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.hists {
            let secs = k.ends_with("_seconds");
            let scale = if secs { 1e-9 } else { 1.0 };
            out.push_str(&format!("# TYPE {k} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                out.push_str(&format!(
                    "{k}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q) as f64 * scale
                ));
            }
            out.push_str(&format!("{k}_sum {}\n", h.sum as f64 * scale));
            out.push_str(&format!("{k}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        let h = Histogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 32);
        assert_eq!(s.sum, (0..32).sum::<u64>());
        // Every value below 2^sub_bits reconstructs exactly.
        for v in 0..32usize {
            assert_eq!(bucket_upper(5, bucket_index(5, v as u64)), v as u64);
        }
    }

    #[test]
    fn bucket_error_bound_holds_across_the_range() {
        for sub_bits in [1u32, 3, 5, 8] {
            let gamma = 1.0 / (1u64 << sub_bits) as f64;
            let mut v = 1u64;
            while v < u64::MAX / 3 {
                for x in [v, v + v / 3, v * 2 - 1] {
                    let i = bucket_index(sub_bits, x);
                    let up = bucket_upper(sub_bits, i);
                    assert!(up >= x, "upper {up} < value {x}");
                    let err = (up - x) as f64;
                    assert!(
                        err <= gamma * x as f64 + 1.0,
                        "sub_bits={sub_bits} x={x} up={up} err={err}"
                    );
                }
                v = v.saturating_mul(2);
            }
        }
    }

    #[test]
    fn quantiles_match_exact_percentiles_within_gamma() {
        let h = Histogram::new(5);
        let vals: Vec<u64> = (1..=10_000u64).map(|i| i * 37).collect();
        for &v in &vals {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs();
            assert!(
                err <= h.gamma() * exact as f64 + 1.0,
                "q={q} exact={exact} got={got}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new(5);
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 900, 44]);
        let b = mk(&[3, 70_000, 2]);
        let c = mk(&[1_000_000, 9]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let r = Registry::new();
        r.counter("cb_x_total").add(7);
        r.gauge("cb_depth{worker=\"w0\"}").set(3.5);
        let h = r.histogram("cb_lat_seconds");
        for v in [10u64, 2_000, 5_000_000] {
            h.record(v);
        }
        let s = r.snapshot();
        let bytes = s.encode();
        let back = MetricsSnapshot::decode(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let r = Registry::new();
        r.counter("a").inc();
        let bytes = r.snapshot().encode();
        // Truncations at every length never panic or over-allocate.
        for n in 0..bytes.len() {
            assert!(MetricsSnapshot::decode(&bytes[..n]).is_err());
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(MetricsSnapshot::decode(&long).is_err());
        // A claimed huge count fails fast instead of allocating.
        let mut evil = vec![SNAPSHOT_VERSION];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(MetricsSnapshot::decode(&evil).is_err());
    }

    #[test]
    fn merge_dedupes_by_instance() {
        let r = Registry::new();
        r.counter("cb_total").add(5);
        let s = r.snapshot();
        let mut merged = s.clone();
        merged.merge(&s); // same instance: must not double
        assert_eq!(merged.counter("cb_total"), Some(5));
        let r2 = Registry::new();
        r2.counter("cb_total").add(3);
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("cb_total"), Some(8));
        assert_eq!(merged.instances.len(), 2);
    }

    #[test]
    fn prometheus_rendering_scales_seconds() {
        let r = Registry::new();
        r.counter("cb_req_total").add(2);
        let h = r.histogram("cb_lat_seconds");
        h.record(1_000_000_000); // 1s in nanos
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE cb_req_total counter"));
        assert!(text.contains("cb_req_total 2"));
        assert!(text.contains("cb_lat_seconds_count 1"));
        // The quantile renders near 1.0 seconds, not 1e9.
        let line = text
            .lines()
            .find(|l| l.starts_with("cb_lat_seconds{quantile=\"0.5\"}"))
            .unwrap();
        let v: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((0.9..=1.1).contains(&v), "quantile rendered as {v}");
    }

    #[test]
    fn gauge_family_sum_matches_labels() {
        let r = Registry::new();
        r.gauge("cb_q{worker=\"w0\"}").set(2.0);
        r.gauge("cb_q{worker=\"w1\"}").set(3.0);
        r.gauge("cb_qx").set(100.0);
        let s = r.snapshot();
        assert_eq!(s.gauge_family_sum("cb_q"), 5.0);
    }
}
