//! The streaming scheduler front door: an [`EngineService`] serving
//! prioritized requests as token streams, with admission backpressure.
//!
//! Run with: `cargo run --release --example streaming_service`

use std::time::Duration;

use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    // Deployment: the engine owns the model and the tiered KV store; the
    // service owns the admission queue and the worker pool over it.
    let engine = EngineBuilder::new(ModelProfile::Mistral7B)
        .tier(DeviceKind::CpuRam, 1 << 30)
        .blend_config(BlendConfig::with_ratio(0.4))
        .build()
        .expect("engine");
    let v = engine.model().cfg.vocab.clone();
    let service = EngineService::new(
        engine,
        ServiceConfig::default().workers(2).queue_capacity(8),
    );

    // Offline: register the retrieved chunks.
    let chunk1 = service
        .engine()
        .register_chunk(&[v.id(Entity(5)), v.id(Attr(0)), v.id(Value(1)), v.id(Sep)])
        .unwrap();
    let chunk2 = service
        .engine()
        .register_chunk(&[v.id(Ref), v.id(Attr(3)), v.id(Value(9)), v.id(Sep)])
        .unwrap();
    let query = vec![v.id(Query), v.id(Entity(5)), v.id(Attr(3)), v.id(QMark)];

    // Online: one latency-sensitive stream, watched event by event.
    println!("high-priority stream:");
    let stream = service.submit_stream(
        Request::new(vec![chunk1, chunk2], query.clone())
            .priority(Priority::High)
            .deadline(Duration::from_secs(5))
            .max_new_tokens(4),
    );
    for event in stream {
        match event {
            Event::Queued => println!("  queued"),
            Event::Admitted => println!("  admitted by a worker"),
            Event::FirstToken(ttft) => println!(
                "  first token after {:?} (load wait {:?}, recompute {:?})",
                ttft.total, ttft.load_wait, ttft.recompute
            ),
            Event::Token(t) => println!("  token: {}", v.render(t)),
            Event::Done(resp) => println!(
                "  done: answer {:?}, ratio {:.2}, total {:?}",
                v.render_seq(&resp.answer),
                resp.recompute_ratio,
                resp.ttft.total
            ),
            Event::Failed(err) => println!("  failed: {err}"),
        }
    }

    // A batch of background streams on the normal lane; collect() gives
    // back the one-shot response shape.
    let streams: Vec<ResponseStream> = (0..6)
        .map(|_| service.submit_stream(Request::new(vec![chunk1, chunk2], query.clone())))
        .collect();
    let ok = streams
        .into_iter()
        .map(|s| s.collect())
        .filter(Result::is_ok)
        .count();
    println!("\nbatch: {ok}/6 normal-lane requests served");

    // Backpressure: a paused service (no workers) fills its bounded queue
    // and hands the overflow request back instead of buffering unboundedly.
    let paused = EngineService::new(
        service.engine().clone(),
        ServiceConfig::default().workers(0).queue_capacity(2),
    );
    let _a = paused.try_submit_stream(Request::new(vec![chunk1], query.clone()));
    let _b = paused.try_submit_stream(Request::new(vec![chunk1], query.clone()));
    match paused.try_submit_stream(Request::new(vec![chunk1], query)) {
        Err(TrySubmitError::QueueFull(_)) => {
            println!("backpressure: third submit rejected with QueueFull (capacity 2)")
        }
        Ok(_) => unreachable!("paused queue of 2 cannot admit a third request"),
    }

    let stats = service.stats();
    println!(
        "\nservice stats: submitted {}, completed {}, deadline misses {}, peak queue {}",
        stats.submitted, stats.completed, stats.deadline_misses, stats.peak_queue_depth
    );
}
