//! Regenerates fig14 (see DESIGN.md §8 and EXPERIMENTS.md).
//!
//! Flags:
//!
//! - `--smoke` — shrunken grids (seconds, for CI).
//! - `--backend analytic|engine|cluster|net-cluster|both` — the
//!   delay-model arm (default), the closed-loop real-engine arm, the
//!   multi-replica cluster arm, the cluster arm driven explicitly through
//!   the `cb-net` control plane with a measured routing-hop latency tax
//!   (both emit `BENCH_cluster.json`), or analytic+engine.
//! - `--replicas N` — largest replica count for the cluster arm
//!   (default 2; the grid always includes 1 and 2).
//! - `--chaos` — with `--backend net-cluster`, also run the fault drill:
//!   the same workload with and without a deterministic mid-run worker
//!   kill, emitting goodput and p99 TTFT for both into
//!   `BENCH_chaos.json`.
//! - `--trace-out PATH` — export the run's span timeline as
//!   `chrome://tracing` JSON (a chaos run shows each mid-stream retry as
//!   a `retry#k` child span under its request).
//! - `--batch` — run the continuous-batching serving arm instead
//!   (`target/experiments/BENCH_batch.json`): decode tokens/s and
//!   client-observed TTFT p50/p99 with deadline-miss counts at decode
//!   batch 1/4/8/16/32. See `experiments::batch`.

use cb_bench::experiments::batch::{run_opts as run_batch, BatchOpts};
use cb_bench::experiments::fig14::{run_opts, BackendArm, Fig14Opts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--batch") {
        run_batch(BatchOpts { smoke });
        return;
    }
    let chaos = args.iter().any(|a| a == "--chaos");
    let backend = match args.iter().position(|a| a == "--backend") {
        None => BackendArm::Analytic,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("analytic") => BackendArm::Analytic,
            Some("engine") => BackendArm::Engine,
            Some("cluster") => BackendArm::Cluster,
            Some("net-cluster") => BackendArm::NetCluster,
            Some("both") => BackendArm::Both,
            Some(other) => {
                eprintln!(
                    "unknown --backend {other:?} (expected analytic|engine|cluster|net-cluster|both)"
                );
                std::process::exit(2);
            }
            None => {
                eprintln!("--backend requires a value (analytic|engine|cluster|net-cluster|both)");
                std::process::exit(2);
            }
        },
    };
    let replicas = match args.iter().position(|a| a == "--replicas") {
        None => 2,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("--replicas requires a positive integer");
                std::process::exit(2);
            }
        },
    };
    if chaos && backend != BackendArm::NetCluster {
        eprintln!("--chaos requires --backend net-cluster");
        std::process::exit(2);
    }
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("--trace-out requires a path");
                std::process::exit(2);
            }
        },
    };
    run_opts(Fig14Opts {
        smoke,
        backend,
        replicas,
        chaos,
        trace_out,
    });
}
