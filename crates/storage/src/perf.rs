//! Paper-scale performance model: prefill, selective recompute, KV loading.
//!
//! The tiny executable models in `cb-model` cannot reproduce A40-class
//! timing, so TTFT numbers come from this analytic model — which is
//! faithful to the paper's own methodology: the §5.1 loading controller
//! *is* an analytic model (`T_recompute = r% × Prefill(LLM, L)`,
//! `T_load = PerTokenKVSize × L / Throughput`), with `Prefill` profiled
//! offline. We "profile" against the numbers the paper prints:
//!
//! - §2: prefill of a 4K-token input ≈ 3 s for Yi-34B, ≈ 6 s for Llama-70B
//!   (on 1 and 2 A40s respectively, 8-bit).
//! - §5: Llama-7B, 4K context: recomputing 15 % of tokens ≈ 3 ms/layer;
//!   loading one layer's KV from NVMe ≈ 16 ms. Llama-70B: 7 ms vs 4 ms.
//! - §7.1: NVMe throughput 4.8 GB/s.
//!
//! The model reproduces these within small factors (see tests) and, more
//! importantly, preserves the *ordering and crossover structure* the
//! figures depend on.

use crate::device::DeviceKind;

/// GPU compute profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak dense fp16 throughput per GPU, FLOP/s.
    pub peak_flops: f64,
    /// Achieved fraction of peak during prefill (MFU).
    pub efficiency: f64,
}

impl GpuSpec {
    /// The paper's NVIDIA A40 (≈150 TFLOPs fp16 with sparsity off, ~45 %
    /// prefill MFU).
    pub fn a40() -> Self {
        Self {
            name: "A40",
            peak_flops: 150.0e12,
            efficiency: 0.45,
        }
    }
}

/// The real (paper-scale) models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// Llama-2-7B (the §5 pipelining example).
    Llama7B,
    /// Mistral-7B (GQA, fp16).
    Mistral7B,
    /// Yi-34B (8-bit).
    Yi34B,
    /// Llama-70B (8-bit, 2 GPUs).
    Llama70B,
}

/// Architecture/deployment constants of a paper-scale model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperModelSpec {
    /// Which model this is.
    pub model: PaperModel,
    /// Display name.
    pub name: &'static str,
    /// Parameter count, billions.
    pub params_b: f64,
    /// Transformer layers.
    pub n_layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// KV heads (GQA) × head dim = KV projection width.
    pub kv_width: usize,
    /// Bytes per KV element (2 = fp16, 1 = 8-bit quantized).
    pub kv_elem_bytes: usize,
    /// GPUs serving the model (prefill parallelism).
    pub gpus: usize,
}

impl PaperModel {
    /// The three evaluation models (§7.1).
    pub fn evaluation_models() -> [PaperModel; 3] {
        [
            PaperModel::Mistral7B,
            PaperModel::Yi34B,
            PaperModel::Llama70B,
        ]
    }

    /// Architecture constants.
    pub fn spec(self) -> PaperModelSpec {
        match self {
            PaperModel::Llama7B => PaperModelSpec {
                model: self,
                name: "Llama-7B",
                params_b: 7.0,
                n_layers: 32,
                hidden: 4096,
                kv_width: 4096, // MHA: 32 heads × 128
                kv_elem_bytes: 2,
                gpus: 1,
            },
            PaperModel::Mistral7B => PaperModelSpec {
                model: self,
                name: "Mistral-7B",
                params_b: 7.0,
                n_layers: 32,
                hidden: 4096,
                kv_width: 1024, // GQA: 8 kv-heads × 128
                kv_elem_bytes: 2,
                gpus: 1,
            },
            PaperModel::Yi34B => PaperModelSpec {
                model: self,
                name: "Yi-34B",
                params_b: 34.0,
                n_layers: 60,
                hidden: 7168,
                kv_width: 1024,
                kv_elem_bytes: 1, // 8-bit quantization (§7.1)
                gpus: 1,
            },
            PaperModel::Llama70B => PaperModelSpec {
                model: self,
                name: "Llama-70B",
                params_b: 70.0,
                n_layers: 80,
                hidden: 8192,
                kv_width: 1024,
                kv_elem_bytes: 1,
                gpus: 2,
            },
        }
    }
}

/// The §4.3 default recompute ratio: the smallest ratio with empirically
/// negligible quality loss (Figure 16 finds 15 %).
pub const DEFAULT_RECOMPUTE_RATIO: f64 = 0.15;

/// Analytic delay model for one model on one GPU profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Model constants.
    pub spec: PaperModelSpec,
    /// GPU profile.
    pub gpu: GpuSpec,
}

impl PerfModel {
    /// A model served on the paper's A40 testbed.
    pub fn on_a40(model: PaperModel) -> Self {
        Self {
            spec: model.spec(),
            gpu: GpuSpec::a40(),
        }
    }

    /// Total prefill FLOPs for `l_tokens` of context: weight GEMMs
    /// (`2·P·L`) plus quadratic attention (`4·layers·L²·hidden`).
    pub fn prefill_flops(&self, l_tokens: usize) -> f64 {
        let l = l_tokens as f64;
        let weights = 2.0 * self.spec.params_b * 1e9 * l;
        let attn = 4.0 * self.spec.n_layers as f64 * l * l * self.spec.hidden as f64;
        weights + attn
    }

    /// Seconds of full prefill over `l_tokens` (the paper's
    /// `Prefill(LLM, L)`).
    pub fn prefill_time(&self, l_tokens: usize) -> f64 {
        self.prefill_flops(l_tokens)
            / (self.gpu.peak_flops * self.gpu.efficiency * self.spec.gpus as f64)
    }

    /// Seconds of prefill attributable to one layer.
    pub fn prefill_layer_time(&self, l_tokens: usize) -> f64 {
        self.prefill_time(l_tokens) / self.spec.n_layers as f64
    }

    /// Seconds to recompute `ratio` of tokens' KV on one layer
    /// (`T_recompute(r%, LLM, L) / n_layers`).
    pub fn recompute_layer_time(&self, ratio: f64, l_tokens: usize) -> f64 {
        ratio * self.prefill_layer_time(l_tokens)
    }

    /// KV bytes of one layer for `l_tokens`.
    pub fn layer_kv_bytes(&self, l_tokens: usize) -> f64 {
        2.0 * l_tokens as f64 * self.spec.kv_width as f64 * self.spec.kv_elem_bytes as f64
    }

    /// KV bytes across all layers.
    pub fn total_kv_bytes(&self, l_tokens: usize) -> f64 {
        self.layer_kv_bytes(l_tokens) * self.spec.n_layers as f64
    }

    /// Seconds to load one layer's KV from `device`
    /// (`T_load(LLM, L, device) / n_layers`).
    pub fn load_layer_time(&self, l_tokens: usize, device: DeviceKind) -> f64 {
        device.read_time(self.layer_kv_bytes(l_tokens))
    }

    /// TTFT of full prefill (no reuse).
    pub fn ttft_full_prefill(&self, l_tokens: usize) -> f64 {
        self.prefill_time(l_tokens)
    }

    /// TTFT of prefix caching with the first `hit_tokens` cached: only the
    /// remainder is prefilled. Like the paper's baseline we idealize the
    /// prefix load as free.
    pub fn ttft_prefix_caching(&self, l_tokens: usize, hit_tokens: usize) -> f64 {
        let rest = l_tokens.saturating_sub(hit_tokens);
        self.prefill_time(rest)
    }

    /// TTFT of full KV reuse: load everything, prefill only the suffix.
    pub fn ttft_full_reuse(&self, l_tokens: usize, suffix: usize, device: DeviceKind) -> f64 {
        self.load_layer_time(l_tokens, device) * self.spec.n_layers as f64
            + self.prefill_time(suffix)
    }

    /// TTFT of CacheBlend with pipelined loading (§5): loading layer `i+1`
    /// overlaps recomputing layer `i`, so each stage costs
    /// `max(T_load_layer, T_recompute_layer)`; layer 0 is recomputed in
    /// full (HKVD selection) and the first load cannot be hidden.
    pub fn ttft_blend(
        &self,
        ratio: f64,
        l_tokens: usize,
        suffix: usize,
        device: DeviceKind,
    ) -> f64 {
        let n = self.spec.n_layers as f64;
        let load = self.load_layer_time(l_tokens, device);
        let rec = self.recompute_layer_time(ratio, l_tokens);
        let first_layer = self.prefill_layer_time(l_tokens); // full recompute of layer 0
        load + first_layer + (n - 1.0) * load.max(rec) + self.prefill_time(suffix)
    }

    /// TTFT of CacheBlend *without* pipelining (ablation in Figure 10a):
    /// all loading then all recompute.
    pub fn ttft_blend_unpipelined(
        &self,
        ratio: f64,
        l_tokens: usize,
        suffix: usize,
        device: DeviceKind,
    ) -> f64 {
        let n = self.spec.n_layers as f64;
        let load = self.load_layer_time(l_tokens, device) * n;
        let rec = self.prefill_layer_time(l_tokens)
            + self.recompute_layer_time(ratio, l_tokens) * (n - 1.0);
        load + rec + self.prefill_time(suffix)
    }

    /// GPU-seconds of compute consumed by a blended prefill (for
    /// throughput accounting): one full layer plus `ratio` of the rest.
    pub fn blend_compute_time(&self, ratio: f64, l_tokens: usize, suffix: usize) -> f64 {
        let n = self.spec.n_layers as f64;
        self.prefill_layer_time(l_tokens) * (1.0 + ratio * (n - 1.0)) + self.prefill_time(suffix)
    }

    /// The ratio at which per-layer recompute exactly equals per-layer
    /// loading — recomputing more than this stops being free (Figure 10a).
    pub fn equal_delay_ratio(&self, l_tokens: usize, device: DeviceKind) -> f64 {
        (self.load_layer_time(l_tokens, device) / self.prefill_layer_time(l_tokens)).min(1.0)
    }

    /// $ to store the KV of `l_tokens` for `months` on `device`.
    pub fn storage_cost(&self, l_tokens: usize, months: f64, device: DeviceKind) -> f64 {
        device.storage_cost(self.total_kv_bytes(l_tokens) / 1e9, months)
    }

    /// Seconds per decoded token (memory-bandwidth bound: one pass over the
    /// weights). Used by the serving simulator.
    pub fn decode_time_per_token(&self) -> f64 {
        // 2 bytes/param over ~1 TB/s effective HBM bandwidth per GPU.
        let bytes = self.spec.params_b * 1e9 * self.spec.kv_elem_bytes as f64;
        bytes / (1.0e12 * self.spec.gpus as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_4k_matches_paper_anchors() {
        // §2: "three (or six) seconds for Llama-34B (or Llama-70B)".
        let yi = PerfModel::on_a40(PaperModel::Yi34B).prefill_time(4096);
        assert!((2.0..6.0).contains(&yi), "Yi-34B 4K prefill {yi}s");
        let ll = PerfModel::on_a40(PaperModel::Llama70B).prefill_time(4096);
        assert!((4.0..9.0).contains(&ll), "Llama-70B 4K prefill {ll}s");
        assert!(ll > yi, "70B must be slower than 34B");
    }

    #[test]
    fn llama7b_layer_load_matches_paper() {
        // §5: "loading one layer's KV cache takes 16 ms from an NVME SSD"
        // for Llama-7B at 4K (fp16 MHA: 64 MB/layer / 4.8 GB/s ≈ 13 ms).
        let m = PerfModel::on_a40(PaperModel::Llama7B);
        let t = m.load_layer_time(4096, DeviceKind::NvmeSsd);
        assert!((0.008..0.024).contains(&t), "layer load {t}s");
    }

    #[test]
    fn llama7b_recompute_is_hidden_by_nvme_load() {
        // §5: for Llama-7B, 15% recompute (≈3 ms) hides under the 16 ms
        // load: no extra delay from recomputation.
        let m = PerfModel::on_a40(PaperModel::Llama7B);
        let rec = m.recompute_layer_time(0.15, 4096);
        let load = m.load_layer_time(4096, DeviceKind::NvmeSsd);
        assert!(
            rec < load,
            "recompute {rec}s should hide under load {load}s"
        );
    }

    #[test]
    fn llama70b_recompute_exceeds_nvme_load() {
        // §5: for Llama-70B the 15% recompute (7 ms) is NOT hidden by the
        // 4 ms layer load — the crossover the controller must handle.
        let m = PerfModel::on_a40(PaperModel::Llama70B);
        let rec = m.recompute_layer_time(0.15, 4096);
        let load = m.load_layer_time(4096, DeviceKind::NvmeSsd);
        assert!(
            rec > load,
            "recompute {rec}s should exceed load {load}s for 70B"
        );
    }

    #[test]
    fn blend_beats_full_prefill_by_paper_factor() {
        // Figure 12's headline: 2.2–3.3× TTFT reduction. Check the model
        // lands in a compatible band (2–8×) across all three models on the
        // 3072-token, 6×512-chunk workload.
        for pm in PaperModel::evaluation_models() {
            let m = PerfModel::on_a40(pm);
            let full = m.ttft_full_prefill(3072 + 32);
            let blend = m.ttft_blend(0.15, 3072, 32, DeviceKind::NvmeSsd);
            let speedup = full / blend;
            assert!(
                (1.8..9.0).contains(&speedup),
                "{}: speedup {speedup:.2}",
                m.spec.name
            );
        }
    }

    #[test]
    fn pipelining_strictly_helps() {
        let m = PerfModel::on_a40(PaperModel::Mistral7B);
        for dev in DeviceKind::all() {
            let with = m.ttft_blend(0.15, 3072, 32, dev);
            let without = m.ttft_blend_unpipelined(0.15, 3072, 32, dev);
            assert!(with < without, "{dev:?}: {with} !< {without}");
        }
    }

    #[test]
    fn equal_delay_ratio_orders_by_device_speed() {
        let m = PerfModel::on_a40(PaperModel::Mistral7B);
        let slow = m.equal_delay_ratio(4096, DeviceKind::SlowSsd);
        let fast = m.equal_delay_ratio(4096, DeviceKind::CpuRam);
        assert!(
            slow > fast,
            "slower devices allow more recompute: {slow} vs {fast}"
        );
    }

    #[test]
    fn full_reuse_is_fastest_but_loads_everything() {
        let m = PerfModel::on_a40(PaperModel::Yi34B);
        let reuse = m.ttft_full_reuse(3072, 32, DeviceKind::NvmeSsd);
        let blend = m.ttft_blend(0.15, 3072, 32, DeviceKind::NvmeSsd);
        let full = m.ttft_full_prefill(3104);
        assert!(reuse <= blend && blend < full);
    }

    #[test]
    fn storage_cost_favors_slower_devices() {
        let m = PerfModel::on_a40(PaperModel::Mistral7B);
        let ram = m.storage_cost(4096, 1.0, DeviceKind::CpuRam);
        let ssd = m.storage_cost(4096, 1.0, DeviceKind::NvmeSsd);
        assert!(ram > ssd);
    }

    #[test]
    fn kv_bytes_match_architecture() {
        // Mistral-7B GQA fp16: 2 (K,V) × 1024 × 2 B = 4 KiB per token-layer.
        let m = PerfModel::on_a40(PaperModel::Mistral7B);
        assert_eq!(m.layer_kv_bytes(1), 4096.0);
    }

    #[test]
    fn decode_time_is_milliseconds() {
        let m = PerfModel::on_a40(PaperModel::Mistral7B);
        let t = m.decode_time_per_token();
        assert!((0.001..0.1).contains(&t));
    }
}
