//! Full KV recompute: the no-reuse baseline (and quality gold standard).

use cb_model::Model;
use cb_tokenizer::{TokenId, TokenKind};

/// Outcome of a full-recompute run.
#[derive(Clone, Debug)]
pub struct FullRecomputeOutcome {
    /// The generated answer tokens.
    pub answer: Vec<TokenId>,
    /// Tokens prefilled (context + query) — all of them, by definition.
    pub prefilled_tokens: usize,
}

/// Prefills `[BOS] ++ chunks ++ query` from scratch and decodes greedily.
pub fn run_full_recompute(
    model: &Model,
    chunks: &[Vec<TokenId>],
    query: &[TokenId],
    max_tokens: usize,
) -> FullRecomputeOutcome {
    let mut toks = vec![model.cfg.vocab.id(TokenKind::Bos)];
    for c in chunks {
        toks.extend_from_slice(c);
    }
    toks.extend_from_slice(query);
    let prefilled_tokens = toks.len();
    let answer = model.generate(&toks, max_tokens);
    FullRecomputeOutcome {
        answer,
        prefilled_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    #[test]
    fn answers_cross_chunk_query() {
        let m = Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11));
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)).to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let out = run_full_recompute(&m, &[c1, c2], &q, 4);
        assert_eq!(out.answer, vec![v.id(Value(9))]);
        assert_eq!(out.prefilled_tokens, 1 + 8 + 4);
    }
}
