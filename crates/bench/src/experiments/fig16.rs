//! Figure 16: the recompute-ratio sweep on Yi-34B.
//!
//! Paper shape: quality climbs steeply with the first ~10–18 % of
//! recompute and plateaus at the full-recompute level; TTFT grows linearly
//! with the ratio, so the paper's 15 % default sits at the knee.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_storage::device::DeviceKind;
use cb_storage::perf::PaperModel;

use crate::experiments::fig12::{CHUNK_TOKENS, K, SUFFIX};
use crate::harness::{scheme_ttft, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let exp = ExpModel::new(PaperModel::Yi34B, 11);
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let ds = Dataset::standard(kind, 7);
        let mut ev = QualityEval::new(&exp.model);
        let full = ev.eval(&ds, SchemeKind::FullRecompute, 0.0, K, 20);
        for ratio in [0.0f32, 0.02, 0.05, 0.10, 0.15, 0.18, 0.25, 0.50, 1.0] {
            let q = ev.eval(&ds, SchemeKind::CacheBlend, ratio, K, 20);
            let ttft = scheme_ttft(
                &exp.perf,
                SchemeKind::CacheBlend,
                K,
                CHUNK_TOKENS,
                SUFFIX,
                DeviceKind::NvmeSsd,
                ratio as f64,
            );
            rows.push(
                Row::new("fig16")
                    .col("dataset", kind.name())
                    .col("metric", kind.metric_name())
                    .num("ratio", ratio as f64)
                    .num("quality", q.mean_score)
                    .num("quality_loss_vs_full", full.mean_score - q.mean_score)
                    .num("ttft_s", ttft),
            );
        }
    }
    emit("fig16_ratio_sweep", &rows);
}
