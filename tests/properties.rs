//! Randomized property tests on cross-crate invariants.
//!
//! The offline build has no proptest, so these are seeded generate-and-check
//! loops over the same invariants: each property draws a few dozen random
//! inputs from a deterministic `SmallRng` stream and asserts the invariant
//! on every draw (failures print the generating seed/case).

use cacheblend::blend::rope_align;
use cacheblend::kv::chunk::hash_tokens;
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::kv::serialize::{decode, encode};
use cacheblend::kv::store::{KvStore, TierConfig};
use cacheblend::model::{Model, ModelConfig, ModelProfile};
use cacheblend::rag::metrics::{f1_score, rouge_l};
use cacheblend::tensor::rope::{rope_score, RopeTable};
use cacheblend::tokenizer::{TokenKind, Vocab};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tiny_model() -> Model {
    Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
}

/// A random short chunk over content tokens (1..12 tokens).
fn random_chunk(rng: &mut SmallRng) -> Vec<u32> {
    let v = Vocab::default_eval();
    let len = rng.random_range(1usize..12);
    (0..len)
        .map(|i| match rng.random_range(0u32..4) {
            0 => v.id(TokenKind::Entity((i % 16) as u32)),
            1 => v.id(TokenKind::Attr((i % 8) as u32)),
            2 => v.id(TokenKind::Value((i % 24) as u32)),
            _ => v.id(TokenKind::Filler((i % 10) as u32)),
        })
        .collect()
}

/// KV serialization is lossless for arbitrary chunks.
#[test]
fn serialization_roundtrips() {
    let m = tiny_model();
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for case in 0..16 {
        let chunk = random_chunk(&mut rng);
        let cache = precompute_chunk(&m, &chunk);
        let back = decode(encode(&cache)).unwrap();
        assert_eq!(back, cache, "case {case} chunk {chunk:?}");
    }
}

/// Relocation by Δ then −Δ is the identity (within f32 tolerance).
#[test]
fn relocation_is_invertible() {
    let m = tiny_model();
    let mut rng = SmallRng::seed_from_u64(0xB0B);
    for case in 0..16 {
        let chunk = random_chunk(&mut rng);
        let delta = rng.random_range(1usize..300);
        let orig = precompute_chunk(&m, &chunk);
        let mut moved = orig.clone();
        rope_align::relocate(&m, &mut moved, 1 + delta);
        rope_align::relocate(&m, &mut moved, 1);
        for l in 0..m.n_layers() {
            let d = moved.layers[l].k.frobenius_distance(&orig.layers[l].k);
            assert!(d < 1e-2, "case {case} layer {l} drifted by {d}");
        }
    }
}

/// RoPE attention scores depend only on relative offsets (Prop. A.1).
#[test]
fn rope_scores_are_translation_invariant() {
    let t = RopeTable::new(8, 1000.0);
    let q: Vec<f32> = (0..8).map(|i| ((i * 7 + 3) as f32 * 0.37).sin()).collect();
    let k: Vec<f32> = (0..8).map(|i| ((i * 5 + 1) as f32 * 0.53).cos()).collect();
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    for case in 0..64 {
        let base = rng.random_range(0usize..500);
        let shift = rng.random_range(0usize..500);
        let offset = rng.random_range(0usize..64);
        let s1 = rope_score(&t, &q, &k, base + offset, base);
        let s2 = rope_score(&t, &q, &k, base + shift + offset, base + shift);
        assert!((s1 - s2).abs() < 2e-2, "case {case}: {s1} vs {s2}");
    }
}

/// Chunk hashing is injective in practice over small perturbations.
#[test]
fn chunk_hash_detects_any_single_edit() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    for case in 0..64 {
        let chunk = random_chunk(&mut rng);
        let at = rng.random_range(0usize..chunk.len());
        let delta = rng.random_range(1u32..5);
        let mut other = chunk.clone();
        other[at] = other[at].wrapping_add(delta);
        assert_ne!(
            hash_tokens(&chunk),
            hash_tokens(&other),
            "case {case}: edit at {at} undetected in {chunk:?}"
        );
    }
}

/// Metrics are bounded in [0, 1] and exact on identity.
#[test]
fn metrics_are_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xE44);
    for _ in 0..64 {
        let draw = |rng: &mut SmallRng| -> Vec<u32> {
            let n = rng.random_range(0usize..10);
            (0..n).map(|_| rng.random_range(0u32..50)).collect()
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        for m in [f1_score(&a, &b), rouge_l(&a, &b)] {
            assert!((0.0..=1.0).contains(&m));
        }
        assert_eq!(f1_score(&a, &a), 1.0);
        assert_eq!(rouge_l(&b, &b), 1.0);
    }
}

/// The LRU store never exceeds capacity and keeps what it reports.
#[test]
fn store_respects_capacity() {
    let m = tiny_model();
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for _ in 0..8 {
        let n = rng.random_range(1usize..6);
        let caches: Vec<_> = (0..n)
            .map(|_| precompute_chunk(&m, &random_chunk(&mut rng)))
            .collect();
        let one = encode(&caches[0]).len() as u64;
        let cap = one * 2;
        let store = KvStore::new(vec![TierConfig::new("t", cap)]);
        for (i, c) in caches.iter().enumerate() {
            let _ = store.insert(cacheblend::kv::ChunkId(i as u64), c);
            assert!(store.tier_used(0) <= cap);
        }
    }
}

/// The selective-prefill identity: at ratio 1.0 the fused cache equals full
/// prefill for random chunk pairs.
#[test]
fn blend_identity_over_random_chunk_pairs() {
    use cacheblend::blend::fusor::{BlendConfig, Fusor};
    let m = tiny_model();
    let v = &m.cfg.vocab;
    for seed in 0..4u32 {
        let c1: Vec<u32> = (0..6)
            .map(|i| match (i + seed) % 3 {
                0 => v.id(TokenKind::Entity(seed + i)),
                1 => v.id(TokenKind::Attr(i)),
                _ => v.id(TokenKind::Value(seed * 7 + i)),
            })
            .collect();
        let c2: Vec<u32> = vec![
            v.id(TokenKind::Ref),
            v.id(TokenKind::Attr(7)),
            v.id(TokenKind::Value(40 + seed)),
            v.id(TokenKind::Sep),
        ];
        let q = vec![
            v.id(TokenKind::Query),
            v.id(TokenKind::Entity(3)),
            v.id(TokenKind::Attr(7)),
            v.id(TokenKind::QMark),
        ];
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let out = Fusor::new(&m, BlendConfig::with_ratio(1.0)).blend(parts, &q, false);

        let mut toks = vec![v.id(TokenKind::Bos)];
        toks.extend_from_slice(&c1);
        toks.extend_from_slice(&c2);
        toks.extend_from_slice(&q);
        let (full, _) = m.prefill(&toks);
        for l in 0..m.n_layers() {
            let d = out.cache.layers[l].k.frobenius_distance(&full.layers[l].k);
            assert!(d < 1e-2, "seed {seed} layer {l}: {d}");
        }
    }
}

/// Satellite: fuzz the serialize-v2 decoder. Seeded random byte mutations
/// over valid entries — flips, dims overwrites, truncations, extensions,
/// checksum rewrites, garbage prefixes — must never panic, never allocate
/// beyond the declared payload bound (huge mutated dims are rejected
/// against the buffer length *before* any allocation), and always surface
/// a decode error. 1 000 cases per seed.
#[test]
fn serialize_decoder_survives_mutation_fuzz() {
    use bytes::Bytes;
    use cacheblend::kv::serialize::{verify_entry, DIMS_LEN};
    let m = tiny_model();
    let mut gen_rng = SmallRng::seed_from_u64(0xFA22);
    let bases: Vec<Vec<u8>> = (0..3)
        .map(|_| encode(&precompute_chunk(&m, &random_chunk(&mut gen_rng))).to_vec())
        .collect();

    for seed in [0xF0_0001u64, 0xF0_0002, 0xF0_0003] {
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..1000 {
            let base = &bases[rng.random_range(0usize..bases.len())];
            let mut bytes = base.clone();
            match rng.random_range(0u32..6) {
                // Random distinct-byte flips anywhere in the entry.
                0 => {
                    let flips = rng.random_range(1usize..5);
                    let mut seen = std::collections::HashSet::new();
                    for _ in 0..flips {
                        let at = rng.random_range(0usize..bytes.len());
                        if seen.insert(at) {
                            bytes[at] ^= rng.random_range(1u32..256) as u8;
                        }
                    }
                }
                // Overwrite one dims field (n_layers/rows/width) with a
                // random u32 — the huge-allocation attack surface.
                1 => {
                    let field = 4 + 4 * rng.random_range(0usize..3);
                    let old = u32::from_le_bytes(bytes[field..field + 4].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u32..u32::MAX));
                    bytes[field..field + 4].copy_from_slice(&new.to_le_bytes());
                }
                // Truncation at a random point.
                2 => {
                    let keep = rng.random_range(0usize..bytes.len());
                    bytes.truncate(keep);
                }
                // Extension with random junk.
                3 => {
                    let extra = rng.random_range(1usize..64);
                    for _ in 0..extra {
                        bytes.push(rng.random_range(0u32..256) as u8);
                    }
                }
                // Rewrite a section checksum word (header or a layer).
                4 => {
                    let words: Vec<usize> = {
                        let meta = verify_entry(base).unwrap();
                        let hlen = cacheblend::kv::serialize::header_len(meta.rows);
                        let block = meta.layer_block_len();
                        std::iter::once(hlen - 8)
                            .chain((0..meta.n_layers).map(|l| hlen + (l + 1) * block - 8))
                            .collect()
                    };
                    let at = words[rng.random_range(0usize..words.len())];
                    let old = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u64..u64::MAX));
                    bytes[at..at + 8].copy_from_slice(&new.to_le_bytes());
                }
                // Random short garbage (below/around the dims prefix).
                _ => {
                    let len = rng.random_range(0usize..DIMS_LEN + 8);
                    bytes = (0..len)
                        .map(|_| rng.random_range(0u32..256) as u8)
                        .collect();
                }
            }
            if bytes == *base {
                continue; // mutation was a no-op (possible only for class 0)
            }
            assert!(
                decode(Bytes::from(bytes.clone())).is_err(),
                "seed {seed:#x} case {case}: mutated entry decoded successfully"
            );
            assert!(
                verify_entry(&bytes).is_err(),
                "seed {seed:#x} case {case}: mutated entry verified successfully"
            );
        }
    }

    // Adversarial dims: each field forced to u32::MAX in turn, with the
    // buffer unchanged — the decoder must reject on the trusted buffer
    // length before sizing any allocation from the lie.
    for field in [4usize, 8, 12] {
        let mut bytes = bases[0].clone();
        bytes[field..field + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(Bytes::from(bytes.clone())).is_err());
        assert!(verify_entry(&bytes).is_err());
    }
}

/// The store path of the same property: a mutated stored entry always
/// surfaces `StoreError::Corrupt`, is quarantined (evicted), and a
/// reinsert repairs it — across 100 seeded flip positions.
#[test]
fn store_loads_of_mutated_entries_always_quarantine() {
    use cacheblend::kv::store::StoreError;
    use cacheblend::kv::ChunkId;
    let m = tiny_model();
    let mut rng = SmallRng::seed_from_u64(0xC0_22);
    let cache = precompute_chunk(&m, &random_chunk(&mut rng));
    let entry_len = encode(&cache).len();
    for case in 0..100 {
        let store = KvStore::single("ram", 1 << 20);
        store.insert(ChunkId(7), &cache).unwrap();
        assert!(store.corrupt(ChunkId(7), rng.random_range(0usize..entry_len)));
        let err = store.get(ChunkId(7)).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt(_)),
            "case {case}: expected Corrupt, got {err}"
        );
        assert!(!store.contains(ChunkId(7)), "case {case}: must quarantine");
        assert_eq!(store.stats().corrupt_evictions, 1);
        store.insert(ChunkId(7), &cache).unwrap();
        assert_eq!(store.get(ChunkId(7)).unwrap().unwrap().0, cache);
    }
}

/// Satellite: seeded burst stress against `EngineService` at 1..=4
/// workers. Invariants at every observation point: counters are monotone,
/// `peak_queue_depth` never exceeds the queue capacity, accepted = terminal
/// after each drained burst, deadline misses are exactly the
/// zero-deadline completions, and neither lane starves (every stream of
/// both priorities reaches a terminal event).
#[test]
fn scheduler_stress_invariants_hold_across_worker_counts() {
    use cacheblend::prelude::*;
    use std::time::Duration;

    let capacity = 8usize;
    for workers in 1..=4usize {
        let (service, ids, q) = scheduler_fixture(workers, capacity);
        let mut rng = SmallRng::seed_from_u64(0x57_2E55 + workers as u64);
        let mut prev = ServiceStats::default();
        let mut total = 0u64;
        let mut want_misses = 0u64;
        for burst in 0..3 {
            let n = 10 + rng.random_range(0usize..8);
            let mut streams = Vec::new();
            for _ in 0..n {
                let priority = if rng.random_range(0u32..3) == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                let zero_deadline = rng.random_range(0u32..4) == 0;
                let mut req = Request::new(ids.clone(), q.clone())
                    .ratio(0.45)
                    .max_new_tokens(1 + rng.random_range(0usize..3))
                    .priority(priority);
                if zero_deadline {
                    req = req.deadline(Duration::ZERO);
                    want_misses += 1;
                } else if rng.random_range(0u32..2) == 0 {
                    req = req.deadline(Duration::from_secs(3600));
                }
                streams.push(service.submit_stream(req));
            }
            total += n as u64;
            for s in streams {
                s.collect()
                    .expect("every accepted request completes — no lane starves");
            }
            let st = service.stats();
            for (now, before, name) in [
                (st.submitted, prev.submitted, "submitted"),
                (st.completed, prev.completed, "completed"),
                (st.deadline_misses, prev.deadline_misses, "deadline_misses"),
                (
                    st.peak_queue_depth,
                    prev.peak_queue_depth,
                    "peak_queue_depth",
                ),
            ] {
                assert!(
                    now >= before,
                    "workers {workers} burst {burst}: {name} went backwards ({before} → {now})"
                );
            }
            assert!(
                st.peak_queue_depth <= capacity as u64,
                "workers {workers} burst {burst}: peak queue {} exceeds capacity {capacity}",
                st.peak_queue_depth
            );
            assert_eq!(st.submitted, total, "blocking submits are all accepted");
            assert_eq!(
                st.completed + st.failed,
                total,
                "drained burst leaves nothing in flight"
            );
            assert_eq!(st.failed, 0);
            assert_eq!(st.rejected, 0, "blocking submits never get QueueFull");
            prev = st;
        }
        assert_eq!(
            service.stats().deadline_misses,
            want_misses,
            "workers {workers}: an immediate deadline is always missed, a generous one never"
        );
        assert_eq!(service.probe().load(), 0, "stress drained completely");
    }
}

/// Shared harness for the scheduler properties: a tiny engine wrapped in a
/// service, plus the registered cross-chunk scenario.
fn scheduler_fixture(
    workers: usize,
    capacity: usize,
) -> (
    cacheblend::scheduler::EngineService,
    Vec<cacheblend::kv::ChunkId>,
    Vec<u32>,
) {
    use cacheblend::prelude::*;
    let engine = EngineBuilder::new(ModelProfile::Tiny).build().unwrap();
    let v = engine.model().cfg.vocab.clone();
    let c1: Vec<u32> = vec![
        v.id(TokenKind::Entity(5)),
        v.id(TokenKind::Attr(0)),
        v.id(TokenKind::Value(1)),
        v.id(TokenKind::Sep),
    ];
    let c2: Vec<u32> = vec![
        v.id(TokenKind::Ref),
        v.id(TokenKind::Attr(3)),
        v.id(TokenKind::Value(9)),
        v.id(TokenKind::Sep),
    ];
    let ids = engine.register_chunks(&[c1, c2]).unwrap();
    let q = vec![
        v.id(TokenKind::Query),
        v.id(TokenKind::Entity(5)),
        v.id(TokenKind::Attr(3)),
        v.id(TokenKind::QMark),
    ];
    let service = cacheblend::scheduler::EngineService::new(
        engine,
        cacheblend::scheduler::ServiceConfig::default()
            .workers(workers)
            .queue_capacity(capacity),
    );
    (service, ids, q)
}

/// Every stream's events arrive in lifecycle order:
/// `Queued ≤ Admitted ≤ FirstToken ≤ Token* ≤ Done`, with exactly one
/// terminal event — across a randomized mix of priorities, decode budgets,
/// and failing requests, and no stream starves (all terminate).
#[test]
fn scheduler_streams_events_in_lifecycle_order() {
    use cacheblend::prelude::*;
    use cacheblend::scheduler::EngineService;

    fn check_stream(events: &[Event]) {
        assert!(events.len() >= 3, "Queued, Admitted, terminal: {events:?}");
        assert!(matches!(events[0], Event::Queued));
        assert!(matches!(events[1], Event::Admitted));
        let terminal = events.len() - 1;
        assert!(events[terminal].is_terminal(), "{events:?}");
        assert_eq!(
            events.iter().filter(|e| e.is_terminal()).count(),
            1,
            "exactly one terminal event"
        );
        let first_token = events
            .iter()
            .position(|e| matches!(e, Event::FirstToken(_)));
        match &events[terminal] {
            Event::Done(resp) => {
                let ft = first_token.expect("Done implies FirstToken");
                assert!((2..terminal).contains(&ft), "{events:?}");
                let tokens: Vec<u32> = events
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| match e {
                        Event::Token(t) => {
                            assert!(i > ft && i < terminal, "Token outside window");
                            Some(*t)
                        }
                        _ => None,
                    })
                    .collect();
                assert_eq!(tokens, resp.answer, "streamed tokens = answer");
            }
            Event::Failed(_) => {
                assert!(first_token.is_none(), "failures precede prefill completion");
            }
            _ => unreachable!(),
        }
    }

    let mut rng = SmallRng::seed_from_u64(0x5EED_5EED);
    for round in 0..3 {
        let workers = 1 + (round % 3);
        let (service, ids, q) = scheduler_fixture(workers, 64);
        let service: &EngineService = &service;
        let n = 14;
        let streams: Vec<_> = (0..n)
            .map(|_| {
                let bad = rng.random_range(0u32..5) == 0;
                let chunk_ids = if bad {
                    vec![cacheblend::kv::ChunkId(0xDEAD)]
                } else {
                    ids.clone()
                };
                let pri = if rng.random_range(0u32..2) == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                let req = Request::new(chunk_ids, q.clone())
                    .ratio(0.45)
                    .max_new_tokens(rng.random_range(1usize..5))
                    .priority(pri);
                service.submit_stream(req)
            })
            .collect();
        let mut done = 0u64;
        let mut failed = 0u64;
        for stream in streams {
            let mut events: Vec<Event> = Vec::new();
            for e in stream {
                events.push(e);
            }
            check_stream(&events);
            match events.last().unwrap() {
                Event::Done(_) => done += 1,
                Event::Failed(e) => {
                    assert_eq!(
                        *e,
                        EngineError::UnknownChunk(cacheblend::kv::ChunkId(0xDEAD))
                    );
                    failed += 1;
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(done + failed, n, "round {round}: no stream may starve");
        let stats = service.stats();
        assert_eq!(stats.completed, done);
        assert_eq!(stats.failed, failed);
        assert_eq!(stats.submitted, n);
    }
}

/// A priority-lane flood never starves the normal lane: every normal
/// request completes even while high-priority work saturates the queue.
#[test]
fn scheduler_never_starves_the_normal_lane() {
    use cacheblend::prelude::*;
    let (service, ids, q) = scheduler_fixture(1, 64);
    let mk = |p: Priority| {
        Request::new(ids.clone(), q.clone())
            .ratio(0.45)
            .max_new_tokens(2)
            .priority(p)
    };
    // One worker, interleaved flood: 24 high, 6 normal.
    let streams: Vec<_> = (0..30)
        .map(|i| {
            let p = if i % 5 == 4 {
                Priority::Normal
            } else {
                Priority::High
            };
            service.submit_stream(mk(p))
        })
        .collect();
    for s in streams {
        s.collect().expect("every lane's requests complete");
    }
    assert_eq!(service.stats().completed, 30);
    assert_eq!(service.stats().deadline_misses, 0);
}

/// Backpressure: a paused service (no workers) fills its bounded queue
/// deterministically, hands overflow back via `QueueFull`, and cancels
/// what it accepted when dropped.
#[test]
fn scheduler_backpressure_returns_queue_full() {
    use cacheblend::prelude::*;
    let mut rng = SmallRng::seed_from_u64(0xBAC_0FF);
    for _ in 0..4 {
        let capacity = rng.random_range(1usize..6);
        let (service, ids, q) = scheduler_fixture(0, capacity);
        let mk = || Request::new(ids.clone(), q.clone());
        let mut accepted = Vec::new();
        for _ in 0..capacity {
            accepted.push(service.try_submit_stream(mk()).expect("fits in queue"));
        }
        match service.try_submit_stream(mk()) {
            Err(TrySubmitError::QueueFull(returned)) => {
                assert_eq!(returned.chunk_ids, ids, "request handed back intact");
            }
            Ok(_) => panic!("queue of {capacity} accepted {} requests", capacity + 1),
        }
        assert_eq!(service.queue_depth(), capacity);
        assert_eq!(service.stats().rejected, 1);
        assert_eq!(service.stats().peak_queue_depth, capacity as u64);
        drop(service);
        for s in accepted {
            assert_eq!(s.collect().unwrap_err(), EngineError::Canceled);
        }
    }
}

/// `submit_stream(..).collect()` is the one-shot `Engine::submit`: same
/// answer, ratio, provenance, and blend shape for the same request.
#[test]
fn scheduler_collect_equals_one_shot_submit() {
    use cacheblend::prelude::*;
    let (service, ids, q) = scheduler_fixture(2, 16);
    let mut rng = SmallRng::seed_from_u64(0xC0_11EC);
    for case in 0..6 {
        let req = Request::new(ids.clone(), q.clone())
            .ratio(0.25 + 0.15 * rng.random_range(0u32..4) as f32)
            .max_new_tokens(rng.random_range(1usize..6));
        let direct = service.engine().submit(req.clone()).unwrap();
        let streamed = service.submit_stream(req).collect().unwrap();
        assert_eq!(streamed.answer, direct.answer, "case {case}");
        assert_eq!(streamed.recompute_ratio, direct.recompute_ratio);
        assert_eq!(streamed.chunk_sources, direct.chunk_sources);
        assert_eq!(streamed.blend.stats.ctx_len, direct.blend.stats.ctx_len);
    }
}

/// Tiered-store invariants under random insert/get/remove sequences, at
/// 1..=4 compute-pool threads (precompute parallelism and the disk tier's
/// flusher both run concurrently with the driver): tier occupancy never
/// exceeds the configured capacities, and the hit/miss/insert counters are
/// exactly predicted by a model of the present set. The disk tier is sized
/// so nothing is ever evicted outright — spills move entries, so presence
/// is fully deterministic even though placement is not.
#[test]
fn tiered_store_occupancy_and_counters_are_consistent() {
    use cacheblend::kv::ChunkId;
    use cacheblend::storage::{DiskBackend, MemBackend, StorageBackend};
    use std::collections::HashSet;
    use std::sync::Arc;

    let m = tiny_model();
    for threads in 1..=4usize {
        cacheblend::tensor::pool::set_threads(threads);
        let mut rng = SmallRng::seed_from_u64(0x57_0E + threads as u64);

        // A universe of 6 entries with known serialized sizes.
        let caches: Vec<_> = (0..6)
            .map(|_| precompute_chunk(&m, &random_chunk(&mut rng)))
            .collect();
        let sizes: Vec<u64> = caches.iter().map(|c| encode(c).len() as u64).collect();
        let max = *sizes.iter().max().unwrap();
        let ram_cap = 2 * max;
        let disk_cap = 8 * max; // all six fit: no outright evictions

        let dir =
            std::env::temp_dir().join(format!("cb-prop-store-{}-{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = KvStore::with_backends(vec![
            (
                TierConfig::new("ram", ram_cap),
                Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
            ),
            (
                TierConfig::new("disk", disk_cap),
                Arc::new(DiskBackend::new(&dir, None).unwrap()),
            ),
        ]);

        let mut present: HashSet<u64> = HashSet::new();
        let (mut want_hits, mut want_misses, mut want_inserts) = (0u64, 0u64, 0u64);
        for step in 0..120 {
            let id = rng.random_range(0u64..6);
            match rng.random_range(0u32..10) {
                0..=3 => {
                    if present.insert(id) {
                        want_inserts += 1;
                    }
                    store
                        .insert(ChunkId(id), &caches[id as usize])
                        .expect("universe fits the disk tier");
                }
                4..=7 => {
                    let got = store.get(ChunkId(id)).expect("no corruption injected");
                    if present.contains(&id) {
                        want_hits += 1;
                        let (cache, _) = got.expect("present entry must hit");
                        assert_eq!(cache, caches[id as usize], "step {step}: payload intact");
                    } else {
                        want_misses += 1;
                        assert!(got.is_none(), "step {step}: absent entry must miss");
                    }
                }
                _ => {
                    let was = store.remove(ChunkId(id));
                    assert_eq!(was, present.remove(&id), "step {step}: remove agreement");
                }
            }
            assert!(
                store.tier_used(0) <= ram_cap,
                "step {step}: RAM over capacity"
            );
            assert!(
                store.tier_used(1) <= disk_cap,
                "step {step}: disk over capacity"
            );
            let expect_used: u64 = present.iter().map(|&i| sizes[i as usize]).sum();
            assert_eq!(store.used_bytes(), expect_used, "step {step}: used bytes");
            assert_eq!(store.len(), present.len(), "step {step}: entry count");
        }
        let stats = store.stats();
        assert_eq!(stats.hits, want_hits, "threads {threads}: hits");
        assert_eq!(stats.misses, want_misses, "threads {threads}: misses");
        assert_eq!(stats.inserts, want_inserts, "threads {threads}: inserts");
        assert_eq!(stats.evictions, 0, "disk tier holds the full universe");
        assert_eq!(
            stats.spills == 0,
            stats.spilled_bytes == 0,
            "spill count and spilled bytes must agree"
        );
        store.flush().expect("flusher healthy");
        let _ = std::fs::remove_dir_all(&dir);
    }
    cacheblend::tensor::pool::set_threads(cacheblend::tensor::pool::default_threads());
}

/// Int8 cold-tier quantization round-trips within the symmetric-int8
/// bound: each element of `dequantize(quantize(x))` sits within
/// `row_max_abs / 254` of the original (scale = row max / 127, rounding
/// error ≤ scale/2), for random chunk caches.
#[test]
fn quantization_roundtrip_error_is_bounded_per_row() {
    use cacheblend::kv::quantize::{dequantize_entry, quantize_entry, MAX_RELATIVE_ERROR};

    let m = tiny_model();
    let mut rng = SmallRng::seed_from_u64(0x1_A78);
    for case in 0..12 {
        let cache = precompute_chunk(&m, &random_chunk(&mut rng));
        let wire = encode(&cache);
        let q = quantize_entry(&wire).unwrap();
        let back = decode(dequantize_entry(&q).unwrap()).unwrap();
        assert!(q.len() < wire.len() / 3, "case {case}: not ~4x smaller");
        for (l, (orig, got)) in cache.layers.iter().zip(&back.layers).enumerate() {
            for (a, b) in [(&orig.k, &got.k), (&orig.v, &got.v)] {
                for r in 0..a.rows() {
                    let row_max = a.row(r).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                    let bound = row_max * MAX_RELATIVE_ERROR * 1.001 + 1e-6;
                    for (c, (&x, &y)) in a.row(r).iter().zip(b.row(r)).enumerate() {
                        assert!(
                            (x - y).abs() <= bound,
                            "case {case} layer {l} row {r} col {c}: \
                             |{x} - {y}| > {bound}"
                        );
                    }
                }
            }
        }
    }
}

/// Three-tier store (RAM → f32 disk → int8 cold) invariants under random
/// insert/get/remove sequences at 1..=4 compute-pool threads: occupancy
/// never exceeds any tier's capacity, presence stays deterministic, every
/// read returns the entry within one quantization of the original (loss is
/// applied once, at the cold boundary, and never accumulates across
/// demote→quantize→promote cycles), and the quantization counters obey
/// their accounting identities.
#[test]
fn quantized_cold_tier_cycles_preserve_payload_and_stats() {
    use cacheblend::kv::ChunkId;
    use cacheblend::storage::{DiskBackend, MemBackend, SegmentLogBackend, StorageBackend};
    use std::collections::HashSet;
    use std::sync::Arc;

    let m = tiny_model();
    for threads in 1..=4usize {
        cacheblend::tensor::pool::set_threads(threads);
        let mut rng = SmallRng::seed_from_u64(0xC0_1D + threads as u64);

        let caches: Vec<_> = (0..6)
            .map(|_| precompute_chunk(&m, &random_chunk(&mut rng)))
            .collect();
        let sizes: Vec<u64> = caches.iter().map(|c| encode(c).len() as u64).collect();
        let max = *sizes.iter().max().unwrap();
        // RAM and disk each hold about one entry; the cold tier holds the
        // universe, so with several entries present some are always
        // int8-resident and gets keep cycling them through the formats.
        let (ram_cap, disk_cap, cold_cap) = (max, max, 64 * max);

        let root =
            std::env::temp_dir().join(format!("cb-prop-quant-{}-{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = KvStore::with_backends(vec![
            (
                TierConfig::new("ram", ram_cap),
                Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
            ),
            (
                TierConfig::new("disk", disk_cap),
                Arc::new(DiskBackend::new(root.join("warm"), None).unwrap()),
            ),
            (
                TierConfig::quantized("cold", cold_cap),
                Arc::new(SegmentLogBackend::new(root.join("cold"), None).unwrap()),
            ),
        ]);

        // |x - deq(q(x))| ≤ row_max/254 per element, so per matrix the
        // Frobenius distance is ≤ max_abs·√n/254; 2× covers a rounding
        // tie at the first quantization.
        let close = |a: &cacheblend::tensor::Matrix, b: &cacheblend::tensor::Matrix| {
            let max_abs = a.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let n = (a.rows() * a.cols()) as f32;
            a.frobenius_distance(b) <= 2.0 * max_abs * n.sqrt() / 254.0 + 1e-4
        };

        let mut present: HashSet<u64> = HashSet::new();
        let (mut want_hits, mut want_misses) = (0u64, 0u64);
        for step in 0..120 {
            let id = rng.random_range(0u64..6);
            match rng.random_range(0u32..10) {
                0..=3 => {
                    present.insert(id);
                    store
                        .insert(ChunkId(id), &caches[id as usize])
                        .expect("universe fits the cold tier");
                }
                4..=7 => {
                    let got = store.get(ChunkId(id)).expect("no corruption injected");
                    if present.contains(&id) {
                        want_hits += 1;
                        let (cache, _) = got.expect("present entry must hit");
                        let orig = &caches[id as usize];
                        assert_eq!(cache.positions, orig.positions, "step {step}");
                        assert_eq!(cache.tokens, orig.tokens, "step {step}");
                        for (l, (a, b)) in orig.layers.iter().zip(&cache.layers).enumerate() {
                            assert!(
                                close(&a.k, &b.k) && close(&a.v, &b.v),
                                "step {step} id {id} layer {l}: drift beyond one \
                                 quantization"
                            );
                        }
                    } else {
                        want_misses += 1;
                        assert!(got.is_none(), "step {step}: absent entry must miss");
                    }
                }
                _ => {
                    let was = store.remove(ChunkId(id));
                    assert_eq!(was, present.remove(&id), "step {step}: remove agreement");
                }
            }
            for (t, cap) in [(0, ram_cap), (1, disk_cap), (2, cold_cap)] {
                assert!(
                    store.tier_used(t) <= cap,
                    "step {step}: tier {t} over capacity"
                );
            }
            assert_eq!(store.len(), present.len(), "step {step}: entry count");
            let f32_total: u64 = present.iter().map(|&i| sizes[i as usize]).sum();
            assert!(
                store.used_bytes() <= f32_total,
                "step {step}: quantized residency must never grow the footprint"
            );
        }

        let stats = store.stats();
        assert_eq!(stats.hits, want_hits, "threads {threads}: hits");
        assert_eq!(stats.misses, want_misses, "threads {threads}: misses");
        assert!(
            stats.quantizations > 0,
            "threads {threads}: cold tier was never exercised"
        );
        assert!(
            stats.dequantizations <= stats.quantizations,
            "threads {threads}: every dequantize follows a quantize"
        );
        assert!(
            stats.quantize_saved_bytes > 0,
            "threads {threads}: quantization must shrink bytes"
        );
        assert_eq!(stats.evictions, 0, "cold tier holds the full universe");
        store.flush().expect("flusher healthy");
        let _ = std::fs::remove_dir_all(&root);
    }
    cacheblend::tensor::pool::set_threads(cacheblend::tensor::pool::default_threads());
}

// ---------------------------------------------------------------------------
// Observability: histogram algebra and trace ordering
// ---------------------------------------------------------------------------

use cacheblend::blend::engine::{EngineBuilder, Request as EngineRequest};
use cacheblend::blend::scheduler::ServiceConfig;
use cacheblend::blend::stream::Event;
use cacheblend::obs::metrics::{HistSnapshot, Registry};
use cacheblend::obs::trace::{SpanRecord, Tracer};
use cacheblend::serving::cluster::ClusterService;

/// Draws a value spanning many decades, so bucket indices cover the
/// exact range, several power-of-two ranges, and large magnitudes.
fn random_hist_value(rng: &mut SmallRng) -> u64 {
    let exp = rng.random_range(0u32..48);
    let lo = 1u64 << exp;
    rng.random_range(lo..lo.saturating_mul(2))
}

/// Histogram merge is associative and commutative, and totals add
/// exactly — the invariant the gateway's cluster scrape relies on.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    let mut rng = SmallRng::seed_from_u64(0x0B5_0B5);
    let reg = Registry::new();
    for case in 0..24 {
        let snaps: Vec<HistSnapshot> = (0..3)
            .map(|j| {
                let h = reg.histogram(&format!("merge_{case}_{j}"));
                for _ in 0..rng.random_range(0usize..200) {
                    h.record(random_hist_value(&mut rng));
                }
                h.snapshot()
            })
            .collect();
        let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);

        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "case {case}: (a⊕b)⊕c != a⊕(b⊕c)");

        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(ab, ba, "case {case}: a⊕b != b⊕a");

        assert_eq!(
            left.count,
            a.count + b.count + c.count,
            "case {case}: count"
        );
        assert_eq!(left.sum, a.sum + b.sum + c.sum, "case {case}: sum");
        let bucket_total: u64 = left.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, left.count, "case {case}: bucket totals");
    }
}

/// Every recorded value lands in a bucket whose upper bound overshoots
/// by at most the configured γ = 2^-sub_bits (exact below 2^sub_bits).
#[test]
fn histogram_bucket_bound_error_is_within_gamma() {
    let mut rng = SmallRng::seed_from_u64(0x6A77A);
    for sub_bits in [2u32, 5, 8] {
        let reg = Registry::new();
        let gamma = 1.0 / (1u64 << sub_bits) as f64;
        for case in 0..200 {
            let v = if case % 4 == 0 {
                // Force the exact range (values below 2^sub_bits).
                rng.random_range(0u64..1 << sub_bits)
            } else {
                random_hist_value(&mut rng)
            };
            let h = reg.histogram_with_sub_bits(&format!("g_{sub_bits}_{case}"), sub_bits);
            assert!((h.gamma() - gamma).abs() < 1e-12);
            h.record(v);
            let got = h.quantile(1.0);
            assert!(
                got >= v,
                "sub_bits {sub_bits} case {case}: bound {got} < recorded {v}"
            );
            let err = (got - v) as f64;
            let budget = gamma * v as f64;
            assert!(
                err <= budget + 1e-9,
                "sub_bits {sub_bits} case {case}: v={v} bound={got} err={err} > γ·v={budget}"
            );
            if v < 1 << sub_bits {
                assert_eq!(
                    got, v,
                    "sub_bits {sub_bits} case {case}: small values are exact"
                );
            }
        }
    }
}

/// Quantiles are monotone in q, pinned to the recorded extremes.
#[test]
fn histogram_percentiles_are_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x9070);
    let reg = Registry::new();
    for case in 0..16 {
        let h = reg.histogram(&format!("mono_{case}"));
        let n = rng.random_range(1usize..400);
        let mut max_v = 0u64;
        for _ in 0..n {
            let v = random_hist_value(&mut rng);
            max_v = max_v.max(v);
            h.record(v);
        }
        let snap = h.snapshot();
        let mut prev = 0u64;
        for step in 0..=1000u32 {
            let q = snap.quantile(step as f64 / 1000.0);
            assert!(
                q >= prev,
                "case {case}: quantile({}) = {q} < quantile at previous step {prev}",
                step as f64 / 1000.0
            );
            prev = q;
        }
        assert!(snap.quantile(1.0) >= max_v, "case {case}: max not covered");
    }
}

/// Concurrent recording from 1..=4 threads loses nothing: count, sum,
/// and bucket totals are all exact.
#[test]
fn histogram_concurrent_recording_is_exact() {
    const PER_THREAD: u64 = 20_000;
    for threads in 1u64..=4 {
        let reg = Registry::new();
        let h = reg.histogram("concurrent");
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * 1_000_003 + i % 1_000);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * PER_THREAD, "threads {threads}: count");
        let expected_sum: u64 = (0..threads)
            .map(|t| {
                (0..PER_THREAD)
                    .map(|i| t * 1_000_003 + i % 1_000)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(snap.sum, expected_sum, "threads {threads}: sum");
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, snap.count, "threads {threads}: bucket totals");
    }
}

/// A mid-stream retry appears on the timeline as a *new* `retry#k` span
/// under the request root — a sibling starting where the failed attempt
/// closed, never a rewind — and span starts stay monotone down every
/// parent chain.
#[test]
fn cluster_retry_spans_stay_well_nested_and_monotone() {
    const TRACE_BASE: u64 = 0x7E57_7ACE_0000;
    const WAVE: usize = 8;
    Tracer::global().set_capacity(1 << 16);

    let mut cluster = ClusterService::build(
        2,
        ServiceConfig::default().workers(1).queue_capacity(64),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .expect("cluster builds");
    let vocab = cluster.replica(0).engine().model().cfg.vocab.clone();
    let chunk = vec![
        vocab.id(TokenKind::Entity(3)),
        vocab.id(TokenKind::Attr(1)),
        vocab.id(TokenKind::Value(7)),
        vocab.id(TokenKind::Sep),
    ];
    let id = cluster
        .register_chunk_lazy(&chunk)
        .expect("chunk registers");
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(3)),
        vocab.id(TokenKind::Attr(1)),
        vocab.id(TokenKind::QMark),
    ];

    // Waves of 8 concurrent streams, alternating replicas; replica 0's
    // connection is severed right after a wave is submitted, so its
    // in-flight requests are retried on replica 1 (fig14's chaos
    // schedule, shrunk). Under a loaded test host a wave can drain
    // before the bounce lands, so keep bouncing until a retry actually
    // happened — the spans, not the schedule, are what this test pins.
    let mut traced = Vec::new();
    for wave_idx in 0..12 {
        let collectors: Vec<_> = (0..WAVE)
            .map(|i| {
                let k = (wave_idx * WAVE + i) as u64;
                traced.push(TRACE_BASE + k);
                let stream = cluster.submit_to(
                    i % 2,
                    EngineRequest::new(vec![id], query.clone())
                        .max_new_tokens(24)
                        .trace(TRACE_BASE + k, 0),
                );
                std::thread::spawn(move || {
                    let mut ok = false;
                    for ev in stream {
                        if matches!(ev, Event::Done(_)) {
                            ok = true;
                        }
                    }
                    ok
                })
            })
            .collect();
        let bounced = cluster.stats().retries == 0;
        if bounced {
            cluster.bounce_replica(0);
        }
        for c in collectors {
            assert!(c.join().expect("collector thread"), "request failed");
        }
        if !bounced && cluster.stats().retries >= 1 {
            break; // One clean post-retry wave served; enough material.
        }
    }
    assert!(
        cluster.stats().retries >= 1,
        "no bounce stranded an in-flight request in 12 waves"
    );

    let spans = Tracer::global().snapshot();
    let mut retried_traces = 0usize;
    for &trace in &traced {
        let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
        let roots: Vec<&&SpanRecord> = mine.iter().filter(|s| s.name == "request").collect();
        assert_eq!(roots.len(), 1, "trace {trace:#x}: exactly one root span");
        let root = roots[0];
        assert_eq!(root.parent, 0, "trace {trace:#x}: root has no parent");

        // Attempts: direct children of the root named serve#k / retry#k.
        let mut attempts: Vec<&&SpanRecord> = mine
            .iter()
            .filter(|s| s.parent == root.span && s.span != root.span)
            .collect();
        attempts.sort_by_key(|s| s.start_ns);
        assert!(!attempts.is_empty(), "trace {trace:#x}: no attempt spans");
        assert_eq!(
            attempts[0].name, "serve#0",
            "trace {trace:#x}: first attempt must be serve#0"
        );
        for pair in attempts.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            assert!(
                next.name.starts_with("retry#"),
                "trace {trace:#x}: later attempt {} is not a retry span",
                next.name
            );
            assert!(
                next.start_ns >= prev.end_ns,
                "trace {trace:#x}: attempt {} rewinds before {} closed",
                next.name,
                prev.name
            );
        }
        if attempts.len() > 1 {
            retried_traces += 1;
        }
        let last = attempts.last().unwrap();
        assert!(
            root.end_ns >= last.end_ns,
            "trace {trace:#x}: root closes before its final attempt"
        );

        // Monotone starts down every parent chain (an orphaned attempt's
        // worker spans may *end* after the gateway closed the attempt —
        // the stream kept decoding to a dead connection — but no span
        // ever starts before its parent did).
        let by_id: std::collections::HashMap<u64, &&SpanRecord> =
            mine.iter().map(|s| (s.span, s)).collect();
        for s in &mine {
            if let Some(parent) = by_id.get(&s.parent) {
                assert!(
                    s.start_ns >= parent.start_ns,
                    "trace {trace:#x}: span {} starts before its parent {}",
                    s.name,
                    parent.name
                );
            }
        }
        // The winning (final) attempt is fully contained in the root.
        assert!(
            last.start_ns >= root.start_ns && last.end_ns <= root.end_ns,
            "trace {trace:#x}: final attempt escapes the root interval"
        );
    }
    assert!(
        retried_traces >= 1,
        "no trace recorded a retry attempt span despite {} gateway retries",
        cluster.stats().retries
    );
}

/// A random single-chunk recall prompt: `Bos`, a few facts, then a query
/// naming one of them. Decoding answers with `Value` tokens, so budgets
/// and stop conditions are both exercised.
fn recall_prompt(rng: &mut SmallRng, v: &Vocab) -> Vec<u32> {
    let n_facts = rng.random_range(1usize..4);
    let mut toks = vec![v.id(TokenKind::Bos)];
    let mut facts = Vec::new();
    for _ in 0..n_facts {
        let (e, a, val) = (
            rng.random_range(0u32..8),
            rng.random_range(0u32..4),
            rng.random_range(0u32..10),
        );
        facts.push((e, a));
        toks.extend([
            v.id(TokenKind::Entity(e)),
            v.id(TokenKind::Attr(a)),
            v.id(TokenKind::Value(val)),
            v.id(TokenKind::Sep),
        ]);
    }
    let (e, a) = facts[rng.random_range(0..facts.len())];
    toks.extend([
        v.id(TokenKind::Query),
        v.id(TokenKind::Entity(e)),
        v.id(TokenKind::Attr(a)),
        v.id(TokenKind::QMark),
    ]);
    toks
}

/// Continuous batched decode is bit-identical to the sequential decode
/// loop under every combination of pool thread count (1..=4), occupancy
/// cap (1/2/8), and a randomized mid-flight admission schedule: every
/// sequence's emitted tokens and final KV cache must equal the ones from
/// an isolated sequential decode, byte for byte.
#[test]
fn batched_decode_matches_sequential_bit_for_bit() {
    use cacheblend::model::{DecodeBatch, KvCache};
    use cacheblend::tensor::pool;
    use std::collections::HashMap;

    let m = tiny_model();
    let v = m.cfg.vocab.clone();
    let mut rng = SmallRng::seed_from_u64(0xBA7C4);
    let n_seqs = 10;
    let cases: Vec<(Vec<u32>, usize)> = (0..n_seqs)
        .map(|_| (recall_prompt(&mut rng, &v), rng.random_range(0usize..=6)))
        .collect();

    // Sequential references: each sequence prefilled and decoded alone.
    pool::set_threads(1);
    let reference: Vec<(Vec<u32>, KvCache)> = cases
        .iter()
        .map(|(prompt, budget)| {
            let (mut cache, x) = m.prefill(prompt);
            let resid = x.row(x.rows() - 1).to_vec();
            let out = m.decode_greedy(&mut cache, &resid, *budget);
            (out, cache)
        })
        .collect();

    for threads in 1..=4usize {
        for cap in [1usize, 2, 8] {
            pool::set_threads(threads);
            let mut schedule =
                SmallRng::seed_from_u64(0x5EED ^ ((threads as u64) << 8) ^ cap as u64);
            let mut batch = DecodeBatch::new();
            let mut case_of = HashMap::new();
            let mut tokens_seen: Vec<Vec<u32>> = vec![Vec::new(); n_seqs];
            let mut final_cache: Vec<Option<KvCache>> = (0..n_seqs).map(|_| None).collect();
            let mut next_case = 0usize;
            while next_case < n_seqs || !batch.is_empty() {
                // Random admissions up to the cap; guaranteed progress
                // when the batch is idle.
                let mut admitted = 0usize;
                while next_case < n_seqs
                    && batch.len() < cap
                    && ((batch.is_empty() && admitted == 0) || schedule.random_range(0u32..2) == 0)
                {
                    let (prompt, budget) = &cases[next_case];
                    let (cache, x) = m.prefill(prompt);
                    let resid = x.row(x.rows() - 1).to_vec();
                    let sid = batch.admit(&m, cache, &resid, *budget);
                    case_of.insert(sid, next_case);
                    next_case += 1;
                    admitted += 1;
                }
                let retired = batch.step(&m, &mut |sid, tok| {
                    tokens_seen[case_of[&sid]].push(tok);
                });
                for (sid, fin) in retired {
                    let case = case_of[&sid];
                    assert_eq!(tokens_seen[case], fin.tokens, "stream vs retired tokens");
                    assert!(
                        final_cache[case].replace(fin.cache).is_none(),
                        "sequence retired twice"
                    );
                }
            }
            for (case, (want_tokens, want_cache)) in reference.iter().enumerate() {
                assert_eq!(
                    &tokens_seen[case], want_tokens,
                    "tokens diverge: threads {threads} cap {cap} case {case}"
                );
                assert_eq!(
                    final_cache[case].as_ref(),
                    Some(want_cache),
                    "cache diverges: threads {threads} cap {cap} case {case}"
                );
            }
        }
    }
    pool::set_threads(pool::default_threads());
}
