//! The workspace's shared integrity checksum.
//!
//! One FNV-1a variant guards every byte that crosses a storage boundary:
//! `cb-kv::serialize` stamps it on cache-entry headers and per-layer
//! blocks, and [`crate::disk::DiskBackend`] stamps it on whole segment
//! files. It hashes 8-byte words (trailing bytes folded individually),
//! which keeps single-bit-flip detection while running ~8x faster than the
//! byte-wise loop — verification sits on the blend's TTFT-critical load
//! path.

/// FNV-1a over 8-byte little-endian words.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_any_single_bit_flip() {
        let data: Vec<u8> = (0..100u8).collect();
        let base = fnv64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(base, fnv64(&flipped), "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv64(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn word_and_tail_paths_both_contribute() {
        // Lengths straddling the 8-byte word boundary hash differently.
        let a = fnv64(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = fnv64(&[1, 2, 3, 4, 5, 6, 7, 8, 0]);
        assert_ne!(a, b);
    }
}
