//! The network control plane, explicitly: a `Gateway` coordinator, two
//! `Worker`-wrapped engines joined over **real TCP sockets**, and a
//! `NetClient` session submitting requests — all in one process so the
//! example runs under `cargo run`, but every byte crosses a socket
//! exactly as it would between machines (`cb_gateway` / `cb_worker` are
//! the same types as standalone binaries).
//!
//! ```bash
//! cargo run --release --example net_control_plane
//! ```

use cacheblend::net::{Gateway, GatewayConfig, NetClient, TcpTransport, Worker, WorkerConfig};
use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_service() -> Arc<EngineService> {
    Arc::new(EngineService::new(
        EngineBuilder::new(ModelProfile::Tiny)
            .seed(11)
            .build()
            .expect("engine builds"),
        ServiceConfig::default().workers(1).queue_capacity(32),
    ))
}

fn main() {
    // Gateway side: listen, accept whatever dials in (workers say
    // HelloWorker, clients say HelloClient — the first frame decides).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let gateway = Arc::new(Gateway::new(
        GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400)),
    ));
    {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                let conn = TcpTransport::from_stream(stream.expect("accept")).expect("handshake");
                gateway.accept(Arc::new(conn)).expect("peer accepted");
            }
        });
    }

    // Worker side: each wraps an engine service and dials the gateway.
    let workers: Vec<Worker> = (0..2)
        .map(|_| {
            Worker::start(
                tiny_service(),
                Arc::new(TcpTransport::connect(addr).expect("worker dials gateway")),
                WorkerConfig::default().heartbeat_interval(Duration::from_millis(20)),
            )
            .expect("worker handshake")
        })
        .collect();
    while gateway.n_workers() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("gateway on {addr} with {} TCP workers", gateway.n_workers());

    // Client side: a third socket. Registration is content-addressed, so
    // the gateway computes each chunk's home and precomputes KV there.
    let client = NetClient::connect(Arc::new(
        TcpTransport::connect(addr).expect("client dials gateway"),
    ))
    .expect("client handshake");
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let chunks: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            vec![
                v.id(Entity(i)),
                v.id(Attr(i % 8)),
                v.id(Value(2 * i)),
                v.id(Sep),
            ]
        })
        .collect();
    let ids: Vec<_> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).expect("registers"))
        .collect();
    let query = |i: u32| vec![v.id(Query), v.id(Entity(i)), v.id(Attr(i % 8)), v.id(QMark)];

    for (i, &id) in ids.iter().enumerate() {
        let resp = client
            .submit(
                &Request::new(vec![id], query(i as u32))
                    .ratio(0.45)
                    .max_new_tokens(4),
            )
            .expect("request serves");
        println!(
            "request {i}: {} answer tokens, ttft {:.2?} (chunk home: worker {})",
            resp.answer.len(),
            resp.ttft.total,
            gateway.home_of(id),
        );
    }

    // Partition one worker: its heartbeats stop, the gateway marks it
    // down exactly once and routes everything to the survivor.
    workers[0].pause_heartbeats(true);
    let t0 = Instant::now();
    while gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("worker 0 silent → marked down after {:.0?}", t0.elapsed());
    for (i, &id) in ids.iter().enumerate() {
        client
            .submit(
                &Request::new(vec![id], query(i as u32))
                    .ratio(0.45)
                    .max_new_tokens(2),
            )
            .expect("survivor serves every request");
    }
    workers[0].pause_heartbeats(false);
    while !gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = gateway.stats();
    println!(
        "recovered; failovers {} (counted once per down edge), reroutes {}, \
         admissions {:?}, locality {:.2}",
        stats.failovers,
        stats.reroutes,
        stats.admissions,
        stats.locality_hit_rate(),
    );
    let (healthy, _) = client.cluster_status().expect("status rpc");
    assert_eq!(healthy, vec![true, true]);
    assert_eq!(stats.failovers, 1);
}
