//! The KV cache store: chunk hashing, precompute, serialization, and a
//! tiered LRU store.
//!
//! This is the "KV cache store" component of §5.1: it maps text chunks to
//! their precomputed KV caches, places entries on (simulated) storage
//! devices, serializes caches to bytes for device-resident storage, and
//! evicts least-recently-used entries when a device fills up.
//!
//! Modules:
//!
//! - [`chunk`] — content hashing of token chunks (vLLM-style block hashing).
//! - [`precompute`] — computing a chunk's standalone KV cache (the
//!   PromptCache-style precompute that full KV reuse and CacheBlend both
//!   start from).
//! - [`serialize`] — byte serialization with header/per-layer checksums
//!   (corruption is detected, exercised by failure-injection tests).
//! - [`quantize`] — the int8 cold-tier wire format (~4× smaller) and the
//!   tier-boundary transcoders.
//! - [`store`] — the tiered RAM↔disk↔cold LRU [`store::KvStore`] over
//!   `cb-storage` backends (spill, promote-on-hit, quantize-on-demote,
//!   persistence).
//! - [`prefetch`] — the layer-granular async loader
//!   ([`prefetch::PrefetchHandle`]) the pipelined blend overlaps with
//!   selective recompute.

pub mod chunk;
pub mod precompute;
pub mod prefetch;
pub mod quantize;
pub mod serialize;
pub mod store;

pub use chunk::ChunkId;
pub use prefetch::PrefetchHandle;
pub use store::{KvStore, StoreError, StoreStats, TierConfig};
