//! Pipelined KV loading overlapped with selective recompute (§5/§6).
//!
//! A loader thread streams one fused context layer at a time — decoding
//! each chunk's serialized entry (`cb-kv::serialize::EntryReader`),
//! applying the Appendix-A re-rotation, and concatenating the chunk rows —
//! through a bounded channel. The fusor consumes layers in order; its
//! per-layer `synchronize()` is simply the channel `recv`. Because HKVD
//! selection for layer `i` needs only layer `i`'s loaded KV, loading layer
//! `i+1` proceeds while layer `i` is recomputed, exactly the overlap that
//! lets CacheBlend keep KV on slow devices without TTFT cost.
//!
//! An optional per-layer throttle emulates a storage device's read time for
//! tests/benches that demonstrate the overlap.

use std::time::{Duration, Instant};

use bytes::Bytes;
use cb_kv::prefetch::PrefetchHandle;
use cb_kv::serialize::DecodeError;
use cb_kv::store::StoreError;
use cb_model::{LayerKv, Model};
use cb_tokenizer::TokenId;
use crossbeam::channel::bounded;

use crate::fusor::{BlendConfig, BlendResult, BlendScratch, Fusor};
use crate::rope_align;

/// Timing evidence from a pipelined blend.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// Wall-clock of the whole blend.
    pub total: Duration,
    /// Time the fusor spent blocked waiting for a layer (`synchronize()`).
    pub wait: Duration,
    /// Time the loader spent producing layers (decode + rotate + throttle).
    pub loader_busy: Duration,
}

/// Result of [`blend_pipelined`].
#[derive(Debug)]
pub struct PipelineOutput {
    /// The blend result (cache, residual, stats).
    pub result: BlendResult,
    /// Overlap evidence.
    pub report: PipelineReport,
}

/// Fuses serialized chunk entries with a real loader thread.
///
/// `parts` are the serialized per-chunk caches (as stored by
/// `cb-kv::KvStore`), in request order. `throttle` adds an artificial
/// per-layer read delay emulating a device.
///
/// # Errors
///
/// Returns a [`DecodeError`] if any entry fails its checksum.
pub fn blend_pipelined(
    model: &Model,
    cfg: BlendConfig,
    parts: Vec<Bytes>,
    suffix: &[TokenId],
    throttle: Option<Duration>,
) -> Result<PipelineOutput, DecodeError> {
    let handles: Vec<PrefetchHandle> = parts
        .into_iter()
        .map(|b| PrefetchHandle::from_bytes(b, 0))
        .collect::<Result<_, _>>()?;
    blend_prefetched(model, cfg, handles, suffix, throttle).map_err(|e| match e {
        StoreError::Corrupt(d) => d,
        // In-memory handles cannot raise backend/capacity errors.
        _ => DecodeError::Truncated,
    })
}

/// Fuses chunk entries delivered by [`PrefetchHandle`]s — the storage-aware
/// pipeline. RAM-resident handles decode on the loader thread; disk-backed
/// handles stream layer blocks off the device (issued at prefetch time, so
/// the device read of layer `i+1` overlaps both the decode *and* the
/// selective recompute of layer `i`). `extra_throttle` adds a per-layer
/// artificial delay on top (used to emulate a device for RAM-resident
/// entries).
///
/// # Errors
///
/// Returns the first [`StoreError`] raised by a handle (corrupt layer
/// block, vanished segment, backend I/O failure); the blend is aborted and
/// no partial KV escapes.
pub fn blend_prefetched(
    model: &Model,
    cfg: BlendConfig,
    mut handles: Vec<PrefetchHandle>,
    suffix: &[TokenId],
    extra_throttle: Option<Duration>,
) -> Result<PipelineOutput, StoreError> {
    // Header phase: wait for every entry's metadata (disk headers were
    // requested when the handles were issued, so these waits overlap).
    let mut rows_per_chunk = Vec::with_capacity(handles.len());
    for h in &mut handles {
        let m = h.meta()?;
        rows_per_chunk.push((m.rows, m.positions.first().copied().unwrap_or(0)));
    }

    // Context metadata: BOS at 0, then each chunk relocated after the last.
    let bos = cb_kv::precompute::bos_cache(model);
    let mut offsets = Vec::with_capacity(handles.len());
    let mut positions: Vec<usize> = vec![0];
    let mut tokens: Vec<TokenId> = bos.tokens.clone();
    let mut cursor = 1usize;
    for (h, &(rows, _)) in handles.iter_mut().zip(rows_per_chunk.iter()) {
        offsets.push(cursor);
        positions.extend(cursor..cursor + rows);
        tokens.extend_from_slice(h.meta().expect("meta cached").tokens.as_slice());
        cursor += rows;
    }

    let n_layers = model.n_layers();
    let start = Instant::now();
    let (tx, rx) = bounded::<Result<LayerKv, StoreError>>(2);

    let width = model.cfg.kv_width();
    let total_rows = 1 + rows_per_chunk.iter().map(|&(r, _)| r).sum::<usize>();
    let (result, loader_busy) = std::thread::scope(|scope| {
        let handles = &mut handles;
        let loader = scope.spawn(move || {
            let busy_start = Instant::now();
            // One scratch buffer decodes every chunk of every layer; the
            // BOS layer KV is shared by reference.
            let mut chunk_buf = LayerKv::empty(width);
            'layers: for layer in 0..n_layers {
                let mut merged = LayerKv::empty(width);
                merged.reserve(total_rows);
                merged.append(&bos.layers[layer].k, &bos.layers[layer].v);
                for ((h, &off), &(_, first_pos)) in handles
                    .iter_mut()
                    .zip(offsets.iter())
                    .zip(rows_per_chunk.iter())
                {
                    // §6 per-layer fetch: blocks only if the device has
                    // not delivered this layer's block yet.
                    if let Err(e) = h.layer_into(layer, &mut chunk_buf) {
                        let _ = tx.send(Err(e));
                        break 'layers;
                    }
                    let delta = off as i64 - first_pos as i64;
                    rope_align::relocate_layer(model, layer, &mut chunk_buf, delta);
                    merged.append(&chunk_buf.k, &chunk_buf.v);
                }
                if let Some(d) = extra_throttle {
                    std::thread::sleep(d);
                }
                if tx.send(Ok(merged)).is_err() {
                    break; // consumer gone (panic downstream)
                }
            }
            drop(tx);
            busy_start.elapsed()
        });

        let mut wait = Duration::ZERO;
        let fusor = Fusor::new(model, cfg);
        let mut scratch = BlendScratch::new();
        let result = fusor.try_blend_streamed_scratch(
            &positions,
            &tokens,
            |_l| {
                let t = Instant::now();
                let lkv = rx
                    .recv()
                    .map_err(|_| StoreError::Backend("loader thread died".into()))?;
                wait += t.elapsed();
                lkv
            },
            suffix,
            false,
            &mut scratch,
        );
        let loader_busy = loader.join().expect("loader panicked");
        ((result, wait), loader_busy)
    });
    let ((result, wait), loader_busy) = (result, loader_busy);
    let mut result = result?;
    result.stats.first_layer_deviations.shrink_to_fit();

    Ok(PipelineOutput {
        result,
        report: PipelineReport {
            total: start.elapsed(),
            wait,
            loader_busy,
        },
    })
}

/// Sequential reference: load (and throttle) *everything first*, then
/// blend — the unpipelined ablation of Figure 10(a).
pub fn blend_sequential(
    model: &Model,
    cfg: BlendConfig,
    parts: Vec<Bytes>,
    suffix: &[TokenId],
    throttle: Option<Duration>,
) -> Result<PipelineOutput, DecodeError> {
    let start = Instant::now();
    let mut caches = Vec::new();
    for b in parts {
        let c = cb_kv::serialize::decode(b)?;
        if let Some(d) = throttle {
            std::thread::sleep(d * model.n_layers() as u32);
        }
        caches.push(c);
    }
    let load_time = start.elapsed();
    let fusor = Fusor::new(model, cfg);
    let result = fusor.blend(caches, suffix, false);
    Ok(PipelineOutput {
        result,
        report: PipelineReport {
            total: start.elapsed(),
            wait: load_time,
            loader_busy: load_time,
        },
    })
}

/// Convenience used by tests/benches: serialize a fused request's chunks.
pub fn serialize_chunks(model: &Model, chunks: &[Vec<TokenId>]) -> Vec<Bytes> {
    chunks
        .iter()
        .map(|c| cb_kv::serialize::encode(&cb_kv::precompute::precompute_chunk(model, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{KvCache, ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn scenario(m: &Model) -> (Vec<Vec<TokenId>>, Vec<TokenId>, TokenId) {
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [
            Ref,
            Attr(3),
            Value(9),
            Sep,
            Entity(8),
            Attr(1),
            Value(4),
            Sep,
        ]
        .map(|k| v.id(k))
        .to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        (vec![c1, c2], q, v.id(Value(9)))
    }

    #[test]
    fn pipelined_matches_eager_blend() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let cfg = BlendConfig::with_ratio(0.4);
        let piped = blend_pipelined(&m, cfg, bytes, &q, None).unwrap();

        let parts: Vec<KvCache> = chunks
            .iter()
            .map(|c| cb_kv::precompute::precompute_chunk(&m, c))
            .collect();
        let eager = Fusor::new(&m, cfg).blend(parts, &q, false);
        for l in 0..m.n_layers() {
            let d = piped.result.cache.layers[l]
                .k
                .frobenius_distance(&eager.cache.layers[l].k);
            assert!(d < 1e-4, "layer {l} differs between pipelined and eager");
        }
        let dl = cb_tensor::stats::l2_distance(&piped.result.last_residual, &eager.last_residual);
        assert!(dl < 1e-4);
    }

    #[test]
    fn pipelined_answers_correctly() {
        let m = model();
        let (chunks, q, gold) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let mut out = blend_pipelined(&m, BlendConfig::with_ratio(0.45), bytes, &q, None).unwrap();
        let ans = m.decode_greedy(&mut out.result.cache, &out.result.last_residual, 4);
        assert_eq!(ans, vec![gold]);
    }

    #[test]
    fn corrupted_entry_is_rejected() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let mut bytes = serialize_chunks(&m, &chunks);
        let mut raw = bytes[0].to_vec();
        let n = raw.len();
        raw[n / 2] ^= 0xFF;
        bytes[0] = Bytes::from(raw);
        let err = blend_pipelined(&m, BlendConfig::default(), bytes, &q, None).unwrap_err();
        assert_eq!(err, DecodeError::Corrupted);
    }

    #[test]
    fn pipelining_hides_load_latency() {
        // With a per-layer throttle, the pipelined total must be well below
        // "load everything, then compute" — the §5 overlap claim measured
        // on real threads.
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let throttle = Duration::from_millis(8);
        let cfg = BlendConfig::with_ratio(0.4);
        let piped = blend_pipelined(&m, cfg, bytes.clone(), &q, Some(throttle)).unwrap();
        let seq = blend_sequential(&m, cfg, bytes, &q, Some(throttle)).unwrap();
        assert!(
            piped.report.total < seq.report.total,
            "pipelined {:?} !< sequential {:?}",
            piped.report.total,
            seq.report.total
        );
    }

    fn disk_store(dir: &std::path::Path, throttle_bytes_per_s: Option<f64>) -> cb_kv::KvStore {
        use cb_kv::store::TierConfig;
        use cb_storage::{DiskBackend, MemBackend, StorageBackend, Throttle};
        use std::sync::Arc;
        cb_kv::KvStore::with_backends(vec![
            (
                TierConfig::new("ram", 64), // below any entry: everything lands on disk,
                Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
            ),
            (
                TierConfig::new("disk", 1 << 30),
                Arc::new(
                    DiskBackend::new(dir, throttle_bytes_per_s.map(Throttle::bandwidth)).unwrap(),
                ),
            ),
        ])
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "cb-pipeline-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn prefetched_disk_blend_matches_ram_blend() {
        let m = model();
        let (chunks, q, gold) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let cfg = BlendConfig::with_ratio(0.45);
        let ram = blend_pipelined(&m, cfg, bytes.clone(), &q, None).unwrap();

        let dir = test_dir("parity");
        let store = disk_store(&dir, None);
        let ids: Vec<cb_kv::ChunkId> = bytes
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let id = cb_kv::ChunkId(i as u64 + 1);
                store.insert_bytes(id, b.clone()).unwrap();
                id
            })
            .collect();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| store.prefetch(id).unwrap().unwrap())
            .collect();
        assert!(handles.iter().all(|h| h.tier() == 1), "disk-resident");
        let disk = blend_prefetched(&m, cfg, handles, &q, None).unwrap();
        for l in 0..m.n_layers() {
            let d = disk.result.cache.layers[l]
                .k
                .frobenius_distance(&ram.result.cache.layers[l].k);
            assert!(d < 1e-5, "layer {l} differs between disk and RAM blends");
        }
        let mut out = disk.result;
        let ans = m.decode_greedy(&mut out.cache, &out.last_residual, 4);
        assert_eq!(ans, vec![gold]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_streaming_overlaps_with_recompute() {
        // With a bandwidth throttle on the disk tier, streaming layer
        // blocks through prefetch handles must beat "read both entries in
        // full, then blend" — the same §5 overlap claim as the in-RAM
        // pipelining test, now measured against real (throttled) file I/O.
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let total: usize = bytes.iter().map(|b| b.len()).sum();
        // Bandwidth such that a full load takes ~40 ms.
        let bw = total as f64 / 0.040;
        let cfg = BlendConfig::with_ratio(0.4);

        let dir = test_dir("overlap");
        let store = disk_store(&dir, Some(bw));
        for (i, b) in bytes.iter().enumerate() {
            store
                .insert_bytes(cb_kv::ChunkId(i as u64 + 1), b.clone())
                .unwrap();
        }
        store.flush().unwrap();

        // Unpipelined arm: full (throttled) reads, then an eager blend.
        let t0 = Instant::now();
        let parts: Vec<KvCache> = (0..bytes.len())
            .map(|i| store.get(cb_kv::ChunkId(i as u64 + 1)).unwrap().unwrap().0)
            .collect();
        let load_time = t0.elapsed();
        let _ = Fusor::new(&m, cfg).blend(parts, &q, false);
        let sequential = t0.elapsed();

        // get() promoted the entries to... RAM is too small here, so they
        // are still disk-resident; stream them pipelined.
        let handles: Vec<_> = (0..bytes.len())
            .map(|i| {
                store
                    .prefetch(cb_kv::ChunkId(i as u64 + 1))
                    .unwrap()
                    .unwrap()
            })
            .collect();
        let piped = blend_prefetched(&m, cfg, handles, &q, None).unwrap();

        assert!(
            piped.report.total < sequential,
            "pipelined {:?} !< sequential {:?} (raw load {:?})",
            piped.report.total,
            sequential,
            load_time
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_accounts_wait_time() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let out = blend_pipelined(
            &m,
            BlendConfig::default(),
            bytes,
            &q,
            Some(Duration::from_millis(2)),
        )
        .unwrap();
        assert!(out.report.wait <= out.report.total);
        assert!(out.report.loader_busy >= Duration::from_millis(2 * 4));
    }
}
