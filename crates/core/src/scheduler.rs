//! The persistent scheduler: [`EngineService`] owns a long-lived worker
//! pool over a shared [`Engine`] handle and serves streaming responses.
//!
//! Where [`Engine::submit`] is one-shot and synchronous, the service is a
//! request-lifecycle front end for continuous serving:
//!
//! - **Bounded admission queue** with two lanes ([`Priority::High`] /
//!   [`Priority::Normal`]), FIFO within a lane. A full queue pushes back:
//!   [`EngineService::try_submit_stream`] returns
//!   [`TrySubmitError::QueueFull`] (returning the request to the caller),
//!   while [`EngineService::submit_stream`] blocks until space frees.
//! - **Anti-starvation**: after [`ServiceConfig::fair_burst`] consecutive
//!   high-lane dispatches while normal work waits, the next dispatch comes
//!   from the normal lane, so neither lane starves.
//! - **Streaming**: every submission returns a [`ResponseStream`] yielding
//!   [`Event`]s (`Queued → Admitted → FirstToken → Token* → Done`);
//!   `ResponseStream::collect()` recovers the one-shot shape.
//! - **Observability**: [`ServiceStats`] counts submissions, rejections,
//!   completions, failures, TTFT-deadline misses, and the peak queue
//!   depth.
//! - **Continuous batching** ([`ServiceConfig::decode_batch`] ≥ 2):
//!   workers run only the blend/prefill half of a request and hand the
//!   prefilled sequence to a dedicated decoder thread stepping a shared
//!   [`cb_model::DecodeBatch`]. Sequences join and leave the running
//!   batch between decode iterations, so one request's recompute overlaps
//!   another's decode. Batched decode is bit-identical to the sequential
//!   path and per-request event order is unchanged.
//!
//! Workers drain the queue on shutdown ([`EngineService`]'s `Drop` joins
//! them, then the decoder), so every accepted request reaches a terminal
//! event as long as at least one worker exists.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cb_model::{DecodeBatch, KvCache, SeqId};
use cb_obs::metrics::{Counter, Gauge, Histogram, Registry};
use cb_obs::trace::{Span, TraceContext};
use crossbeam::channel::{self, Receiver, Sender};

use crate::engine::{Engine, EngineError, Prefilled, Priority, Request, Response};
use crate::stream::{Event, ResponseStream};

/// Cached handles into the process-global metrics registry. Every
/// [`EngineService`] in the process bumps the same series — the registry
/// view is the process total, while [`ServiceStats`] stays the
/// authoritative *per-service* count (cluster tests and routers read
/// those; one scrape reads these).
struct SchedObs {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    canceled: Arc<Counter>,
    deadline_misses: Arc<Counter>,
    tokens: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    ttft: Arc<Histogram>,
    ttft_load_wait: Arc<Histogram>,
    ttft_recompute: Arc<Histogram>,
    ttft_precompute: Arc<Histogram>,
    decode_token: Arc<Histogram>,
    request: Arc<Histogram>,
    batch_occupancy: Arc<Gauge>,
    decode_step: Arc<Histogram>,
}

fn sched_obs() -> &'static SchedObs {
    static OBS: OnceLock<SchedObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        SchedObs {
            submitted: r.counter("cb_requests_submitted_total"),
            rejected: r.counter("cb_requests_rejected_total"),
            completed: r.counter("cb_requests_completed_total"),
            failed: r.counter("cb_requests_failed_total"),
            canceled: r.counter("cb_requests_canceled_total"),
            deadline_misses: r.counter("cb_deadline_misses_total"),
            tokens: r.counter("cb_tokens_total"),
            queue_wait: r.histogram("cb_queue_wait_seconds"),
            ttft: r.histogram("cb_ttft_seconds"),
            ttft_load_wait: r.histogram("cb_ttft_load_wait_seconds"),
            ttft_recompute: r.histogram("cb_ttft_recompute_seconds"),
            ttft_precompute: r.histogram("cb_ttft_precompute_seconds"),
            decode_token: r.histogram("cb_decode_token_seconds"),
            request: r.histogram("cb_request_seconds"),
            batch_occupancy: r.gauge("cb_batch_occupancy"),
            decode_step: r.histogram("cb_decode_step_seconds"),
        }
    })
}

/// Configuration of an [`EngineService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads serving the queue. `0` creates a *paused* service
    /// whose queue never drains — useful for testing admission
    /// backpressure deterministically (pair with
    /// [`EngineService::try_submit_stream`]; a blocking submit against a
    /// full paused queue would wait forever).
    pub workers: usize,
    /// Maximum requests waiting across both lanes (admitted-but-running
    /// requests do not count).
    pub queue_capacity: usize,
    /// Consecutive high-lane dispatches allowed while normal-lane work is
    /// waiting before one normal request is dispatched.
    pub fair_burst: usize,
    /// Width of the continuous decode batch. `1` (the default) decodes
    /// each request on the worker that prefilled it — the classic path.
    /// `n ≥ 2` routes prefilled requests to a dedicated decoder thread
    /// that steps up to `n` sequences in lockstep, admitting and retiring
    /// between iterations.
    pub decode_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 64,
            fair_burst: 4,
            decode_batch: 1,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-thread count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the admission-queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a zero-capacity queue could admit nothing).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "queue capacity must be positive");
        self.queue_capacity = n;
        self
    }

    /// Sets the anti-starvation burst length.
    pub fn fair_burst(mut self, n: usize) -> Self {
        self.fair_burst = n;
        self
    }

    /// Sets the continuous decode-batch width (see
    /// [`ServiceConfig::decode_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a zero-wide batch could decode nothing).
    pub fn decode_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "decode batch width must be positive");
        self.decode_batch = n;
        self
    }
}

/// Error returned by [`EngineService::try_submit_stream`].
#[derive(Debug)]
pub enum TrySubmitError {
    /// The admission queue is at capacity; the request is handed back so
    /// the caller can retry, shed, or block.
    QueueFull(Request),
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::QueueFull(_) => write!(f, "admission queue is full"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// Counters of a service's lifetime (monotone; read with
/// [`EngineService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected with [`TrySubmitError::QueueFull`].
    pub rejected: u64,
    /// Requests that reached [`Event::Done`].
    pub completed: u64,
    /// Requests that reached [`Event::Failed`].
    pub failed: u64,
    /// Requests whose first token arrived after their
    /// [`Request::deadline`] — or that went terminal (failed, canceled)
    /// without ever producing a first token once the deadline had passed.
    pub deadline_misses: u64,
    /// Requests skipped because the client dropped the
    /// [`ResponseStream`] while they were still queued.
    pub canceled: u64,
    /// Highest number of requests simultaneously waiting in the queue.
    pub peak_queue_depth: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    canceled: AtomicU64,
    peak_queue_depth: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            canceled: self.canceled.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Non-blocking snapshot of a service's instantaneous load, taken with
/// [`EngineService::probe`]. Routers (the cluster front end) read these to
/// pick a replica without ever waiting on admission: the probe never
/// blocks for queue space, only for the brief scheduler mutex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceProbe {
    /// Requests waiting in the admission queue right now.
    pub queue_depth: usize,
    /// The queue's configured capacity.
    pub queue_capacity: usize,
    /// Requests admitted to a worker but not yet terminal.
    pub inflight: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// True once the service has begun shutting down.
    pub shutdown: bool,
}

impl ServiceProbe {
    /// True if a `try_submit_stream` right now would be rejected.
    pub fn queue_full(&self) -> bool {
        self.queue_depth >= self.queue_capacity
    }

    /// Requests this service currently owes (queued + in flight) — the
    /// load metric the cluster router minimizes when spilling.
    pub fn load(&self) -> usize {
        self.queue_depth + self.inflight
    }

    /// True if the service can still make progress on new work.
    pub fn healthy(&self) -> bool {
        self.workers > 0 && !self.shutdown
    }
}

/// Two FIFO lanes with a total capacity and an anti-starvation dispatch
/// rule: at most `fair_burst` consecutive high-lane pops while the normal
/// lane is non-empty.
#[derive(Debug)]
struct LaneQueue<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    capacity: usize,
    fair_burst: usize,
    high_streak: usize,
}

impl<T> LaneQueue<T> {
    fn new(capacity: usize, fair_burst: usize) -> Self {
        Self {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            capacity,
            fair_burst,
            high_streak: 0,
        }
    }

    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Enqueues into the lane for `priority`, or hands the item back when
    /// at capacity.
    fn push(&mut self, priority: Priority, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        match priority {
            Priority::High => self.high.push_back(item),
            Priority::Normal => self.normal.push_back(item),
        }
        Ok(())
    }

    /// Dispatches the next item under the fairness rule.
    ///
    /// Invariant: while the normal lane stays non-empty, at most
    /// `fair_burst` consecutive pops come from the high lane. The streak
    /// therefore only accumulates while normal-lane work is actually
    /// waiting, and resets on every path that cannot starve anyone: a pop
    /// with the normal lane empty (no one is waiting) and a pop that
    /// serves the normal lane (the wait ended). Missing either reset was
    /// the failure mode audited here — a stale streak would either tax
    /// high-lane bursts that starved no one, or let a drained-then-refilled
    /// normal lane wait longer than a burst.
    fn pop(&mut self) -> Option<T> {
        if self.normal.is_empty() {
            self.high_streak = 0;
            return self.high.pop_front();
        }
        if self.high.is_empty() || self.high_streak >= self.fair_burst {
            self.high_streak = 0;
            return self.normal.pop_front();
        }
        self.high_streak += 1;
        self.high.pop_front()
    }
}

/// One queued request plus its event channel.
#[derive(Debug)]
struct Job {
    request: Request,
    tx: Sender<Event>,
    enqueued: Instant,
}

#[derive(Debug)]
struct SchedState {
    queue: LaneQueue<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<SchedState>,
    /// Workers wait here for jobs (or shutdown).
    jobs_cv: Condvar,
    /// Blocking submitters wait here for queue space.
    space_cv: Condvar,
    stats: AtomicStats,
    /// Jobs popped by a worker but not yet terminal (see
    /// [`ServiceProbe::inflight`]).
    inflight: AtomicU64,
}

/// The persistent streaming scheduler over an [`Engine`]. See the module
/// docs for the lifecycle; dropping the service shuts the pool down after
/// draining the queue.
#[derive(Debug)]
pub struct EngineService {
    engine: Engine,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    decoder: Option<JoinHandle<()>>,
}

impl EngineService {
    /// Starts the service: spawns `cfg.workers` threads, each holding a
    /// clone of `engine` (clones share the store, registry, and model).
    /// With [`ServiceConfig::decode_batch`] ≥ 2 a decoder thread is also
    /// spawned; workers then prefill and hand sequences to it.
    pub fn new(engine: Engine, cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: LaneQueue::new(cfg.queue_capacity.max(1), cfg.fair_burst.max(1)),
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            stats: AtomicStats::default(),
            inflight: AtomicU64::new(0),
        });
        let (batch_tx, decoder) = if cfg.decode_batch > 1 && cfg.workers > 0 {
            let (tx, rx) = channel::unbounded();
            let engine = engine.clone();
            let shared = shared.clone();
            let cap = cfg.decode_batch;
            let handle = std::thread::spawn(move || decoder_loop(engine, shared, rx, cap));
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = (0..cfg.workers)
            .map(|_| {
                let engine = engine.clone();
                let shared = shared.clone();
                let batch_tx = batch_tx.clone();
                std::thread::spawn(move || worker_loop(engine, shared, batch_tx))
            })
            .collect();
        // Only workers hold handoff senders (`batch_tx` drops here), so
        // the decoder's receiver disconnects exactly when the last worker
        // exits — it then drains its batch and terminates.
        drop(batch_tx);
        Self {
            engine,
            shared,
            workers,
            decoder,
        }
    }

    /// The engine this service schedules over (register chunks here).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Submits a request, blocking while the admission queue is full, and
    /// returns its event stream. The stream's first event is
    /// [`Event::Queued`].
    pub fn submit_stream(&self, request: Request) -> ResponseStream {
        let (tx, rx) = channel::unbounded();
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                // tx drops here: the stream closes without a terminal
                // event and collect() reports Canceled.
                return ResponseStream::new(rx);
            }
            if !st.queue.is_full() {
                break;
            }
            st = self.shared.space_cv.wait(st).unwrap();
        }
        let _ = tx.send(Event::Queued);
        self.enqueue_locked(&mut st, request, tx);
        drop(st);
        self.shared.jobs_cv.notify_one();
        ResponseStream::new(rx)
    }

    /// Non-blocking submit: on a full queue the request is handed back in
    /// [`TrySubmitError::QueueFull`] instead of waiting.
    pub fn try_submit_stream(&self, request: Request) -> Result<ResponseStream, TrySubmitError> {
        let (tx, rx) = channel::unbounded();
        let mut st = self.shared.state.lock().unwrap();
        if st.queue.is_full() || st.shutdown {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            sched_obs().rejected.inc();
            return Err(TrySubmitError::QueueFull(request));
        }
        let _ = tx.send(Event::Queued);
        self.enqueue_locked(&mut st, request, tx);
        drop(st);
        self.shared.jobs_cv.notify_one();
        Ok(ResponseStream::new(rx))
    }

    fn enqueue_locked(&self, st: &mut SchedState, request: Request, tx: Sender<Event>) {
        let priority = request.priority;
        let job = Job {
            request,
            tx,
            enqueued: Instant::now(),
        };
        st.queue
            .push(priority, job)
            .unwrap_or_else(|_| unreachable!("capacity checked under the same lock"));
        let stats = &self.shared.stats;
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        sched_obs().submitted.inc();
        stats
            .peak_queue_depth
            .fetch_max(st.queue.len() as u64, Ordering::Relaxed);
    }

    /// Blocking one-shot convenience: `submit_stream(request).collect()`.
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        self.submit_stream(request).collect()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Non-blocking load/health snapshot (see [`ServiceProbe`]). The
    /// cluster router calls this on every spill decision, so it must never
    /// wait on queue space — it only takes the scheduler mutex briefly.
    pub fn probe(&self) -> ServiceProbe {
        let st = self.shared.state.lock().unwrap();
        ServiceProbe {
            queue_depth: st.queue.len(),
            queue_capacity: st.queue.capacity,
            inflight: self.shared.inflight.load(Ordering::Relaxed) as usize,
            workers: self.workers.len(),
            shutdown: st.shutdown,
        }
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot()
    }
}

impl Drop for EngineService {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        // Workers first: they drain the queue (possibly handing more
        // sequences to the decoder) and drop their handoff senders on
        // exit. Only then can the decoder observe disconnection, finish
        // the in-flight batch, and return.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(d) = self.decoder.take() {
            let _ = d.join();
        }
    }
}

/// Records a TTFT-deadline miss for one retiring request. A deadlined
/// request misses when its first token arrived late — or, if it went
/// terminal (failed, canceled) without ever producing a first token, when
/// the deadline had already passed by then. The second arm is what keeps
/// the miss count honest under failure: a request that blows through its
/// deadline and *then* errors out used to vanish from the count entirely,
/// which made an overloaded, failing service look like it was meeting
/// latency targets.
fn note_deadline(
    shared: &Shared,
    obs: &SchedObs,
    deadline: Option<Duration>,
    enqueued: Instant,
    first_token_at: Option<Instant>,
) {
    let Some(deadline) = deadline else { return };
    let missed = match first_token_at {
        Some(at) => at.duration_since(enqueued) > deadline,
        None => enqueued.elapsed() > deadline,
    };
    if missed {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        obs.deadline_misses.inc();
    }
}

fn worker_loop(engine: Engine, shared: Arc<Shared>, batch_tx: Option<Sender<DecodeHandoff>>) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop() {
                    // Counted in flight while the queue lock is still held,
                    // so a probe never sees the job in neither place.
                    shared.inflight.fetch_add(1, Ordering::Relaxed);
                    shared.space_cv.notify_one();
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.jobs_cv.wait(st).unwrap();
            }
        };
        let Some(job) = job else { return };
        let obs = sched_obs();
        let queue_wait = job.enqueued.elapsed();
        obs.queue_wait.record_duration(queue_wait);
        // Bind this request's trace to the worker thread so the queue
        // span, the serve span, and the engine's phase spans all land on
        // one timeline (the guard unbinds when the request retires).
        let _trace = TraceContext::enter(job.request.trace, job.request.trace_parent);
        if job.request.trace != 0 {
            let end = cb_obs::now_nanos();
            cb_obs::trace::record_span(
                job.request.trace,
                job.request.trace_parent,
                "queue",
                end.saturating_sub(queue_wait.as_nanos() as u64),
                end,
            );
        }
        // If the client already dropped the stream, skip the blend — no
        // one is listening, and the lane is better spent on live requests.
        if job.tx.send(Event::Admitted).is_err() {
            note_deadline(&shared, obs, job.request.deadline, job.enqueued, None);
            shared.stats.canceled.fetch_add(1, Ordering::Relaxed);
            obs.canceled.inc();
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        if let Some(batch_tx) = &batch_tx {
            // Batched mode: this worker only runs the blend/prefill, then
            // hands the sequence to the decoder thread. While the decoder
            // steps other requests' tokens, this worker is already
            // prefilling the next request — that overlap is the whole
            // point of continuous batching.
            let serve_span = Span::begin("prefill");
            let served_at = Instant::now();
            let mut first_token_at = None;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.prefill_streaming(&job.request, &mut |event| {
                    if let Event::FirstToken(ttft) = &event {
                        if first_token_at.is_none() {
                            let now = Instant::now();
                            first_token_at = Some(now);
                            obs.ttft.record_duration(now.duration_since(job.enqueued));
                            obs.ttft_load_wait.record_duration(ttft.load_wait);
                            obs.ttft_recompute.record_duration(ttft.recompute);
                            obs.ttft_precompute.record_duration(ttft.precompute);
                        }
                    }
                    let _ = job.tx.send(event);
                })
            }))
            .unwrap_or(Err(EngineError::Panicked));
            note_deadline(
                &shared,
                obs,
                job.request.deadline,
                job.enqueued,
                first_token_at,
            );
            serve_span.end();
            match result {
                Ok(prefilled) => {
                    let handoff = DecodeHandoff {
                        prefilled,
                        tx: job.tx,
                        served_at,
                        first_token_at,
                        trace: job.request.trace,
                        trace_parent: job.request.trace_parent,
                    };
                    // The decoder owns the request from here: it
                    // decrements inflight and sends the terminal event at
                    // retire. A send can only fail during a shutdown race;
                    // dropping the handoff closes the stream, which
                    // clients observe as Canceled — same as a request
                    // still queued at shutdown.
                    if batch_tx.send(handoff).is_err() {
                        shared.stats.canceled.fetch_add(1, Ordering::Relaxed);
                        obs.canceled.inc();
                        shared.inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(err) => {
                    obs.request.record_duration(served_at.elapsed());
                    shared.inflight.fetch_sub(1, Ordering::Relaxed);
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    obs.failed.inc();
                    let _ = job.tx.send(Event::Failed(err));
                }
            }
            continue;
        }
        let serve_span = Span::begin("serve");
        let served_at = Instant::now();
        let mut first_token_at = None;
        let mut last_token_at: Option<Instant> = None;
        // A panic anywhere in the blend/decode path must not kill the
        // worker — that would silently shrink the pool and leave queued
        // streams hanging. Contain it and fail only this request.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.submit_streaming(&job.request, &mut |event| {
                match &event {
                    Event::FirstToken(ttft) if first_token_at.is_none() => {
                        let now = Instant::now();
                        first_token_at = Some(now);
                        last_token_at = Some(now);
                        obs.ttft.record_duration(now.duration_since(job.enqueued));
                        obs.ttft_load_wait.record_duration(ttft.load_wait);
                        obs.ttft_recompute.record_duration(ttft.recompute);
                        obs.ttft_precompute.record_duration(ttft.precompute);
                    }
                    Event::Token(_) => {
                        let now = Instant::now();
                        if let Some(prev) = last_token_at.replace(now) {
                            obs.decode_token.record_duration(now.duration_since(prev));
                        }
                        obs.tokens.inc();
                    }
                    _ => {}
                }
                let _ = job.tx.send(event);
            })
        }))
        .unwrap_or(Err(EngineError::Panicked));
        note_deadline(
            &shared,
            obs,
            job.request.deadline,
            job.enqueued,
            first_token_at,
        );
        obs.request.record_duration(served_at.elapsed());
        serve_span.end();
        // Decremented before the terminal event goes out: a client that
        // observed Done/Failed must never still see the request in flight.
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(resp) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                obs.completed.inc();
                let _ = job.tx.send(Event::Done(resp));
            }
            Err(err) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                obs.failed.inc();
                let _ = job.tx.send(Event::Failed(err));
            }
        }
    }
}

/// A prefilled request handed from a worker to the decoder thread, ready
/// to join the continuous batch.
struct DecodeHandoff {
    prefilled: Prefilled,
    tx: Sender<Event>,
    served_at: Instant,
    first_token_at: Option<Instant>,
    trace: u64,
    trace_parent: u64,
}

/// Per-sequence bookkeeping while a request decodes inside the shared
/// batch.
struct DecodeCtx {
    prefilled: Prefilled,
    tx: Sender<Event>,
    served_at: Instant,
    last_token_at: Instant,
    decode_started: Instant,
    decode_start_ns: u64,
    /// Pre-allocated span id for the request's `decode` span, so per-step
    /// spans can parent onto it before it is recorded at retire. Zero for
    /// untraced requests.
    decode_span: u64,
    trace: u64,
    trace_parent: u64,
}

fn admit_handoff(
    engine: &Engine,
    batch: &mut DecodeBatch,
    slots: &mut HashMap<SeqId, DecodeCtx>,
    mut h: DecodeHandoff,
) {
    // The cache moves into the batch slot; it moves back into the blend
    // result at retire (with the answer's rows appended), so the response
    // shape matches the sequential path exactly.
    let cache = std::mem::replace(&mut h.prefilled.blend.cache, KvCache::empty(0, 0));
    let sid = batch.admit(
        engine.model(),
        cache,
        &h.prefilled.blend.last_residual,
        h.prefilled.max_new_tokens,
    );
    let now = Instant::now();
    let decode_span = if h.trace != 0 {
        cb_obs::trace::alloc_span_id()
    } else {
        0
    };
    slots.insert(
        sid,
        DecodeCtx {
            last_token_at: h.first_token_at.unwrap_or(now),
            prefilled: h.prefilled,
            tx: h.tx,
            served_at: h.served_at,
            decode_started: now,
            decode_start_ns: cb_obs::now_nanos(),
            decode_span,
            trace: h.trace,
            trace_parent: h.trace_parent,
        },
    );
}

/// The continuous-batching decode loop: one thread stepping every
/// in-flight sequence together. Between steps it tops the batch up from
/// the handoff channel — blocking only when the batch is empty, so a busy
/// batch never stalls waiting for admissions. Exits when the channel
/// disconnects (all workers gone) and the batch has drained.
fn decoder_loop(engine: Engine, shared: Arc<Shared>, rx: Receiver<DecodeHandoff>, cap: usize) {
    let obs = sched_obs();
    let mut batch = DecodeBatch::new();
    let mut slots: HashMap<SeqId, DecodeCtx> = HashMap::new();
    loop {
        while batch.len() < cap {
            if batch.is_empty() {
                match rx.recv() {
                    Ok(h) => admit_handoff(&engine, &mut batch, &mut slots, h),
                    Err(_) => return,
                }
            } else {
                match rx.try_recv() {
                    Ok(h) => admit_handoff(&engine, &mut batch, &mut slots, h),
                    Err(_) => break,
                }
            }
        }
        obs.batch_occupancy.set(batch.len() as f64);
        let step_started = Instant::now();
        let step_start_ns = cb_obs::now_nanos();
        // Same containment as the worker loop: a panic mid-step must not
        // kill the decoder. It does leave the batch in an undefined state,
        // so every in-flight sequence fails and the batch restarts empty.
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.step(engine.model(), &mut |sid, token| {
                let Some(ctx) = slots.get_mut(&sid) else {
                    return;
                };
                let now = Instant::now();
                obs.decode_token
                    .record_duration(now.duration_since(ctx.last_token_at));
                ctx.last_token_at = now;
                obs.tokens.inc();
                let _ = ctx.tx.send(Event::Token(token));
            })
        }));
        obs.decode_step.record_duration(step_started.elapsed());
        let retired = match stepped {
            Ok(retired) => retired,
            Err(_) => {
                batch = DecodeBatch::new();
                for (_, ctx) in slots.drain() {
                    shared.inflight.fetch_sub(1, Ordering::Relaxed);
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    obs.failed.inc();
                    let _ = ctx.tx.send(Event::Failed(EngineError::Panicked));
                }
                obs.batch_occupancy.set(0.0);
                continue;
            }
        };
        let step_end_ns = cb_obs::now_nanos();
        // Per-step spans for traced sequences, parented onto the
        // request's (not-yet-recorded) decode span. Sequences retiring on
        // this step are still in `slots` here, so their last step is
        // covered too.
        for ctx in slots.values() {
            if ctx.trace != 0 {
                cb_obs::trace::record_span(
                    ctx.trace,
                    ctx.decode_span,
                    "decode.step",
                    step_start_ns,
                    step_end_ns,
                );
            }
        }
        for (sid, fin) in retired {
            let Some(ctx) = slots.remove(&sid) else {
                continue;
            };
            let Prefilled {
                mut blend,
                mut ttft,
                recompute_ratio,
                chunk_sources,
                started,
                max_new_tokens: _,
            } = ctx.prefilled;
            blend.cache = fin.cache;
            ttft.decode = ctx.decode_started.elapsed();
            ttft.total = started.elapsed();
            let resp = Response {
                answer: fin.tokens,
                blend,
                ttft,
                recompute_ratio,
                chunk_sources,
            };
            if ctx.trace != 0 {
                cb_obs::trace::record_span_with_id(
                    ctx.trace,
                    ctx.decode_span,
                    ctx.trace_parent,
                    "decode",
                    ctx.decode_start_ns,
                    cb_obs::now_nanos(),
                );
            }
            obs.request.record_duration(ctx.served_at.elapsed());
            // Decremented before the terminal event goes out, matching
            // the sequential path's guarantee.
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            obs.completed.inc();
            let _ = ctx.tx.send(Event::Done(resp));
        }
        if batch.is_empty() {
            obs.batch_occupancy.set(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cb_model::ModelProfile;
    use cb_tokenizer::TokenKind::*;

    #[test]
    fn lane_queue_respects_capacity() {
        let mut q: LaneQueue<u32> = LaneQueue::new(2, 4);
        assert!(q.push(Priority::Normal, 1).is_ok());
        assert!(q.push(Priority::High, 2).is_ok());
        assert_eq!(q.push(Priority::High, 3), Err(3));
        q.pop();
        assert!(q.push(Priority::Normal, 3).is_ok());
    }

    #[test]
    fn lane_queue_serves_high_first_but_never_starves_normal() {
        // 20 high + 4 normal items, fair_burst = 3: with the normal lane
        // non-empty throughout its residence, a normal item must surface at
        // least every fair_burst + 1 dispatches.
        let mut q: LaneQueue<(Priority, u32)> = LaneQueue::new(64, 3);
        for i in 0..20 {
            q.push(Priority::High, (Priority::High, i)).unwrap();
        }
        for i in 0..4 {
            q.push(Priority::Normal, (Priority::Normal, i)).unwrap();
        }
        let order: Vec<(Priority, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 24);
        assert_eq!(order[0].0, Priority::High, "high lane is served first");
        let normal_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == Priority::Normal)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(normal_positions.len(), 4);
        // First normal item within the first burst window; consecutive
        // normal dispatches no further than a burst apart.
        assert!(normal_positions[0] <= 3, "positions {normal_positions:?}");
        for w in normal_positions.windows(2) {
            assert!(w[1] - w[0] <= 4, "positions {normal_positions:?}");
        }
        // FIFO within each lane.
        let highs: Vec<u32> = order
            .iter()
            .filter(|(p, _)| *p == Priority::High)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(highs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lane_queue_streak_resets_when_normal_lane_is_empty() {
        let mut q: LaneQueue<u32> = LaneQueue::new(8, 2);
        q.push(Priority::High, 0).unwrap();
        q.push(Priority::High, 1).unwrap();
        q.push(Priority::High, 2).unwrap();
        // Normal lane empty: pops don't accumulate a streak.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(Priority::Normal, 10).unwrap();
        q.push(Priority::High, 3).unwrap();
        q.push(Priority::High, 4).unwrap();
        // Full burst of high available before the waiting normal.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(10), "burst of 2 exhausted");
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn lane_queue_fairness_holds_under_random_arrivals() {
        // Property: while the normal lane is non-empty, at most
        // `fair_burst` consecutive dispatches come from the high lane —
        // i.e. a normal item surfaces at least every fair_burst + 1
        // dispatches. Randomized arrivals/drains exercise the
        // drain-then-refill interleavings the fixed-scenario tests miss.
        let mut rng_state: u64 = 0x9e37_79b9_97f4_a7c5;
        let mut rng = move || {
            // xorshift64*: deterministic, no dev-dependency needed.
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for fair_burst in [1usize, 2, 4] {
            let mut q: LaneQueue<Priority> = LaneQueue::new(1024, fair_burst);
            let mut high_run = 0usize;
            for _ in 0..5000 {
                match rng() % 4 {
                    0 => {
                        let _ = q.push(Priority::High, Priority::High);
                    }
                    1 => {
                        let _ = q.push(Priority::Normal, Priority::Normal);
                    }
                    _ => {
                        let normal_waiting = !q.normal.is_empty();
                        match q.pop() {
                            Some(Priority::High) if normal_waiting => {
                                high_run += 1;
                                assert!(
                                    high_run <= fair_burst,
                                    "{high_run} consecutive high pops past a waiting \
                                     normal lane (fair_burst {fair_burst})"
                                );
                            }
                            // A high pop with no normal waiting starves
                            // no one; a normal pop ends the wait.
                            Some(_) | None => high_run = 0,
                        }
                    }
                }
            }
        }
    }

    fn service(workers: usize, capacity: usize) -> EngineService {
        let engine = EngineBuilder::new(ModelProfile::Tiny).build().unwrap();
        EngineService::new(
            engine,
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(capacity),
        )
    }

    #[test]
    fn stream_yields_lifecycle_in_order_and_collect_answers() {
        let s = service(2, 8);
        let v = s.engine().model().cfg.vocab.clone();
        let c1: Vec<_> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<_> = [Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)).to_vec();
        let ids = s.engine().register_chunks(&[c1, c2]).unwrap();
        let q: Vec<_> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();

        let stream = s.submit_stream(Request::new(ids, q).ratio(0.45).max_new_tokens(4));
        let mut events = Vec::new();
        for e in stream {
            events.push(e);
        }
        assert!(matches!(events[0], Event::Queued));
        assert!(matches!(events[1], Event::Admitted));
        assert!(matches!(events[2], Event::FirstToken(_)));
        let tokens: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Token(t) => Some(*t),
                _ => None,
            })
            .collect();
        let Event::Done(resp) = events.last().unwrap() else {
            panic!("missing terminal Done: {events:?}");
        };
        assert_eq!(tokens, resp.answer, "streamed tokens match the answer");
        assert_eq!(resp.answer, vec![v.id(Value(9))]);
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn failures_stream_a_terminal_failed_event() {
        let s = service(1, 4);
        let v = s.engine().model().cfg.vocab.clone();
        let q = vec![v.id(Query), v.id(QMark)];
        let err = s
            .submit_stream(Request::new(vec![cb_kv::ChunkId(99)], q))
            .collect()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(cb_kv::ChunkId(99)));
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn paused_service_backpressures_with_queue_full() {
        // workers = 0: nothing drains, so the capacity-2 queue fills
        // deterministically and the third submit is pushed back.
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let chunk = vec![v.id(Entity(1)), v.id(Attr(1)), v.id(Value(1))];
        let id = s.engine().register_chunk(&chunk).unwrap();
        let q = vec![v.id(Query), v.id(QMark)];
        let mk = || Request::new(vec![id], q.clone());

        let _s1 = s.try_submit_stream(mk()).expect("first fits");
        let _s2 = s.try_submit_stream(mk()).expect("second fits");
        match s.try_submit_stream(mk()) {
            Err(TrySubmitError::QueueFull(req)) => assert_eq!(req.chunk_ids, vec![id]),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.queue_depth(), 2);
        let st = s.stats();
        assert_eq!((st.submitted, st.rejected), (2, 1));
        assert_eq!(st.peak_queue_depth, 2);
    }

    #[test]
    fn probe_reports_load_and_health_without_blocking() {
        // A paused (0-worker) full queue: probe must return immediately
        // with the exact queue picture instead of waiting for space.
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(1)), v.id(Value(2))])
            .unwrap();
        let q = vec![v.id(Query), v.id(QMark)];
        let _s1 = s
            .try_submit_stream(Request::new(vec![id], q.clone()))
            .unwrap();
        let _s2 = s.try_submit_stream(Request::new(vec![id], q)).unwrap();
        let p = s.probe();
        assert_eq!(p.queue_depth, 2);
        assert_eq!(p.queue_capacity, 2);
        assert!(p.queue_full());
        assert_eq!(p.inflight, 0, "nothing drains a paused service");
        assert_eq!(p.load(), 2);
        assert!(!p.healthy(), "a workerless service cannot make progress");

        let live = service(2, 4);
        let p = live.probe();
        assert!(p.healthy());
        assert!(!p.queue_full());
        assert_eq!(p.workers, 2);
    }

    #[test]
    fn inflight_returns_to_zero_after_completion() {
        let s = service(1, 4);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(3)), v.id(Attr(1)), v.id(Value(2)), v.id(Sep)])
            .unwrap();
        let q = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(1)), v.id(QMark)];
        s.submit(Request::new(vec![id], q)).unwrap();
        let p = s.probe();
        assert_eq!(p.inflight, 0);
        assert_eq!(p.load(), 0);
    }

    #[test]
    fn dropping_a_paused_service_cancels_queued_streams() {
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(1)), v.id(Value(1))])
            .unwrap();
        let stream = s
            .try_submit_stream(Request::new(vec![id], vec![v.id(Query), v.id(QMark)]))
            .unwrap();
        drop(s);
        assert_eq!(stream.collect().unwrap_err(), EngineError::Canceled);
    }

    #[test]
    fn deadline_misses_are_counted() {
        let s = service(1, 8);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(2)), v.id(Attr(1)), v.id(Value(3)), v.id(Sep)])
            .unwrap();
        let q = vec![v.id(Query), v.id(Entity(2)), v.id(Attr(1)), v.id(QMark)];
        // An impossible deadline is always missed; a generous one never is.
        s.submit(Request::new(vec![id], q.clone()).deadline(std::time::Duration::ZERO))
            .unwrap();
        s.submit(Request::new(vec![id], q).deadline(std::time::Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(s.stats().deadline_misses, 1);
    }

    #[test]
    fn deadline_misses_count_failures_that_never_produced_a_token() {
        // Regression: a request that fails before its first token used to
        // escape the miss count (the check required `first_token_at`).
        // An unknown chunk forces exactly that failure mode.
        let s = service(1, 8);
        let v = s.engine().model().cfg.vocab.clone();
        let q = vec![v.id(Query), v.id(QMark)];
        let err = s
            .submit_stream(
                Request::new(vec![cb_kv::ChunkId(99)], q.clone())
                    .deadline(std::time::Duration::ZERO),
            )
            .collect()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(cb_kv::ChunkId(99)));
        assert_eq!(
            s.stats().deadline_misses,
            1,
            "an already-late failure is a miss"
        );
        // The same failure well inside a generous deadline is not a miss.
        s.submit_stream(
            Request::new(vec![cb_kv::ChunkId(99)], q)
                .deadline(std::time::Duration::from_secs(3600)),
        )
        .collect()
        .unwrap_err();
        let st = s.stats();
        assert_eq!(st.deadline_misses, 1);
        assert_eq!(st.failed, 2);
    }

    fn batched_service(workers: usize, capacity: usize, batch: usize) -> EngineService {
        let engine = EngineBuilder::new(ModelProfile::Tiny).build().unwrap();
        EngineService::new(
            engine,
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(capacity)
                .decode_batch(batch),
        )
    }

    /// Registers the same fact chunks on a service and returns one query
    /// per fact, with the expected answer token.
    fn fact_requests(s: &EngineService, n: usize) -> Vec<(Request, cb_tokenizer::TokenId)> {
        let v = s.engine().model().cfg.vocab.clone();
        (0..n)
            .map(|i| {
                let (e, a, val) = ((i % 7) as u32, (i % 5) as u32, ((i * 3 + 1) % 10) as u32);
                let chunk: Vec<_> = [Entity(e), Attr(a), Value(val), Sep]
                    .map(|k| v.id(k))
                    .to_vec();
                let id = s.engine().register_chunk(&chunk).unwrap();
                let q: Vec<_> = [Query, Entity(e), Attr(a), QMark].map(|k| v.id(k)).to_vec();
                (
                    Request::new(vec![id], q).ratio(0.45).max_new_tokens(4),
                    v.id(Value(val)),
                )
            })
            .collect()
    }

    #[test]
    fn batched_service_preserves_event_order_and_matches_sequential_answers() {
        let seq = service(1, 16);
        let bat = batched_service(2, 16, 4);
        let n = 6;
        let seq_reqs = fact_requests(&seq, n);
        let bat_reqs = fact_requests(&bat, n);
        let seq_resps: Vec<_> = seq_reqs
            .into_iter()
            .map(|(r, want)| {
                let resp = seq.submit(r).unwrap();
                assert_eq!(resp.answer, vec![want]);
                resp
            })
            .collect();
        // Submit everything up front so requests genuinely share the
        // batch, then drain each stream.
        let streams: Vec<_> = bat_reqs
            .iter()
            .map(|(r, _)| bat.submit_stream(r.clone()))
            .collect();
        for (stream, ((_, want), seq_resp)) in
            streams.into_iter().zip(bat_reqs.iter().zip(&seq_resps))
        {
            let mut events = Vec::new();
            for e in stream {
                events.push(e);
            }
            assert!(matches!(events[0], Event::Queued));
            assert!(matches!(events[1], Event::Admitted));
            assert!(matches!(events[2], Event::FirstToken(_)));
            let tokens: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    Event::Token(t) => Some(*t),
                    _ => None,
                })
                .collect();
            let Event::Done(resp) = events.last().unwrap() else {
                panic!("missing terminal Done: {events:?}");
            };
            assert_eq!(tokens, resp.answer, "streamed tokens match the answer");
            assert_eq!(resp.answer, vec![*want]);
            // Bit-identity at the service level: the batched response's
            // cache (prompt + answer rows) equals the sequential one's.
            assert_eq!(resp.blend.cache, seq_resp.blend.cache);
        }
        let st = bat.stats();
        assert_eq!((st.completed, st.failed), (n as u64, 0));
        let p = bat.probe();
        assert_eq!(p.inflight, 0);
        assert_eq!(p.load(), 0);
    }

    #[test]
    fn batched_service_streams_failures_and_drains_on_drop() {
        let s = batched_service(2, 16, 4);
        let v = s.engine().model().cfg.vocab.clone();
        let q = vec![v.id(Query), v.id(QMark)];
        // Failures happen worker-side (prefill) and must still reach the
        // stream as a terminal event in batched mode.
        let err = s
            .submit_stream(Request::new(vec![cb_kv::ChunkId(99)], q))
            .collect()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(cb_kv::ChunkId(99)));
        assert_eq!(s.stats().failed, 1);
        // Dropping the service with live streams still terminates every
        // accepted request (workers drain, then the decoder drains).
        let reqs = fact_requests(&s, 5);
        let streams: Vec<_> = reqs
            .iter()
            .map(|(r, _)| s.submit_stream(r.clone()))
            .collect();
        drop(s);
        for (stream, (_, want)) in streams.into_iter().zip(reqs) {
            match stream.collect() {
                Ok(resp) => assert_eq!(resp.answer, vec![want]),
                Err(err) => assert_eq!(err, EngineError::Canceled),
            }
        }
    }
}
