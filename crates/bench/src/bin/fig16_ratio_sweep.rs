//! Regenerates fig16 (see DESIGN.md §6 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig16::run();
}
