//! Network control plane integration: frame-decoder fuzz, loopback-vs-TCP
//! parity, heartbeat-partition failover (with the idempotent-counting
//! regression), error-detail preservation across the wire, and the
//! survivability matrix — worker re-attach/adoption, client-invisible
//! mid-stream retry (fuzzed across every kill position), and warm-standby
//! gateway takeover with client resume.

use cacheblend::kv::chunk::ChunkId;
use cacheblend::net::frame::{
    decode_frame, encode_frame, read_frame, FRAME_VERSION, HEADER_LEN, MAX_FRAME_PAYLOAD,
    TRAILER_LEN,
};
use cacheblend::net::message::{
    Message, WireEvent, WireFailure, WireRequest, WireResponse, WireTtft,
};
use cacheblend::net::{
    loopback_pair, Gateway, GatewayConfig, LoopbackTransport, NetClient, RetryPolicy, Standby,
    TcpTransport, Transport, Worker, WorkerConfig,
};
use cacheblend::prelude::*;
use cacheblend::scheduler::ServiceProbe;
use cacheblend::serving::cluster::ClusterService;
use cacheblend::tokenizer::TokenKind::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The engine-backed tests here time-share one core with heartbeat and
/// demux threads; running them serially keeps the partition test's
/// heartbeat deadlines honest.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Frame / message fuzz
// ---------------------------------------------------------------------------

/// Representative frames covering every encoder code path that carries
/// variable-length data (token vectors, strings, nested structs).
fn fuzz_bases() -> Vec<Vec<u8>> {
    let request = Request::new(vec![ChunkId(7), ChunkId(0xDEAD_BEEF)], vec![1, 2, 3])
        .ratio(0.45)
        .max_new_tokens(4);
    let messages = [
        Message::HelloClient,
        Message::Heartbeat {
            probe: ServiceProbe::default(),
            stats: ServiceStats::default(),
        },
        Message::Submit {
            id: 3,
            trace: 0xFACE,
            span: 17,
            blocking: true,
            request: WireRequest::from_request(&request),
        },
        Message::RegisterChunk {
            rpc: 9,
            eager: true,
            tokens: (0..64).collect(),
        },
        Message::Ev {
            id: 12,
            trace: 0,
            event: WireEvent::Failed(WireFailure::from_error(&EngineError::Storage(
                "injected backend failure".into(),
            ))),
        },
        Message::ClusterStatusReply {
            rpc: 1,
            healthy: vec![true, false, true],
            probes: vec![ServiceProbe::default(); 3],
        },
    ];
    messages.iter().map(|m| encode_frame(&m.encode())).collect()
}

/// Serialize-fuzz for the wire: bit flips, length-field overwrites,
/// truncations, junk extensions, checksum rewrites, and garbage buffers
/// never panic the decoders and never survive as a valid frame —
/// except pure extension, which by design leaves the framed prefix
/// intact (trailing bytes belong to the next frame).
#[test]
fn frame_decoder_survives_mutation_fuzz() {
    let bases = fuzz_bases();
    for seed in [0xCB_0001u64, 0xCB_0002, 0xCB_0003] {
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..1000 {
            let base = &bases[rng.random_range(0usize..bases.len())];
            let mut bytes = base.clone();
            let class = rng.random_range(0u32..6);
            match class {
                // Random distinct-byte flips anywhere in the frame.
                0 => {
                    let flips = rng.random_range(1usize..5);
                    let mut seen = std::collections::HashSet::new();
                    for _ in 0..flips {
                        let at = rng.random_range(0usize..bytes.len());
                        if seen.insert(at) {
                            bytes[at] ^= rng.random_range(1u32..256) as u8;
                        }
                    }
                }
                // Overwrite the payload-length field — the allocation
                // attack surface.
                1 => {
                    let old = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u32..u32::MAX));
                    bytes[6..10].copy_from_slice(&new.to_le_bytes());
                }
                // Truncation at a random point.
                2 => {
                    let keep = rng.random_range(0usize..bytes.len());
                    bytes.truncate(keep);
                }
                // Extension with random junk (stream framing must stop at
                // the declared length).
                3 => {
                    let extra = rng.random_range(1usize..64);
                    for _ in 0..extra {
                        bytes.push(rng.random_range(0u32..256) as u8);
                    }
                }
                // Rewrite the checksum trailer.
                4 => {
                    let at = bytes.len() - TRAILER_LEN;
                    let old = u64::from_le_bytes(bytes[at..].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u64..u64::MAX));
                    bytes[at..].copy_from_slice(&new.to_le_bytes());
                }
                // Short garbage that never saw an encoder.
                _ => {
                    let len = rng.random_range(0usize..64);
                    bytes = (0..len)
                        .map(|_| rng.random_range(0u32..256) as u8)
                        .collect();
                }
            }
            if bytes == *base {
                continue; // Mutation was a no-op (possible only for class 0).
            }

            let slice = decode_frame(&bytes);
            let stream = read_frame(&mut &bytes[..]);
            if class == 3 {
                // Junk after a complete frame is the next frame's problem:
                // both decoders must return exactly the original payload.
                let (payload, consumed) = slice.expect("extended frame keeps its valid prefix");
                assert_eq!(consumed, base.len(), "seed {seed:#x} case {case}");
                assert_eq!(payload, &base[HEADER_LEN..base.len() - TRAILER_LEN]);
                assert_eq!(stream.as_deref(), Ok(payload), "seed {seed:#x} case {case}");
            } else {
                assert!(
                    slice.is_err(),
                    "seed {seed:#x} case {case}: mutated frame decoded"
                );
                assert!(
                    stream.is_err(),
                    "seed {seed:#x} case {case}: mutated stream decoded"
                );
            }

            // Message-level: whatever the mutation did to the payload
            // region, the message decoder must return (never panic or
            // over-allocate). A decode success is acceptable — e.g. a tag
            // flip between two fixed-layout messages — as long as the
            // result re-encodes cleanly.
            if bytes.len() >= HEADER_LEN + TRAILER_LEN {
                let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
                if let Ok(msg) = Message::decode(payload) {
                    let _ = msg.encode();
                }
            }
        }
    }
}

/// A frame claiming a `u32::MAX` (or any oversize) payload is rejected by
/// header validation alone — before any allocation or read.
#[test]
fn oversize_length_claims_are_rejected_without_allocation() {
    for claim in [MAX_FRAME_PAYLOAD as u32 + 1, u32::MAX / 2, u32::MAX] {
        let mut frame = Vec::new();
        frame.extend_from_slice(b"CBNF");
        frame.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        frame.extend_from_slice(&claim.to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]); // Far less than claimed.
        assert!(
            matches!(decode_frame(&frame), Err(e) if format!("{e}").contains(&claim.to_string())),
            "claim {claim} must be rejected as oversize"
        );
        assert!(read_frame(&mut &frame[..]).is_err());
    }
}

// ---------------------------------------------------------------------------
// Loopback vs TCP parity
// ---------------------------------------------------------------------------

fn eval_corpus() -> (Vec<Vec<u32>>, Vec<u32>) {
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let chunks: Vec<Vec<u32>> = (0..8)
        .map(|i| {
            vec![
                v.id(Entity(i as u32)),
                v.id(Attr(i as u32 % 8)),
                v.id(Value(i as u32 * 2)),
                v.id(Sep),
            ]
        })
        .collect();
    let q = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(3)), v.id(QMark)];
    (chunks, q)
}

fn seeded_requests(ids: &[ChunkId], q: &[u32], n: usize) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(0x4E_E7);
    (0..n)
        .map(|_| {
            let k = rng.random_range(1usize..4);
            let set: Vec<_> = (0..k)
                .map(|_| ids[rng.random_range(0usize..ids.len())])
                .collect();
            Request::new(set, q.to_vec())
                .ratio(0.45)
                .max_new_tokens(1 + rng.random_range(0usize..4))
        })
        .collect()
}

fn tiny_service() -> EngineService {
    EngineService::new(
        EngineBuilder::new(ModelProfile::Tiny)
            .seed(11)
            .build()
            .unwrap(),
        ServiceConfig::default().workers(1).queue_capacity(32),
    )
}

/// The same seeded workload served through the in-process loopback facade
/// and through a real TCP gateway + workers + client yields identical
/// results — the transports differ only in plumbing, never in behavior.
#[test]
fn loopback_and_tcp_clusters_serve_identical_results() {
    let _guard = serial();
    let (chunks, q) = eval_corpus();

    // Loopback arm: the `ClusterService` facade.
    let loopback = ClusterService::new(vec![tiny_service(), tiny_service()]);
    let loop_ids = loopback.register_chunks(&chunks).unwrap();

    // TCP arm: gateway and two workers joined over real sockets.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let gateway = Arc::new(Gateway::new(GatewayConfig::default()));
    let acceptor = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            // Two workers + one client, then the listener closes.
            for stream in listener.incoming().take(3) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                gateway.accept(Arc::new(t)).unwrap();
            }
        })
    };
    let _workers: Vec<Worker> = (0..2)
        .map(|_| {
            Worker::start(
                Arc::new(tiny_service()),
                Arc::new(TcpTransport::connect(addr).unwrap()),
                WorkerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    wait_until("both workers attached", || gateway.n_workers() == 2);
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).unwrap())).unwrap();
    acceptor.join().unwrap();

    // Content-addressed registration must agree on ids across transports.
    let tcp_ids: Vec<ChunkId> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).unwrap())
        .collect();
    assert_eq!(
        loop_ids, tcp_ids,
        "chunk ids are content-addressed, transport-independent"
    );

    for (i, req) in seeded_requests(&loop_ids, &q, 12).into_iter().enumerate() {
        let a = loopback.submit(req.clone()).expect("loopback serves");
        let b = client.submit(&req).expect("tcp serves");
        assert_eq!(
            (a.answer, a.recompute_ratio, a.blend.stats.ctx_len),
            (b.answer, b.recompute_ratio, b.blend.stats.ctx_len),
            "request {i} diverged between loopback and TCP"
        );
    }
    let (healthy, probes) = client.cluster_status().unwrap();
    assert_eq!(healthy, vec![true, true]);
    assert_eq!(probes.len(), 2);
}

// ---------------------------------------------------------------------------
// Partition failover
// ---------------------------------------------------------------------------

/// A worker that stops heartbeating is marked down exactly once (the
/// idempotent-failover regression: continued silence and mid-probe
/// recovery must not re-count), new requests route around it without a
/// loss, and a resumed heartbeat restores it.
#[test]
fn heartbeat_partition_fails_over_once_and_loses_no_requests() {
    let _guard = serial();
    let gateway =
        Gateway::new(GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400)));
    let workers: Vec<Worker> = (0..2)
        .map(|_| {
            let (worker_end, gateway_end) = loopback_pair();
            let worker = Worker::start(
                Arc::new(tiny_service()),
                Arc::new(worker_end),
                WorkerConfig::default().heartbeat_interval(Duration::from_millis(20)),
            )
            .unwrap();
            gateway.attach(Arc::new(gateway_end)).unwrap();
            worker
        })
        .collect();
    let (chunks, q) = eval_corpus();
    let ids = gateway.register_chunks(&chunks).unwrap();
    let requests = seeded_requests(&ids, &q, 6);

    // Healthy baseline.
    gateway
        .submit(requests[0].clone())
        .expect("healthy cluster serves");
    assert_eq!(gateway.stats().failovers, 0);

    // Partition worker 0: it keeps serving, the gateway just hears silence.
    workers[0].pause_heartbeats(true);
    wait_until("worker 0 marked down", || !gateway.worker_healthy(0));
    assert_eq!(gateway.stats().failovers, 1, "one down-edge, one failover");

    // The partitioned worker is unreachable for routing but not crashed:
    // work already pinned to it still completes.
    gateway
        .submit_to(0, requests[0].clone())
        .collect()
        .expect("pinned request survives");

    // Regression: continued silence re-observes the same down state every
    // sweep — the counter must not move.
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        gateway.stats().failovers,
        1,
        "re-observed outage must not re-count"
    );

    // New submissions all route to the healthy worker; none are lost.
    let before = gateway.stats().admissions;
    let streams: Vec<_> = requests
        .iter()
        .map(|r| {
            gateway
                .submit_stream(r.clone())
                .expect("one healthy worker remains")
        })
        .collect();
    for s in streams {
        s.collect().expect("rerouted request serves");
    }
    let after = gateway.stats().admissions;
    assert_eq!(
        after[0], before[0],
        "no admission reaches the partitioned worker"
    );
    assert_eq!(
        after[1],
        before[1] + requests.len() as u64,
        "every request lands on worker 1"
    );

    // Recovery is not a failover.
    workers[0].pause_heartbeats(false);
    wait_until("worker 0 recovered", || gateway.worker_healthy(0));
    assert_eq!(
        gateway.stats().failovers,
        1,
        "recovery must not count as a failover"
    );

    // A second partition is a second edge — counted exactly once more.
    workers[0].pause_heartbeats(true);
    wait_until("worker 0 down again", || !gateway.worker_healthy(0));
    assert_eq!(gateway.stats().failovers, 2);
}

// ---------------------------------------------------------------------------
// Error detail across the wire
// ---------------------------------------------------------------------------

/// An engine-side failure keeps its structured code and detail through
/// the worker → gateway → collect() relay: the offending chunk id of an
/// `UnknownChunk` survives the wire intact.
#[test]
fn error_detail_survives_the_wire() {
    let _guard = serial();
    let cluster = ClusterService::new(vec![tiny_service()]);
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let bogus = ChunkId(0xDEAD_BEEF_CAFE);
    let err = cluster
        .submit(
            Request::new(vec![bogus], vec![v.id(Query), v.id(QMark)])
                .ratio(0.45)
                .max_new_tokens(2),
        )
        .expect_err("unregistered chunk must fail");
    assert_eq!(
        err,
        EngineError::UnknownChunk(bogus),
        "the failing chunk id must survive worker → gateway → client"
    );
}

// ---------------------------------------------------------------------------
// Survivability: re-attach, mid-stream retry, standby takeover
// ---------------------------------------------------------------------------

fn healthy_probe() -> ServiceProbe {
    ServiceProbe {
        queue_depth: 0,
        queue_capacity: 32,
        inflight: 0,
        workers: 1,
        shutdown: false,
    }
}

/// The full scripted stream for one request whose answer is `answer`:
/// the deterministic event sequence a scripted worker replays, so kill
/// positions and bit-identity are exact rather than timing-dependent.
fn scripted_events(answer: &[u32]) -> Vec<WireEvent> {
    let mut evs = vec![
        WireEvent::Queued,
        WireEvent::Admitted,
        WireEvent::FirstToken(WireTtft::default()),
    ];
    evs.extend(answer.iter().map(|&t| WireEvent::Token(t)));
    evs.push(WireEvent::Done(WireResponse {
        answer: answer.to_vec(),
        ttft: WireTtft::default(),
        recompute_ratio: 0.45,
        chunk_sources: vec![None],
        ctx_len: 8,
        suffix_len: 4,
        selected_per_layer: vec![2, 2, 2, 2],
        first_layer_deviations: vec![0.0],
    }));
    evs
}

/// Spawns a scripted worker on `conn`: hellos as (`id`, `incarnation`),
/// then answers every submission with `events` — except that during the
/// **first** submission it dies (drops the connection, which the gateway
/// observes as a worker death) after sending `kill_after` frames, if set.
/// `kill_after == events.len()` means it completes the stream and *then*
/// dies.
fn scripted_worker(
    conn: LoopbackTransport,
    id: u64,
    incarnation: u64,
    events: Vec<WireEvent>,
    kill_after: Option<usize>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        conn.send(&Message::HelloWorker {
            id,
            incarnation,
            probe: healthy_probe(),
            stats: ServiceStats::default(),
        })
        .expect("scripted hello");
        let mut first = true;
        while let Ok(msg) = conn.recv() {
            match msg {
                Message::Submit { id: req, .. } => {
                    let kill = if first { kill_after } else { None };
                    first = false;
                    for (i, ev) in events.iter().enumerate() {
                        if kill == Some(i) {
                            return; // Dropping `conn` = sudden death.
                        }
                        let frame = Message::Ev {
                            id: req,
                            trace: 0,
                            event: ev.clone(),
                        };
                        if conn.send(&frame).is_err() {
                            return;
                        }
                    }
                    if kill == Some(events.len()) {
                        return; // Completed the stream, then died.
                    }
                }
                Message::Status { rpc } => {
                    let _ = conn.send(&Message::StatusReply {
                        rpc,
                        probe: healthy_probe(),
                        stats: ServiceStats::default(),
                    });
                }
                Message::Shutdown => return,
                _ => {}
            }
        }
    })
}

/// The mid-stream retry property, fuzzed across **every** kill position:
/// whatever event the dying worker last delivered (nothing, `Queued`,
/// `Admitted`, `FirstToken`, any `Token(k)`, or the full stream through
/// `Done`), the collected stream is bit-identical to the no-failure run —
/// no duplicated or dropped token, every control event exactly once, one
/// terminal — and the journal entry is retired after exactly one retry
/// (zero when the death came after `Done`).
#[test]
fn mid_stream_kill_at_every_event_position_never_dups_or_drops_tokens() {
    let _guard = serial();
    for seed in [0xC1u64, 0xC2, 0xC3] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let answer: Vec<u32> = (0..4).map(|_| rng.random_range(1u32..500)).collect();
        let events = scripted_events(&answer);
        for kill_after in 0..=events.len() {
            let gateway = Arc::new(Gateway::new(
                GatewayConfig::default()
                    .retry(RetryPolicy::default().backoff_base(Duration::from_millis(1))),
            ));
            let (killer_end, gw_a) = loopback_pair();
            let (survivor_end, gw_b) = loopback_pair();
            let killer = scripted_worker(killer_end, 0xDEAD, 1, events.clone(), Some(kill_after));
            let survivor = scripted_worker(survivor_end, 0xBEEF, 1, events.clone(), None);
            assert_eq!(gateway.attach(Arc::new(gw_a)).unwrap(), 0);
            assert_eq!(gateway.attach(Arc::new(gw_b)).unwrap(), 1);

            let request = Request::new(vec![ChunkId(7)], vec![1, 2, 3]).max_new_tokens(4);
            let stream = gateway.submit_to(0, request);
            let mut control = [0u32; 3];
            let mut tokens = Vec::new();
            let mut answers = Vec::new();
            while let Some(ev) = stream.recv() {
                match ev {
                    Event::Queued => control[0] += 1,
                    Event::Admitted => control[1] += 1,
                    Event::FirstToken(_) => control[2] += 1,
                    Event::Token(t) => tokens.push(t),
                    Event::Done(r) => answers.push(r.answer),
                    Event::Failed(e) => {
                        panic!("seed {seed:#x} kill@{kill_after}: request failed: {e}")
                    }
                }
            }
            assert_eq!(
                control,
                [1, 1, 1],
                "seed {seed:#x} kill@{kill_after}: every control event exactly once"
            );
            assert_eq!(
                tokens, answer,
                "seed {seed:#x} kill@{kill_after}: token stream must be bit-identical \
                 to the no-failure run"
            );
            assert_eq!(
                answers.len(),
                1,
                "seed {seed:#x} kill@{kill_after}: exactly one terminal (journal retired once)"
            );
            assert_eq!(answers[0], answer, "seed {seed:#x} kill@{kill_after}");
            let expected = u64::from(kill_after < events.len());
            assert_eq!(
                gateway.stats().retries,
                expected,
                "seed {seed:#x} kill@{kill_after}: a mid-stream death costs exactly one \
                 retry, a post-terminal death costs none"
            );
            drop(gateway);
            killer.join().unwrap();
            survivor.join().unwrap();
        }
    }
}

/// Re-attach semantics at the gateway boundary: a hello carrying an
/// incarnation at or below the slot's current one is rejected with a
/// named error and changes nothing; a strictly higher incarnation adopts
/// the **old** slot (same index, roster does not grow) and serves.
#[test]
fn stale_incarnation_hellos_are_rejected_and_newer_ones_adopt() {
    let _guard = serial();
    let gateway = Gateway::new(GatewayConfig::default());
    let events = scripted_events(&[5, 6]);
    let (w1, g1) = loopback_pair();
    let h1 = scripted_worker(w1, 0x1D, 3, events.clone(), None);
    assert_eq!(gateway.attach(Arc::new(g1)).unwrap(), 0);

    // Equal and lower incarnations are stale: rejected, roster unchanged.
    for stale in [3u64, 2] {
        let (w2, g2) = loopback_pair();
        w2.send(&Message::HelloWorker {
            id: 0x1D,
            incarnation: stale,
            probe: healthy_probe(),
            stats: ServiceStats::default(),
        })
        .unwrap();
        let err = gateway
            .attach(Arc::new(g2))
            .expect_err("a stale incarnation must be rejected");
        assert!(
            format!("{err}").contains("stale hello"),
            "rejection must say why: {err}"
        );
    }
    assert_eq!(
        gateway.n_workers(),
        1,
        "rejected hellos must not grow the roster"
    );
    assert_eq!(gateway.stats().adoptions, 0);

    // A strictly higher incarnation adopts the old slot in place.
    let (w3, g3) = loopback_pair();
    let h3 = scripted_worker(w3, 0x1D, 4, events, None);
    assert_eq!(
        gateway.attach(Arc::new(g3)).unwrap(),
        0,
        "re-attach must adopt the old slot, not append"
    );
    assert_eq!(gateway.n_workers(), 1);
    assert_eq!(gateway.stats().adoptions, 1);
    let resp = gateway
        .submit_to(0, Request::new(vec![ChunkId(1)], vec![1]).max_new_tokens(2))
        .collect()
        .expect("the adopted slot serves");
    assert_eq!(resp.answer, vec![5, 6]);
    drop(gateway);
    h1.join().unwrap();
    h3.join().unwrap();
}

/// RPC timeouts surface as structured errors naming the RPC and the
/// destination worker — not a bare "timed out".
#[test]
fn rpc_timeouts_name_the_rpc_and_destination() {
    let _guard = serial();
    let gateway = Gateway::new(
        GatewayConfig::default()
            .retry(RetryPolicy::default().rpc_timeout(Duration::from_millis(50))),
    );
    // A worker that hellos and then ignores everything.
    let (w, g) = loopback_pair();
    w.send(&Message::HelloWorker {
        id: 0x77,
        incarnation: 1,
        probe: healthy_probe(),
        stats: ServiceStats::default(),
    })
    .unwrap();
    gateway.attach(Arc::new(g)).unwrap();
    let err = gateway
        .register_chunk(&[1, 2, 3])
        .expect_err("an unanswered RPC must time out");
    let text = format!("{err}");
    assert!(
        text.contains("RegisterChunk") && text.contains("worker 0"),
        "the timeout must name the RPC and its destination, got: {text}"
    );
    drop(w);
}

/// A worker process dying abruptly over real TCP — mid-request, with one
/// request admitted and another queued behind it — is invisible to the
/// collectors: both stranded requests are transparently retried on the
/// surviving worker (exactly once each) and the answer is bit-identical
/// to the no-failure baseline.
#[test]
fn tcp_worker_death_mid_stream_is_invisible_to_the_collector() {
    let _guard = serial();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let gateway = Arc::new(Gateway::new(
        GatewayConfig::default()
            .retry(RetryPolicy::default().backoff_base(Duration::from_millis(1))),
    ));
    let acceptor = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                gateway.accept(Arc::new(t)).unwrap();
            }
        })
    };
    // Keep a handle on worker 0's transport: `shutdown()` severs the
    // socket exactly as a SIGKILL would.
    let w0_conn = Arc::new(TcpTransport::connect(addr).unwrap());
    let w0_dyn: Arc<dyn Transport> = w0_conn.clone();
    let _w0 = Worker::start(Arc::new(tiny_service()), w0_dyn, WorkerConfig::default()).unwrap();
    let _w1 = Worker::start(
        Arc::new(tiny_service()),
        Arc::new(TcpTransport::connect(addr).unwrap()),
        WorkerConfig::default(),
    )
    .unwrap();
    wait_until("both workers attached", || gateway.n_workers() == 2);
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).unwrap())).unwrap();
    acceptor.join().unwrap();

    let (chunks, q) = eval_corpus();
    let ids: Vec<ChunkId> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).unwrap())
        .collect();
    let target_req = Request::new(vec![ids[0], ids[3]], q.clone())
        .ratio(0.45)
        .max_new_tokens(6);
    let baseline = client.submit(&target_req).expect("no-failure baseline");

    // A long-context blocker pins worker 0's single scheduler thread so
    // the kill deterministically lands while the target is still owed.
    let mut big_q = Vec::new();
    while big_q.len() < 768 {
        big_q.extend_from_slice(&q);
    }
    let blocker_req = Request::new(vec![ids[1]], big_q)
        .ratio(0.45)
        .max_new_tokens(4);
    let blocker = gateway.submit_to(0, blocker_req);
    loop {
        match blocker.recv() {
            Some(Event::Admitted) => break, // Worker 0 is now busy with it.
            Some(_) => {}
            None => panic!("blocker stream ended before admission"),
        }
    }
    let target = gateway.submit_to(0, target_req.clone());
    loop {
        match target.recv() {
            Some(Event::Queued) => break, // Queued behind the blocker.
            Some(_) => {}
            None => panic!("target stream ended before queueing"),
        }
    }
    w0_conn.shutdown(); // The kill.

    let served = target.collect().expect("target survives the worker death");
    assert_eq!(
        served.answer, baseline.answer,
        "the retried answer must be bit-identical to the no-failure run"
    );
    blocker
        .collect()
        .expect("the in-flight blocker is retried too");
    let stats = gateway.stats();
    assert_eq!(
        stats.retries, 2,
        "both stranded requests retried exactly once each"
    );
    assert!(!gateway.worker_healthy(0), "the dead worker is marked down");
    assert!(gateway.worker_healthy(1));
}

/// The warm-standby mirror and loopback takeover: a standby converges on
/// the primary's roster/chunks/journal, detects the primary's death,
/// resumes with the same slot order (chunk homes unchanged), and serves
/// the next request after the workers re-attach and adopt — with zero
/// lost chunk registrations.
#[test]
fn standby_mirrors_and_takes_over_without_losing_chunks() {
    let _guard = serial();
    let cfg = GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400));
    let primary = Gateway::new(cfg);
    let services: Vec<Arc<EngineService>> = (0..2).map(|_| Arc::new(tiny_service())).collect();
    let worker_ids = [0xAu64, 0xB];
    let _workers: Vec<Worker> = (0..2)
        .map(|i| {
            let (worker_end, gateway_end) = loopback_pair();
            let w = Worker::start(
                Arc::clone(&services[i]),
                Arc::new(worker_end),
                WorkerConfig::default()
                    .identity(worker_ids[i], 1)
                    .heartbeat_interval(Duration::from_millis(20)),
            )
            .unwrap();
            primary.attach(Arc::new(gateway_end)).unwrap();
            w
        })
        .collect();
    let (chunks, q) = eval_corpus();
    let ids = primary.register_chunks(&chunks).unwrap();
    let homes: Vec<usize> = ids.iter().map(|&id| primary.home_of(id)).collect();
    let request = seeded_requests(&ids, &q, 1).remove(0);
    let baseline = primary.submit(request.clone()).expect("primary serves");

    // Subscribe the standby and let the mirror converge.
    let (standby_end, primary_end) = loopback_pair();
    let mut standby = Standby::connect(Arc::new(standby_end), cfg).unwrap();
    primary.accept(Arc::new(primary_end)).unwrap();
    standby.pump_for(Duration::from_millis(250));
    assert!(standby.primary_alive());
    assert_eq!(standby.n_chunks(), chunks.len(), "chunk registry mirrored");
    assert_eq!(
        standby.roster(),
        &[(0xA, 1), (0xB, 1)],
        "worker roster mirrored in slot order"
    );
    assert_eq!(
        standby.journal_len(),
        0,
        "completed requests must be retired from the mirrored journal"
    );

    // Kill the primary. The standby sees the connection close and
    // promotes itself with the mirrored state.
    let waiter = std::thread::spawn(move || standby.wait_takeover());
    drop(primary);
    let promoted = Arc::new(waiter.join().unwrap());
    assert_eq!(promoted.stats().takeovers, 1);
    assert_eq!(
        promoted.n_workers(),
        2,
        "the inherited roster is materialized as placeholder slots"
    );
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            promoted.home_of(id),
            homes[i],
            "chunk homes must survive the takeover unchanged"
        );
    }
    assert!(
        !promoted.worker_healthy(0) && !promoted.worker_healthy(1),
        "placeholder slots are unhealthy until their workers re-attach"
    );

    // Workers re-attach (reverse order, to prove the index comes from the
    // identity, not the attach order) and adopt their old slots.
    let _readopted: Vec<Worker> = [1usize, 0]
        .into_iter()
        .map(|i| {
            let (worker_end, gateway_end) = loopback_pair();
            let w = Worker::start(
                Arc::clone(&services[i]),
                Arc::new(worker_end),
                WorkerConfig::default()
                    .identity(worker_ids[i], 2)
                    .heartbeat_interval(Duration::from_millis(20)),
            )
            .unwrap();
            assert_eq!(
                promoted.attach(Arc::new(gateway_end)).unwrap(),
                i,
                "each worker must adopt its original slot"
            );
            w
        })
        .collect();
    assert_eq!(promoted.stats().adoptions, 2);

    // The very next request serves — the engines kept every registered
    // chunk, so nothing needs re-registration.
    let resumed = promoted
        .submit(request)
        .expect("the promoted gateway serves the next request");
    assert_eq!(
        resumed.answer, baseline.answer,
        "zero lost chunk registrations: the answer matches the pre-death run"
    );
}

/// The full TCP failover story: a primary gateway, a standby, two
/// workers, and a client holding an ordered endpoint list. The primary
/// dies; the standby takes over on the second endpoint; the workers
/// re-attach with bumped incarnations and adopt; the client reconnects
/// by itself and its next request serves with a bit-identical answer.
#[test]
fn client_resumes_onto_promoted_standby_over_tcp() {
    let _guard = serial();
    let cfg = GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400));
    let listener1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr1 = listener1.local_addr().unwrap();
    // Reserve the standby's future address up front so the client can
    // hold the full ordered endpoint list from the start.
    let addr2 = {
        let tmp = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        tmp.local_addr().unwrap()
    };
    let primary = Arc::new(Gateway::new(cfg));
    let acceptor = {
        let primary = Arc::clone(&primary);
        std::thread::spawn(move || {
            // Two workers, the standby, then the client.
            for stream in listener1.incoming().take(4) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                primary.accept(Arc::new(t)).unwrap();
            }
        })
    };
    let services: Vec<Arc<EngineService>> = (0..2).map(|_| Arc::new(tiny_service())).collect();
    let worker_ids = [0xAAu64, 0xBB];
    let _workers: Vec<Worker> = (0..2)
        .map(|i| {
            Worker::start(
                Arc::clone(&services[i]),
                Arc::new(TcpTransport::connect(addr1).unwrap()),
                WorkerConfig::default().identity(worker_ids[i], 1),
            )
            .unwrap()
        })
        .collect();
    wait_until("both workers attached", || primary.n_workers() == 2);
    let standby = Standby::connect(Arc::new(TcpTransport::connect(addr1).unwrap()), cfg).unwrap();
    let client = NetClient::connect_endpoints(
        &[addr1.to_string(), addr2.to_string()],
        RetryPolicy::default()
            .max_retries(8)
            .backoff_base(Duration::from_millis(50)),
    )
    .unwrap();
    acceptor.join().unwrap();

    let (chunks, q) = eval_corpus();
    let ids: Vec<ChunkId> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).unwrap())
        .collect();
    let request = Request::new(vec![ids[2], ids[5]], q)
        .ratio(0.45)
        .max_new_tokens(5);
    let baseline = client
        .submit(&request)
        .expect("primary serves the baseline");

    // Promote: kill the primary, wait the takeover out, then open the
    // standby's listen endpoint and let the cluster re-form on it.
    let waiter = std::thread::spawn(move || standby.wait_takeover());
    drop(primary);
    let promoted = Arc::new(waiter.join().unwrap());
    assert_eq!(promoted.stats().takeovers, 1);
    let listener2 = std::net::TcpListener::bind(addr2).expect("standby address still free");
    let acceptor2 = {
        let promoted = Arc::clone(&promoted);
        std::thread::spawn(move || {
            // Two re-attaching workers plus the resuming client.
            for stream in listener2.incoming().take(3) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                promoted.accept(Arc::new(t)).unwrap();
            }
        })
    };
    let _readopted: Vec<Worker> = (0..2)
        .map(|i| {
            Worker::start(
                Arc::clone(&services[i]),
                Arc::new(TcpTransport::connect(addr2).unwrap()),
                WorkerConfig::default().identity(worker_ids[i], 2),
            )
            .unwrap()
        })
        .collect();
    wait_until("both workers adopted their slots", || {
        promoted.worker_healthy(0) && promoted.worker_healthy(1)
    });
    assert_eq!(promoted.stats().adoptions, 2);

    // The client redials its endpoint list on its own and the next
    // request serves — same answer, zero lost chunk registrations.
    let resumed = client
        .submit(&request)
        .expect("the client's next request survives the failover");
    assert_eq!(
        resumed.answer, baseline.answer,
        "the promoted gateway must serve the same answer"
    );
    wait_until("client reconnect recorded", || client.reconnects() == 1);
    acceptor2.join().unwrap();
}

// ---------------------------------------------------------------------------
// Metrics scrape
// ---------------------------------------------------------------------------

/// A client scrape over real TCP returns the cluster-aggregated registry:
/// counter deltas match the requests this test served, the TTFT histogram
/// grows coherently, and the Prometheus rendering exposes both.
#[test]
fn tcp_scrape_aggregates_cluster_metrics() {
    let _guard = serial();
    let (chunks, q) = eval_corpus();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let gateway = Arc::new(Gateway::new(GatewayConfig::default()));
    let acceptor = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                gateway.accept(Arc::new(t)).unwrap();
            }
        })
    };
    let _workers: Vec<Worker> = (0..2)
        .map(|_| {
            Worker::start(
                Arc::new(tiny_service()),
                Arc::new(TcpTransport::connect(addr).unwrap()),
                WorkerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    wait_until("both workers attached", || gateway.n_workers() == 2);
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).unwrap())).unwrap();
    acceptor.join().unwrap();

    let _ = (&chunks, &q);
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let chunk = vec![v.id(Entity(3)), v.id(Attr(1)), v.id(Value(7)), v.id(Sep)];
    let query = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(1)), v.id(QMark)];
    let id = client.register_chunk(&chunk, true).unwrap();

    // Baseline scrape first: the registry is process-global, so only
    // deltas against it are attributable to this test.
    let before = client.scrape().expect("baseline scrape");
    let n = 5u64;
    for _ in 0..n {
        let resp = client
            .submit(
                &Request::new(vec![id], query.clone())
                    .ratio(0.45)
                    .max_new_tokens(4),
            )
            .expect("request serves");
        assert!(!resp.answer.is_empty(), "smoke-shaped request decodes");
    }
    let after = client.scrape().expect("post-run scrape");

    let delta = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before.counter(name).unwrap_or(0))
    };
    assert_eq!(delta("cb_requests_completed_total"), n, "completed delta");
    assert_eq!(delta("cb_requests_submitted_total"), n, "submitted delta");
    assert_eq!(delta("cb_requests_failed_total"), 0, "failed delta");
    assert!(delta("cb_tokens_total") > 0, "tokens delta");
    assert_eq!(
        delta("cb_gateway_requests_total"),
        n,
        "gateway request counter is scrape-exposed"
    );

    let ttft_before = before.hist("cb_ttft_seconds").map(|h| h.count).unwrap_or(0);
    let ttft = after.hist("cb_ttft_seconds").expect("ttft histogram");
    assert!(
        ttft.count >= ttft_before + n,
        "ttft histogram grew by fewer samples than requests served"
    );
    assert!(
        ttft.quantile_seconds(0.99) >= ttft.quantile_seconds(0.50)
            && ttft.quantile_seconds(0.50) > 0.0,
        "ttft percentiles incoherent"
    );

    // Scraping twice back-to-back must not double-count: the worker-side
    // publishes are deltas against their previous snapshot.
    let again = client.scrape().expect("idempotent scrape");
    assert_eq!(
        again.counter("cb_requests_completed_total"),
        after.counter("cb_requests_completed_total"),
        "an idle re-scrape must not inflate counters"
    );

    let text = after.to_prometheus();
    assert!(
        text.contains("cb_requests_completed_total"),
        "prom counters"
    );
    assert!(
        text.contains("# TYPE cb_ttft_seconds summary"),
        "prom histogram summary"
    );
    assert!(
        text.contains("cb_ttft_seconds{quantile=\"0.99\"}"),
        "prom quantile lines"
    );
}
