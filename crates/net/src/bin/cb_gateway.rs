//! `cb_gateway`: the cluster coordinator process. Listens for worker and
//! client connections, routes submissions by chunk locality, and (with
//! `--smoke`) self-checks one request end-to-end through a real TCP
//! client session, exiting 0 on success.
//!
//! ```text
//! cb_gateway --listen 127.0.0.1:7070 --expect-workers 2 [--smoke]
//! ```
//!
//! CI runs the smoke as: start `cb_gateway … --smoke` plus two
//! `cb_worker` processes, then wait on the gateway's exit status.

use cb_core::engine::Request;
use cb_net::client::NetClient;
use cb_net::gateway::{Gateway, GatewayConfig};
use cb_net::tcp::TcpTransport;
use cb_tokenizer::{TokenKind, Vocab};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: cb_gateway --listen ADDR [--expect-workers N] [--smoke]");
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut expect = 1usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--expect-workers" => {
                expect = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("cb_gateway: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = listener.local_addr().expect("bound address");
    eprintln!("cb_gateway: listening on {addr}");

    let gateway = Arc::new(Gateway::new(GatewayConfig::default()));
    {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                match TcpTransport::from_stream(stream) {
                    Ok(t) => match gateway.accept(Arc::new(t)) {
                        Ok(accepted) => eprintln!("cb_gateway: accepted {accepted:?}"),
                        Err(e) => eprintln!("cb_gateway: rejected connection: {e}"),
                    },
                    Err(e) => eprintln!("cb_gateway: connection setup failed: {e}"),
                }
            }
        });
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    while gateway.n_workers() < expect {
        if Instant::now() > deadline {
            eprintln!(
                "cb_gateway: only {}/{} workers attached within 60s",
                gateway.n_workers(),
                expect
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cb_gateway: {} workers attached", gateway.n_workers());

    if !smoke {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Smoke: drive one request through a real client connection — the
    // exact path an external process uses.
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).expect("self-connect")))
        .expect("client handshake");
    let v = Vocab::default_eval();
    let chunk = vec![
        v.id(TokenKind::Entity(3)),
        v.id(TokenKind::Attr(1)),
        v.id(TokenKind::Value(7)),
        v.id(TokenKind::Sep),
    ];
    let id = client
        .register_chunk(&chunk, true)
        .expect("chunk registers cluster-wide");
    let query = vec![
        v.id(TokenKind::Query),
        v.id(TokenKind::Entity(3)),
        v.id(TokenKind::Attr(1)),
        v.id(TokenKind::QMark),
    ];
    let resp = client
        .submit(&Request::new(vec![id], query).ratio(0.45).max_new_tokens(4))
        .expect("smoke request completes");
    assert!(!resp.answer.is_empty(), "smoke request produced no tokens");
    let (healthy, _) = client.cluster_status().expect("status RPC");
    assert!(
        healthy.iter().all(|&h| h),
        "all workers healthy after smoke"
    );
    println!(
        "cb_gateway smoke OK: {} workers, {} answer tokens, ttft {:?}",
        healthy.len(),
        resp.answer.len(),
        resp.ttft.total
    );
    drop(client);
    // Process exit closes every worker connection; workers observe the
    // close and exit on their own.
}
