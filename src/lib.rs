//! # CacheBlend (Rust reproduction)
//!
//! A from-scratch Rust reproduction of *CacheBlend: Fast Large Language Model
//! Serving for RAG with Cached Knowledge Fusion* (Yao et al., EuroSys 2025).
//!
//! This facade crate re-exports the workspace crates:
//!
//! - [`tensor`] — dense f32 kernels (matmul, softmax, RoPE, statistics).
//! - [`tokenizer`] — structured vocabulary and token codes.
//! - [`model`] — the from-scratch transformer with full/prefix/selective
//!   prefill and the compiled cross-chunk recall program.
//! - [`kv`] — the KV cache store: hashing, serialization with per-layer
//!   checksums, the tiered RAM↔disk LRU store, and layer-granular
//!   prefetch.
//! - [`storage`] — storage device models, delay/cost estimators, and the
//!   real byte backends (RAM map, persistent disk segments).
//! - [`blend`] — the CacheBlend fusor, loading controller, pipeline, the
//!   request-oriented [`engine`], and the streaming [`scheduler`]
//!   ([`EngineService`](cb_core::scheduler::EngineService)).
//! - [`baselines`] — full recompute, prefix caching, full KV reuse,
//!   MapReduce, MapRerank.
//! - [`rag`] — chunking, embeddings, vector index, synthetic datasets,
//!   F1/Rouge-L metrics.
//! - [`serving`] — discrete-event serving simulator and threaded pipeline.
//!
//! Most programs only need the [`engine`] front door:
//!
//! ```
//! use cacheblend::prelude::*;
//!
//! let engine = EngineBuilder::new(ModelProfile::Tiny)
//!     .build()
//!     .expect("engine");
//! let v = engine.model().cfg.vocab.clone();
//! use cacheblend::tokenizer::TokenKind::*;
//! let chunk = engine
//!     .register_chunk(&[v.id(Entity(5)), v.id(Attr(0)), v.id(Value(1)), v.id(Sep)])
//!     .unwrap();
//! let response = engine
//!     .submit(Request::new(
//!         vec![chunk],
//!         vec![v.id(Query), v.id(Entity(5)), v.id(Attr(0)), v.id(QMark)],
//!     ))
//!     .unwrap();
//! assert!(!response.answer.is_empty());
//! ```
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory
//! and per-experiment index.

pub use cb_baselines as baselines;
pub use cb_core as blend;
pub use cb_kv as kv;
pub use cb_model as model;
pub use cb_net as net;
pub use cb_obs as obs;
pub use cb_rag as rag;
pub use cb_serving as serving;
pub use cb_storage as storage;
pub use cb_tensor as tensor;
pub use cb_tokenizer as tokenizer;

/// The request/response engine API (`cacheblend::engine::Engine`).
pub use cb_core::engine;

/// The streaming scheduler API (`cacheblend::scheduler::EngineService`).
pub use cb_core::scheduler;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use cb_core::{
        controller::LoadingController,
        engine::{
            DiskLayout, Engine, EngineBuilder, EngineError, Priority, Request, Response,
            StorageConfig, TierSpec, TtftBreakdown,
        },
        fusor::{BlendConfig, Fusor},
        scheduler::{EngineService, ServiceConfig, ServiceStats, TrySubmitError},
        stream::{Event, ResponseStream},
    };
    pub use cb_kv::store::{KvStore, StoreStats};
    pub use cb_model::{config::ModelProfile, model::Model};
    pub use cb_rag::{
        datasets::DatasetKind,
        metrics::{f1_score, rouge_l},
    };
    pub use cb_serving::cluster::{ClusterError, ClusterService, ClusterStats};
    pub use cb_storage::device::DeviceKind;
}
