//! Wall-clock prefill benchmarks on the tiny models: full prefill vs
//! CacheBlend's selective recompute at several ratios.
//!
//! These are *measured* (not modelled) speedups: selective recompute does
//! work proportional to the selected token count, so blend time should
//! scale down with the ratio — the computational claim behind §4.2.

use cb_core::fusor::{BlendConfig, Fusor};
use cb_kv::precompute::precompute_chunk;
use cb_model::{Model, ModelConfig, ModelProfile};
use cb_rag::datasets::{Dataset, DatasetKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (Model, Vec<Vec<u32>>, Vec<u32>) {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);
    (model, ds.chunk_tokens(&ctx), case.query.clone())
}

fn bench_full_prefill(c: &mut Criterion) {
    let (model, chunks, query) = setup();
    let mut toks = vec![model.cfg.vocab.id(cb_tokenizer::TokenKind::Bos)];
    for ch in &chunks {
        toks.extend_from_slice(ch);
    }
    toks.extend_from_slice(&query);
    let mut g = c.benchmark_group("prefill");
    g.sample_size(20);
    g.bench_function(format!("full_{}tok", toks.len()), |b| {
        b.iter(|| black_box(model.prefill(&toks)))
    });
    g.finish();
}

fn bench_selective(c: &mut Criterion) {
    let (model, chunks, query) = setup();
    let parts: Vec<_> = chunks
        .iter()
        .map(|ch| precompute_chunk(&model, ch))
        .collect();
    let mut g = c.benchmark_group("selective_recompute");
    g.sample_size(20);
    for ratio in [0.0f32, 0.15, 0.5, 1.0] {
        let fusor = Fusor::new(&model, BlendConfig::with_ratio(ratio));
        g.bench_function(format!("ratio_{:.0}pct", ratio * 100.0), |b| {
            b.iter(|| black_box(fusor.blend(parts.clone(), &query, false)))
        });
    }
    g.finish();
}

fn bench_chunk_precompute(c: &mut Criterion) {
    let (model, chunks, _) = setup();
    c.bench_function("precompute_chunk", |b| {
        b.iter(|| black_box(precompute_chunk(&model, &chunks[0])))
    });
}

fn bench_decode(c: &mut Criterion) {
    let (model, chunks, query) = setup();
    let mut toks = vec![model.cfg.vocab.id(cb_tokenizer::TokenKind::Bos)];
    for ch in &chunks {
        toks.extend_from_slice(ch);
    }
    toks.extend_from_slice(&query);
    c.bench_function("decode_4_tokens", |b| {
        b.iter_batched(
            || model.prefill(&toks),
            |(mut cache, x)| {
                let last = x.row(x.rows() - 1).to_vec();
                black_box(model.decode_greedy(&mut cache, &last, 4))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_full_prefill,
    bench_selective,
    bench_chunk_precompute,
    bench_decode
);
criterion_main!(benches);
