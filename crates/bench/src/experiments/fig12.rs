//! Figure 12 — the main result: quality vs TTFT for CacheBlend against
//! full KV recompute, prefix caching, and full KV reuse, across four
//! datasets and three models.
//!
//! Paper shape: CacheBlend's TTFT is 2.2–3.3× below full recompute and its
//! quality within ~0.02; full KV reuse is fastest but loses 0.1–0.35
//! absolute quality; prefix caching matches full-recompute quality but
//! saves only the first chunk.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_storage::device::DeviceKind;

use crate::harness::{scheme_ttft, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Figure-12 setting: 6 chunks of (paper-scale) 512 tokens, NVMe store.
pub const K: usize = 6;
/// Paper-scale tokens per chunk.
pub const CHUNK_TOKENS: usize = 512;
/// Query suffix tokens (paper scale).
pub const SUFFIX: usize = 32;
/// CacheBlend recompute ratio: the r* this reproduction calibrates from
/// its own Figure-16 sweep (the knee sits at 18 %, inside the paper's
/// 5-18 % band).
pub const RATIO: f32 = 0.18;

/// Runs the experiment and emits rows.
pub fn run() {
    let schemes = [
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
        SchemeKind::FullReuse,
        SchemeKind::CacheBlend,
    ];
    let mut rows = Vec::new();
    for exp in ExpModel::evaluation_models(11) {
        for kind in DatasetKind::all() {
            let ds = Dataset::standard(kind, 7);
            let mut ev = QualityEval::new(&exp.model);
            let full_ttft = scheme_ttft(
                &exp.perf,
                SchemeKind::FullRecompute,
                K,
                CHUNK_TOKENS,
                SUFFIX,
                DeviceKind::NvmeSsd,
                RATIO as f64,
            );
            for scheme in schemes {
                let q = ev.eval(&ds, scheme, RATIO, K, 24);
                let ttft = scheme_ttft(
                    &exp.perf,
                    scheme,
                    K,
                    CHUNK_TOKENS,
                    SUFFIX,
                    DeviceKind::NvmeSsd,
                    RATIO as f64,
                );
                rows.push(
                    Row::new("fig12")
                        .col("model", exp.perf.spec.name)
                        .col("dataset", kind.name())
                        .col("metric", kind.metric_name())
                        .col("scheme", scheme.name())
                        .num("quality", q.mean_score)
                        .num("ttft_s", ttft)
                        .num("speedup_vs_full", full_ttft / ttft),
                );
            }
        }
    }
    emit("fig12_main_quality_ttft", &rows);
}
