//! Storage device models and the CacheBlend delay/cost estimators (§5.1).
//!
//! The paper's loading controller reasons with two analytic estimators —
//! `T_recompute(r%, LLM, L) = r% × Prefill(LLM, L)` and
//! `T_load(LLM, L, device) = PerTokenKVSize(LLM) × L / Throughput(device)` —
//! plus a storage-cost estimator. This crate implements those models at
//! *paper scale*: the real Mistral-7B/Yi-34B/Llama-70B layer counts and KV
//! sizes, an A40-class GPU profile, and the device throughputs the paper
//! measures (4.8 GB/s NVMe, a 4 Gb/s slow disk, CPU RAM). The tiny
//! executable models in `cb-model` produce quality; this crate produces
//! TTFT, keeping each where it can be faithful.
//!
//! Modules:
//!
//! - [`device`] — storage device catalogue (throughput, latency, $/GB·mo).
//! - [`perf`] — paper-scale model specs, GPU profile, prefill/recompute/
//!   load delay estimators, and pipelined TTFT.

pub mod device;
pub mod perf;

pub use device::{DeviceKind, DeviceSpec};
pub use perf::{GpuSpec, PaperModel, PerfModel};
