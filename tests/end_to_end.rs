//! Cross-crate integration: dataset → store → engine submit → decode →
//! metric, compared across execution schemes.

use cacheblend::baselines::{run_full_recompute, run_full_reuse, SchemeKind};
use cacheblend::blend::engine::{Engine, EngineBuilder, Request};
use cacheblend::blend::fusor::{BlendConfig, Fusor};
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::model::{KvCache, Model, ModelConfig, ModelProfile};
use cacheblend::rag::datasets::{CaseKind, Dataset, DatasetKind};

fn model() -> Model {
    Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11))
}

fn engine() -> Engine {
    EngineBuilder::new(ModelProfile::Mistral7B)
        .build()
        .expect("engine")
}

fn parts_for(model: &Model, ds: &Dataset, ctx: &[usize]) -> Vec<KvCache> {
    ctx.iter()
        .map(|&i| precompute_chunk(model, &ds.chunks[i]))
        .collect()
}

/// Serves one case through the engine at the given ratio.
fn blend_answer(
    engine: &Engine,
    ds: &Dataset,
    ctx: &[usize],
    query: &[u32],
    ratio: f32,
) -> Vec<u32> {
    let ids = engine
        .register_chunks(&ds.chunk_tokens(ctx))
        .expect("register");
    engine
        .submit(Request::new(ids, query.to_vec()).ratio(ratio))
        .expect("submit")
        .answer
}

#[test]
fn quality_ordering_holds_end_to_end() {
    // Full recompute ≥ CacheBlend ≫ full reuse on a multi-hop dataset,
    // through retrieval, chunk caches, and decoding.
    let m = model();
    let e = engine();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let (mut full, mut blend, mut reuse) = (0.0f32, 0.0f32, 0.0f32);
    let n = 16;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.retrieve(case, 6);
        let chunks = ds.chunk_tokens(&ctx);
        full += ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        blend += ds.score(&blend_answer(&e, &ds, &ctx, &case.query, 0.18), &case.gold);
        reuse += ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
    }
    let (full, blend, reuse) = (full / n as f32, blend / n as f32, reuse / n as f32);
    assert!(full > 0.5, "full recompute too weak: {full}");
    assert!(
        blend >= full - 0.15,
        "CacheBlend lost quality: {blend} vs {full}"
    );
    assert!(
        reuse < blend - 0.1,
        "full reuse should lag: {reuse} vs {blend}"
    );
}

#[test]
fn engine_store_path_matches_in_memory_blend() {
    // The engine serves from serialized store entries; blending the same
    // chunks in memory with a hand-wired fusor must give the same answer.
    let m = model();
    let e = engine();
    let ds = Dataset::standard(DatasetKind::TwoWikiSim, 7);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);
    let a = blend_answer(&e, &ds, &ctx, &case.query, 0.3);
    let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.3));
    let b = fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8);
    assert_eq!(a, b, "store roundtrip changed the answer");
    assert!(e.store().stats().hits >= ctx.len() as u64);
}

#[test]
fn cross_chunk_cases_are_the_ones_reuse_loses() {
    let m = model();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let mut cross_gap = 0.0f32;
    let mut direct_gap = 0.0f32;
    let (mut nc, mut nd) = (0, 0);
    for case in ds.cases.iter().take(24) {
        let ctx = ds.oracle_context(case, 6);
        let chunks = ds.chunk_tokens(&ctx);
        let f = ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        let r = ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
        match case.kind {
            CaseKind::CrossChunk => {
                cross_gap += f - r;
                nc += 1;
            }
            CaseKind::Direct | CaseKind::WithinChunk => {
                direct_gap += f - r;
                nd += 1;
            }
        }
    }
    assert!(nc >= 5 && nd >= 3, "need both case kinds (got {nc}/{nd})");
    let cross_gap = cross_gap / nc as f32;
    let direct_gap = direct_gap / nd as f32;
    assert!(
        cross_gap > 0.4,
        "cross-chunk cases should show a large reuse gap: {cross_gap}"
    );
    assert!(
        direct_gap.abs() < 0.2,
        "self-contained cases should be scheme-insensitive: {direct_gap}"
    );
}

#[test]
fn blend_ratio_one_reproduces_full_prefill_on_real_data() {
    let m = model();
    let e = engine();
    let ds = Dataset::standard(DatasetKind::SamsumSim, 7);
    for case in ds.cases.iter().take(4) {
        let ctx = ds.retrieve(case, 4);
        let chunks = ds.chunk_tokens(&ctx);
        let gold_scheme = run_full_recompute(&m, &chunks, &case.query, 8).answer;
        let blend = blend_answer(&e, &ds, &ctx, &case.query, 1.0);
        assert_eq!(blend, gold_scheme, "r=1.0 must equal full prefill");
    }
}

#[test]
fn summarization_chains_degrade_gracefully() {
    // Rouge-L on chain answers: full reuse should sit strictly between 0
    // and full recompute (partial chains survive), blend close to full.
    let m = model();
    let ds = Dataset::standard(DatasetKind::MultiNewsSim, 7);
    let (mut full, mut reuse) = (0.0f32, 0.0f32);
    let n = 10;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.oracle_context(case, 4);
        let chunks = ds.chunk_tokens(&ctx);
        full += ds.score(
            &run_full_recompute(&m, &chunks, &case.query, 8).answer,
            &case.gold,
        );
        reuse += ds.score(
            &run_full_reuse(&m, parts_for(&m, &ds, &ctx), &case.query, 8, true).answer,
            &case.gold,
        );
    }
    let (full, reuse) = (full / n as f32, reuse / n as f32);
    assert!(full > 0.6, "full recompute Rouge-L too low: {full}");
    assert!(reuse < full, "reuse must lose Rouge-L: {reuse} vs {full}");
}

#[test]
fn blending_from_quantized_caches_preserves_answers() {
    // §8: KV compression is complementary — int8-stored caches quarter
    // the load bytes, and the program's decision margins absorb the
    // quantization noise. (This path stays on the hand-wired fusor: the
    // engine's store holds exact entries.)
    use cacheblend::kv::quantize::{decode_quantized, encode_quantized};
    let m = model();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let fusor = Fusor::new(&m, BlendConfig::with_ratio(0.3));
    let mut agree = 0;
    let n = 8;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.retrieve(case, 6);
        let exact = fusor.answer(parts_for(&m, &ds, &ctx), &case.query, 8);
        let quantized: Vec<KvCache> = parts_for(&m, &ds, &ctx)
            .iter()
            .map(|c| decode_quantized(encode_quantized(c)).unwrap())
            .collect();
        let q_ans = fusor.answer(quantized, &case.query, 8);
        if q_ans == exact {
            agree += 1;
        }
    }
    assert!(
        agree >= n - 1,
        "quantization flipped too many answers: {agree}/{n}"
    );
}

#[test]
fn engine_quantized_cold_tier_preserves_answers_end_to_end() {
    // The full serving path over an int8 cold tier: a RAM tier below one
    // entry pushes every registered chunk down to the quantized packed
    // log, so each submit dequantizes on the way back up. Documented
    // threshold (matches the fusor-level test above): quantization noise
    // may flip the answer on at most 1 case in 6.
    use cacheblend::blend::engine::{EngineBuilder, StorageConfig};
    use cacheblend::storage::DeviceKind;

    let dir = std::env::temp_dir().join(format!("cb-e2e-quant-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exact = engine();
    let cold = EngineBuilder::new(ModelProfile::Mistral7B)
        .storage(
            StorageConfig::default()
                .tier(DeviceKind::CpuRam, 64)
                .cold_tier(DeviceKind::NvmeSsd, 1 << 30, &dir),
        )
        .build()
        .expect("engine");
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let mut agree = 0;
    let n = 6;
    for case in ds.cases.iter().take(n) {
        let ctx = ds.retrieve(case, 6);
        let a = blend_answer(&exact, &ds, &ctx, &case.query, 0.3);
        let b = blend_answer(&cold, &ds, &ctx, &case.query, 0.3);
        if a == b {
            agree += 1;
        }
    }
    assert!(
        agree >= n - 1,
        "quantized cold tier flipped too many answers: {agree}/{n}"
    );
    let stats = cold.store().stats();
    assert!(stats.quantizations > 0, "chunks must land int8 on the log");
    assert!(
        stats.dequantizations > 0,
        "serving must transcode back to f32"
    );
    assert!(
        stats.quantize_saved_bytes > 0,
        "the cold tier must actually shrink the entries"
    );
    drop(cold);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scheme_kind_names_are_unique() {
    let names: std::collections::HashSet<_> = [
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
        SchemeKind::FullReuse,
        SchemeKind::CacheBlend,
        SchemeKind::MapReduce,
        SchemeKind::MapRerank,
    ]
    .iter()
    .map(|s| s.name())
    .collect();
    assert_eq!(names.len(), 6);
}
