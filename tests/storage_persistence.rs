//! Cross-restart integration tests of the tiered persistent KV storage:
//! an engine's KV state survives a drop/rebuild over the same cache dir,
//! recovery drops crash debris, and corrupt entries are repaired rather
//! than served.

use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn cache_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cb-persist-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_engine(dir: &std::path::Path) -> Engine {
    EngineBuilder::new(ModelProfile::Tiny)
        .blend_config(BlendConfig::with_ratio(0.45))
        .storage(
            StorageConfig::default()
                .tier(DeviceKind::CpuRam, 1 << 20)
                .disk_tier(DeviceKind::NvmeSsd, 1 << 30, dir),
        )
        .build()
        .expect("engine builds over the cache dir")
}

fn scenario(e: &Engine) -> (Vec<Vec<u32>>, Vec<u32>, u32) {
    let v = &e.model().cfg.vocab;
    let c1: Vec<u32> = [Entity(5), Attr(0), Value(1), Sep]
        .map(|k| v.id(k))
        .to_vec();
    let c2: Vec<u32> = [
        Ref,
        Attr(3),
        Value(9),
        Sep,
        Entity(8),
        Attr(1),
        Value(4),
        Sep,
    ]
    .map(|k| v.id(k))
    .to_vec();
    let q: Vec<u32> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
    (vec![c1, c2], q, v.id(Value(9)))
}

#[test]
fn engine_state_survives_restart_with_crash_debris() {
    let dir = cache_dir("restart");

    // Session 1: register, serve, persist.
    let (chunks, query, gold) = {
        let e = build_engine(&dir);
        let (chunks, query, gold) = scenario(&e);
        let ids = e.register_chunks(&chunks).unwrap();
        let resp = e
            .submit(Request::new(ids, query.clone()).max_new_tokens(4))
            .unwrap();
        assert_eq!(resp.answer, vec![gold]);
        e.persist().unwrap();
        (chunks, query, gold)
    };

    // Simulated crash debris: a torn half-written segment plus a .tmp
    // orphan. Recovery must drop both and keep the intact entries.
    let mut seg_files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    seg_files.sort();
    assert_eq!(seg_files.len(), 2, "both chunks persisted");
    let torn = &seg_files[0];
    let raw = std::fs::read(torn).unwrap();
    std::fs::write(torn, &raw[..raw.len() / 2]).unwrap();
    std::fs::write(dir.join("deadbeefdeadbeef.tmp"), b"half a segment").unwrap();

    // Session 2: rebuild. One chunk recovered, the torn one re-precomputed
    // transparently at registration; the request serves correctly.
    let e = build_engine(&dir);
    assert_eq!(e.store().len(), 1, "torn segment dropped at recovery");
    let ids = e.register_chunks(&chunks).unwrap();
    assert_eq!(
        e.store().stats().inserts,
        1,
        "exactly the torn chunk was re-precomputed"
    );
    let resp = e
        .submit(Request::new(ids, query).max_new_tokens(4))
        .unwrap();
    assert_eq!(resp.answer, vec![gold], "restart must not change answers");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn service_streams_disk_resident_chunks() {
    // An EngineService whose store spills to disk: requests served through
    // the scheduler stream their KV off the disk tier via the pipelined
    // loader and still match the direct in-RAM answer.
    let dir = cache_dir("service");
    let e = build_engine(&dir);
    let (chunks, query, gold) = scenario(&e);
    let ids = e.register_chunks(&chunks).unwrap();
    e.persist().unwrap(); // push everything to the disk tier
    for &id in &ids {
        assert_eq!(e.store().tier_of(id), Some(1));
    }

    let service = EngineService::new(e, ServiceConfig::default().workers(2));
    let streams: Vec<_> = (0..6)
        .map(|_| service.submit_stream(Request::new(ids.clone(), query.clone()).max_new_tokens(4)))
        .collect();
    for s in streams {
        let resp = s.collect().expect("disk-resident request completes");
        assert_eq!(resp.answer, vec![gold]);
    }
    let stats = service.engine().store().stats();
    assert!(stats.loaded_bytes > 0, "disk tier actually served loads");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_segment_is_quarantined_and_repaired() {
    let dir = cache_dir("corrupt");
    let e = build_engine(&dir);
    let (chunks, query, gold) = scenario(&e);
    let ids = e.register_chunks(&chunks).unwrap();
    e.persist().unwrap();

    // Flip one byte deep inside a segment's layer data.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|en| en.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .unwrap();
    let mut raw = std::fs::read(&seg).unwrap();
    let n = raw.len();
    raw[n / 2] ^= 0xFF;
    std::fs::write(&seg, raw).unwrap();

    // First submit trips the checksum: unified Corrupt error, entry gone.
    let err = e
        .submit(Request::new(ids.clone(), query.clone()).max_new_tokens(4))
        .unwrap_err();
    assert!(matches!(err, EngineError::Corrupt(_)), "got {err:?}");
    assert!(e.store().len() < 2, "poisoned entry evicted");

    // Second submit repairs by re-precompute and answers correctly.
    let resp = e
        .submit(Request::new(ids, query).max_new_tokens(4))
        .unwrap();
    assert_eq!(resp.answer, vec![gold]);
    assert!(resp
        .chunk_sources
        .iter()
        .any(|s| matches!(s, cacheblend::engine::ChunkSource::Precomputed)));
    let _ = std::fs::remove_dir_all(&dir);
}
