//! Figure 14: TTFT vs request rate on the extended datasets.
//!
//! Paper shape: every scheme's TTFT blows up past its saturation rate;
//! CacheBlend's knee sits 2.8–5× further right than full recompute and
//! prefix caching.
//!
//! Two arms share one queueing loop through the [`ServingBackend`] trait:
//!
//! - **analytic** — the paper-scale delay model per scheme (the original
//!   arm; TTFTs in A40 seconds).
//! - **engine** — closed loop: every simulated request is served through a
//!   real [`EngineService`] (scheduler → tiered store → pipelined blend on
//!   the compiled tiny model) and the *measured* wall-clock TTFTs drive
//!   the same queueing model, so the saturation knee emerges from real
//!   engine latencies. The rate grid is normalized to a measured probe of
//!   the warm blend service time, mirroring how the analytic grid is
//!   normalized to the modeled full-prefill time.
//!
//! [`ServingBackend`]: cb_serving::backend::ServingBackend
//! [`EngineService`]: cb_core::scheduler::EngineService

use cb_baselines::SchemeKind;
use cb_model::ModelProfile;
use cb_serving::backend::EngineBackend;
use cb_serving::sim::{ServingConfig, Simulator};
use cb_serving::workload::{Workload, WorkloadConfig};
use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};

use crate::out::{emit, Row};

/// Which backend arm(s) to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendArm {
    /// Paper-scale delay model only (the default; what `run` does).
    Analytic,
    /// Real engine measurements only.
    Engine,
    /// Both arms.
    Both,
}

/// Experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Fig14Opts {
    /// Shrink the grids so the experiment finishes in seconds (CI smoke).
    pub smoke: bool,
    /// Backend arm selection.
    pub backend: BackendArm,
}

impl Default for Fig14Opts {
    fn default() -> Self {
        Self {
            smoke: false,
            backend: BackendArm::Analytic,
        }
    }
}

/// Runs the default (analytic, full-grid) experiment and emits rows.
pub fn run() {
    run_opts(Fig14Opts::default());
}

/// Runs the experiment with explicit options.
pub fn run_opts(opts: Fig14Opts) {
    let mut rows = Vec::new();
    if matches!(opts.backend, BackendArm::Analytic | BackendArm::Both) {
        analytic_arm(opts.smoke, &mut rows);
    }
    if matches!(opts.backend, BackendArm::Engine | BackendArm::Both) {
        engine_arm(opts.smoke, &mut rows);
    }
    emit("fig14_serving_rate", &rows);
}

fn analytic_arm(smoke: bool, rows: &mut Vec<Row>) {
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
    ];
    let models = if smoke {
        vec![PaperModel::Mistral7B]
    } else {
        PaperModel::evaluation_models().to_vec()
    };
    let mults: &[f64] = if smoke {
        &[0.5, 2.0]
    } else {
        &[0.2, 0.5, 0.8, 1.2, 2.0, 3.5, 5.0]
    };
    for pm in models {
        let perf = PerfModel::on_a40(pm);
        // Rate grid scaled to each model's service time so the knee is
        // visible for all of them.
        let full_service = perf.ttft_full_prefill(6 * 512 + 32);
        let base = 1.0 / full_service;
        for (ds_name, seed) in [("Musique-ext", 21u64), ("2WikiMQA-ext", 22u64)] {
            for &mult in mults {
                let rate = base * mult;
                let w = Workload::generate(&WorkloadConfig::extended(rate, seed));
                for scheme in schemes {
                    let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
                    let stats = Simulator::new(cfg).run(&w);
                    rows.push(
                        Row::new("fig14")
                            .col("backend", "analytic")
                            .col("model", perf.spec.name)
                            .col("dataset", ds_name)
                            .col("scheme", scheme.name())
                            .num("rate_rps", rate)
                            .num("mean_ttft_s", stats.ttft.mean_s)
                            .num("p95_ttft_s", stats.ttft.p95_s)
                            .num("hit_rate", stats.hit_rate)
                            .num("throughput_rps", stats.throughput_rps)
                            .col("peak_queue_depth", stats.peak_queue_depth)
                            .col("deadline_misses", stats.deadline_misses),
                    );
                }
            }
        }
    }
}

/// The closed-loop workload shape: smaller than the paper grid because
/// every request really runs the blend path on the compiled model.
fn engine_workload(rate: f64, n_requests: usize, seed: u64) -> Workload {
    Workload::generate(&WorkloadConfig {
        rate_per_s: rate,
        n_requests,
        n_groups: 30,
        n_chunks: 150,
        chunks_per_request: 4,
        zipf_s: 0.9,
        shuffle_order: true,
        seed,
    })
}

fn engine_arm(smoke: bool, rows: &mut Vec<Row>) {
    let n_requests = if smoke { 40 } else { 120 };
    let mults: &[f64] = if smoke {
        &[0.5, 3.0]
    } else {
        &[0.3, 0.8, 1.5, 3.0]
    };

    // Normalize the rate grid to the measured warm service time, like the
    // analytic arm normalizes to the modeled full-prefill time.
    let service_s = EngineBackend::single_worker(ModelProfile::Tiny).warm_service_time_s();
    let base = 1.0 / service_s;

    for &mult in mults {
        let rate = base * mult;
        let w = engine_workload(rate, n_requests, 23);
        // Fresh service per rate so every point starts from a cold store,
        // matching the analytic arm.
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let stats = Simulator::run_with(&w, &mut backend, Some(3.0 * service_s));
        rows.push(
            Row::new("fig14")
                .col("backend", "engine")
                .col("model", "tiny-compiled")
                .col("dataset", "Musique-ext-small")
                .col("scheme", SchemeKind::CacheBlend.name())
                .num("rate_rps", rate)
                .num("mean_ttft_s", stats.ttft.mean_s)
                .num("p95_ttft_s", stats.ttft.p95_s)
                .num("hit_rate", stats.hit_rate)
                .num("throughput_rps", stats.throughput_rps)
                .col("peak_queue_depth", stats.peak_queue_depth)
                .col("deadline_misses", stats.deadline_misses),
        );
        assert_eq!(
            backend.service().stats().completed,
            n_requests as u64,
            "every simulated request must be really served"
        );
    }
}
