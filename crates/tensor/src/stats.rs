//! Statistics used by the deviation analyses (Figures 6, 7, 8).

/// Mean of a slice; 0.0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// L2 norm of a slice.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|&v| v * v).sum::<f32>().sqrt()
}

/// L2 norm of the elementwise difference of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Fractional ranks (average rank for ties), 1-based, matching the
/// convention used by Spearman's ρ.
fn ranks(xs: &[f32]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman's rank correlation coefficient between two equal-length samples.
///
/// Returns a value in `[-1, 1]`; returns 0.0 for degenerate inputs (length
/// < 2 or zero variance). Used to reproduce Figure 8 (per-token KV deviation
/// rank similarity between adjacent layers).
pub fn spearman(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation of two f64 slices (helper for [`spearman`]).
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Empirical CDF: returns `(sorted_values, cumulative_fraction)` pairs
/// suitable for plotting Figure 7.
pub fn empirical_cdf(xs: &[f32]) -> Vec<(f32, f32)> {
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f32;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f32 / n))
        .collect()
}

/// The `q`-quantile (0.0..=1.0) of a sample by linear interpolation.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_norms() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
    }

    #[test]
    fn spearman_perfect_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_uncorrelated_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [5.0, 1.0, 8.0, 3.0, 7.0, 2.0, 6.0, 4.0];
        assert!(spearman(&a, &b).abs() < 0.5);
    }

    #[test]
    fn spearman_degenerate_inputs() {
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }
}
