//! Dense f32 tensor kernels for the CacheBlend reproduction.
//!
//! Everything in this crate is plain safe Rust operating on row-major
//! [`Matrix`] buffers. The kernels are deliberately simple (loops the
//! compiler can autovectorize) — the reproduction runs tiny model profiles on
//! a single CPU core, so clarity and determinism win over peak FLOPs.
//!
//! Modules:
//!
//! - [`matrix`] — the row-major [`Matrix`] type and matmul kernels.
//! - [`ops`] — softmax, RMSNorm, activations, masked attention helpers.
//! - [`rope`] — rotary positional embedding (RoPE) and the Appendix-A
//!   re-rotation used to relocate cached keys.
//! - [`stats`] — deviation norms, Spearman rank correlation, CDFs.

pub mod matrix;
pub mod ops;
pub mod rope;
pub mod stats;

pub use matrix::Matrix;
