//! Full KV reuse (PromptCache): concatenate independently precomputed
//! chunk caches with positional correction, recompute nothing.
//!
//! Positions are corrected with the same Appendix-A re-rotation CacheBlend
//! uses (PromptCache achieves the equivalent with dummy-prefix buffers),
//! but the cross-attention between chunks is *absent by construction*: a
//! coreference pointing into another chunk stays unresolved in the cached
//! states. Only the query suffix is computed fresh.

use cb_core::rope_align;
use cb_model::{KvCache, Model};
use cb_tokenizer::TokenId;

/// Outcome of a full-reuse run.
#[derive(Clone, Debug)]
pub struct FullReuseOutcome {
    /// The generated answer tokens.
    pub answer: Vec<TokenId>,
    /// Context tokens loaded from cache.
    pub loaded_tokens: usize,
    /// Tokens computed fresh (the query suffix only).
    pub prefilled_tokens: usize,
}

/// Fuses precomputed chunk caches by concatenation (no recompute) and
/// decodes greedily.
///
/// `rotate` enables the positional correction; disabling it is the
/// "naive reuse" ablation that additionally breaks position-sensitive
/// heads.
pub fn run_full_reuse(
    model: &Model,
    parts: Vec<KvCache>,
    query: &[TokenId],
    max_tokens: usize,
    rotate: bool,
) -> FullReuseOutcome {
    let bos = cb_kv::precompute::bos_cache(model);
    let mut segments = vec![bos];
    let mut cursor = 1usize;
    for mut p in parts {
        assert!(!p.is_empty(), "empty chunk cache");
        if rotate {
            rope_align::relocate(model, &mut p, cursor);
        } else {
            // Naive reuse: claim the positions without rotating the keys.
            let delta = cursor as i64 - p.positions[0] as i64;
            for pos in &mut p.positions {
                *pos = (*pos as i64 + delta) as usize;
            }
        }
        cursor += p.len();
        segments.push(p);
    }
    let refs: Vec<&KvCache> = segments.iter().collect();
    let mut cache = KvCache::concat(&refs);
    let loaded_tokens = cache.len();

    let suffix_pos: Vec<usize> = (cursor..cursor + query.len()).collect();
    let x = model.forward_rows(query, &suffix_pos, &mut cache, None);
    let last = x.row(x.rows() - 1).to_vec();
    let answer = model.decode_greedy(&mut cache, &last, max_tokens);
    FullReuseOutcome {
        answer,
        loaded_tokens,
        prefilled_tokens: query.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_kv::precompute::precompute_chunk;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    #[test]
    fn self_contained_facts_survive_full_reuse() {
        // The PromptCache happy path: no cross-chunk dependence.
        let m = model();
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [Entity(8), Attr(3), Value(9), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let q: Vec<TokenId> = [Query, Entity(8), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let out = run_full_reuse(&m, parts, &q, 4, true);
        assert_eq!(out.answer, vec![v.id(Value(9))]);
        assert_eq!(out.loaded_tokens, 9);
        assert_eq!(out.prefilled_tokens, 4);
    }

    #[test]
    fn cross_chunk_coreference_breaks_under_full_reuse() {
        // The Figure 3 failure: the REF fact's subject is in chunk 1.
        let m = model();
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)).to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let parts = vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let out = run_full_reuse(&m, parts, &q, 4, true);
        assert_ne!(
            out.answer,
            vec![v.id(Value(9))],
            "full reuse must lose cross-chunk attention"
        );
    }

    #[test]
    fn skipping_rotation_breaks_coreferent_queries() {
        // A coreferent query ("what is *its* attr3?") resolves its subject
        // through the recency head against *cached* entity keys. Without
        // the Appendix-A re-rotation, a chunk relocated by a large offset
        // carries stale rotations in those keys, the lookup reads wrong
        // distances, and the answer is lost — the ablation showing the
        // positional correction is load-bearing.
        let m = model();
        let v = &m.cfg.vocab;
        let mut c1: Vec<TokenId> = (0..220).map(|i| v.id(Filler((i % 30) as u32))).collect();
        c1.extend([Entity(5), Attr(0), Value(1), Sep].map(|k| v.id(k)));
        let c2: Vec<TokenId> = [Entity(8), Attr(3), Value(9), Sep]
            .map(|k| v.id(k))
            .to_vec();
        // "Q: it attr3 ?" — the subject is the most recent context entity.
        let q: Vec<TokenId> = [Query, Ref, Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let mk = || vec![precompute_chunk(&m, &c1), precompute_chunk(&m, &c2)];
        let with = run_full_reuse(&m, mk(), &q, 4, true);
        assert_eq!(with.answer, vec![v.id(Value(9))], "rotated reuse must work");
        let without = run_full_reuse(&m, mk(), &q, 4, false);
        assert_ne!(
            without.answer, with.answer,
            "stale rotations should corrupt the answer at offset ~220"
        );
    }
}
