//! Regenerates fig15 (see DESIGN.md §8 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig15::run();
}
