//! Serving-layer integration: controller decisions driving the simulator,
//! saturation/knee structure across schemes, and the closed loop between
//! the simulator and the real engine through the `ServingBackend` trait.

use cacheblend::baselines::SchemeKind;
use cacheblend::blend::controller::LoadingController;
use cacheblend::model::config::ModelProfile;
use cacheblend::serving::backend::{AnalyticBackend, EngineBackend, ServingBackend};
use cacheblend::serving::sim::{ServingConfig, Simulator};
use cacheblend::serving::workload::{Workload, WorkloadConfig};
use cacheblend::storage::device::DeviceKind;
use cacheblend::storage::perf::{PaperModel, PerfModel};

#[test]
fn controller_ratio_feeds_the_simulator_consistently() {
    // The controller's per-device ratio keeps CacheBlend's simulated TTFT
    // monotone in device speed (slower device → no faster TTFT).
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let ctl = LoadingController::new(perf);
    let w = Workload::generate(&WorkloadConfig::extended(0.2, 3));
    let mut prev = 0.0;
    for device in [DeviceKind::CpuRam, DeviceKind::NvmeSsd, DeviceKind::SlowSsd] {
        let mut cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, device);
        cfg.recompute_ratio = ctl.pick_ratio(6 * cfg.chunk_tokens, device);
        let stats = Simulator::new(cfg).run(&w);
        assert!(
            stats.ttft.mean_s + 1e-9 >= prev,
            "TTFT decreased on a slower device: {} then {}",
            prev,
            stats.ttft.mean_s
        );
        prev = stats.ttft.mean_s;
    }
}

#[test]
fn saturation_knee_ordering_matches_figure_14() {
    // At a rate chosen above full-recompute's capacity but below
    // CacheBlend's, full recompute queues unboundedly while CacheBlend
    // stays near its unloaded latency.
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let saturating = 1.2 / perf.ttft_full_prefill(6 * 512 + 32);
    let w = Workload::generate(&WorkloadConfig::extended(saturating, 9));
    let run =
        |scheme| Simulator::new(ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd)).run(&w);
    let blend = run(SchemeKind::CacheBlend);
    let full = run(SchemeKind::FullRecompute);
    let prefix = run(SchemeKind::PrefixCaching);
    assert!(full.ttft.mean_s > 3.0 * blend.ttft.mean_s);
    assert!(prefix.ttft.mean_s > blend.ttft.mean_s);
    assert!(blend.throughput_rps > full.throughput_rps);
}

#[test]
fn low_rate_ttfts_match_the_analytic_model() {
    // With no queueing, simulated mean TTFT approaches the per-request
    // delay model (cache warm ⇒ blend path, cold misses raise the mean).
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let w = Workload::generate(&WorkloadConfig::extended(0.01, 5));
    let cfg = ServingConfig::fig14(SchemeKind::FullRecompute, perf, DeviceKind::NvmeSsd);
    let stats = Simulator::new(cfg).run(&w);
    let analytic = perf.ttft_full_prefill(6 * 512 + 32);
    assert!(
        (stats.ttft.mean_s - analytic).abs() / analytic < 0.05,
        "sim {} vs model {}",
        stats.ttft.mean_s,
        analytic
    );
}

fn engine_backend() -> EngineBackend {
    EngineBackend::single_worker(ModelProfile::Tiny)
}

fn small_workload(rate: f64) -> Workload {
    Workload::generate(&WorkloadConfig {
        n_requests: 30,
        n_groups: 12,
        n_chunks: 60,
        chunks_per_request: 4,
        ..WorkloadConfig::extended(rate, 17)
    })
}

#[test]
fn both_backends_run_through_the_same_simulator_entry_point() {
    // The acceptance shape of the redesign: one `run_with`, two backends.
    let w = small_workload(0.5);
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, DeviceKind::NvmeSsd);
    let mut analytic = AnalyticBackend::new(cfg);
    let a = Simulator::run_with(&w, &mut analytic, None);
    let mut engine = engine_backend();
    let e = Simulator::run_with(&w, &mut engine, None);
    for stats in [&a, &e] {
        assert_eq!(stats.ttft.n, 30);
        assert!(stats.ttft.mean_s > 0.0);
        assert!(stats.hit_rate > 0.0);
    }
    // The engine arm really served every request through the scheduler.
    assert_eq!(engine.service().stats().completed, 30);
    assert!(engine.summary().peak_store_bytes > 0);
}

#[test]
fn engine_backend_shows_the_saturation_knee_with_real_ttfts() {
    // Probe the warm service time, then drive the same workload shape far
    // below and far above saturation: queueing must inflate the measured
    // closed-loop TTFT by a large factor past the knee.
    let service_s = engine_backend().warm_service_time_s();

    let mut cool = engine_backend();
    let lo = Simulator::run_with(&small_workload(0.2 / service_s), &mut cool, None);
    let mut hot = engine_backend();
    let hi = Simulator::run_with(&small_workload(4.0 / service_s), &mut hot, None);
    assert!(
        hi.ttft.mean_s > 2.0 * lo.ttft.mean_s,
        "no knee: unloaded {} vs saturated {}",
        lo.ttft.mean_s,
        hi.ttft.mean_s
    );
    assert!(
        hi.peak_queue_depth > lo.peak_queue_depth,
        "saturation must deepen the queue: {} vs {}",
        lo.peak_queue_depth,
        hi.peak_queue_depth
    );
}

#[test]
fn workload_reuse_drives_blend_hit_rate_above_cold_start() {
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, DeviceKind::NvmeSsd);
    let small = Workload::generate(&WorkloadConfig {
        n_requests: 40,
        ..WorkloadConfig::extended(0.2, 5)
    });
    let large = Workload::generate(&WorkloadConfig {
        n_requests: 400,
        ..WorkloadConfig::extended(0.2, 5)
    });
    let cold = Simulator::new(cfg.clone()).run(&small);
    let warm = Simulator::new(cfg).run(&large);
    assert!(
        warm.hit_rate > cold.hit_rate,
        "{} !> {}",
        warm.hit_rate,
        cold.hit_rate
    );
}
