//! Row-major dense f32 matrix and matmul kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense `f32` matrix.
///
/// `rows × cols` values stored contiguously; row `r` occupies
/// `data[r*cols .. (r+1)*cols]`. This is the only tensor type the
/// reproduction needs: vectors are `1 × n` or `n × 1` matrices, and the
/// 3-D activations of a transformer layer are handled as `(seq, dim)`
/// matrices per layer.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix containing only the rows listed in `idx`
    /// (in that order). Used by selective prefill to gather HKVD tokens.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatters the rows of `src` back into `self` at positions `idx`.
    /// The inverse of [`Matrix::gather_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `src.rows() != idx.len()` or the column counts differ.
    pub fn scatter_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(src.rows(), idx.len());
        assert_eq!(src.cols(), self.cols);
        for (s, &dst) in idx.iter().enumerate() {
            self.row_mut(dst).copy_from_slice(src.row(s));
        }
    }

    /// Matrix product `self × rhs`.
    ///
    /// Uses an ikj loop order so the inner loop streams both `rhs` rows and
    /// output rows; rustc autovectorizes this well at `-O3`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // Compiled program weights are sparse.
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// This is the attention-score kernel: `Q · Kᵀ`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Concatenates matrices vertically (stacking rows).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or `parts` is empty.
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat of zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vcat column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Returns the submatrix of columns `lo..hi` (copied).
    ///
    /// Attention slices per-head column blocks out of head-major K/V rows.
    pub fn col_block(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols);
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.data[r * self.cols + lo..r * self.cols + hi]);
        }
        out
    }

    /// Writes `src` into columns `lo..lo + src.cols()` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or the block exceeds the width.
    pub fn set_col_block(&mut self, lo: usize, src: &Matrix) {
        assert_eq!(self.rows, src.rows());
        assert!(lo + src.cols() <= self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + lo..r * self.cols + lo + src.cols()];
            dst.copy_from_slice(src.row(r));
        }
    }

    /// Returns the submatrix of rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Frobenius norm of the difference `self - rhs`.
    pub fn frobenius_distance(&self, rhs: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        let b = Matrix::from_fn(3, 5, |r, c| ((r + 2) * (c + 1)) as f32 * 0.01);
        let bt = Matrix::from_fn(5, 3, |r, c| b[(c, r)]);
        let via_t = a.matmul(&bt);
        let direct = a.matmul_transposed(&b);
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_then_scatter_roundtrips() {
        let src = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let idx = [4usize, 0, 2];
        let g = src.gather_rows(&idx);
        assert_eq!(g.row(0), src.row(4));
        assert_eq!(g.row(1), src.row(0));
        let mut dst = Matrix::zeros(5, 3);
        dst.scatter_rows(&idx, &g);
        assert_eq!(dst.row(4), src.row(4));
        assert_eq!(dst.row(0), src.row(0));
        assert_eq!(dst.row(2), src.row(2));
        assert!(dst.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vcat_stacks_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::vcat(&[&a, &b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_rows_extracts_range() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0)[0], 1.0);
        assert_eq!(s.row(1)[0], 2.0);
    }

    #[test]
    fn frobenius_distance_of_equal_is_zero() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        assert_eq!(a.frobenius_distance(&a), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }
}
