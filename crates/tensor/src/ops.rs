//! Elementwise and row-wise neural-network operations.

use crate::matrix::Matrix;

/// Numerically stable in-place softmax over a single row (slice).
///
/// Entries equal to [`f32::NEG_INFINITY`] (masked positions) receive exactly
/// zero probability. If *every* entry is masked the row becomes all zeros
/// rather than NaN, which is the behaviour selective prefill relies on for
/// empty attention windows.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Applies [`softmax_row`] to every row of `m`.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let _ = cols;
        softmax_row(m.row_mut(r));
    }
}

/// RMSNorm over each row: `x_i * g_i / rms(x)` with `rms = sqrt(mean(x^2) + eps)`.
///
/// `gain` must have length `m.cols()`.
pub fn rmsnorm_rows(m: &mut Matrix, gain: &[f32], eps: f32) {
    assert_eq!(gain.len(), m.cols(), "rmsnorm gain length mismatch");
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let ms: f32 = row.iter().map(|&v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gain.iter()) {
            *v *= inv * g;
        }
    }
}

/// SiLU (swish) activation applied in place.
pub fn silu(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        *v = *v / (1.0 + (-*v).exp());
    }
}

/// Tanh applied in place.
pub fn tanh(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        *v = v.tanh();
    }
}

/// Applies a causal mask to a `q_len × k_len` score matrix where query row
/// `i` corresponds to absolute position `q_pos[i]` and key column `j` to
/// absolute position `k_pos[j]`: entries with `k_pos[j] > q_pos[i]` are set
/// to `-inf`.
///
/// Selective prefill uses the general form: the query rows are a *subset* of
/// positions while key columns cover every position, so a plain triangular
/// mask is not enough.
pub fn causal_mask(scores: &mut Matrix, q_pos: &[usize], k_pos: &[usize]) {
    assert_eq!(scores.rows(), q_pos.len());
    assert_eq!(scores.cols(), k_pos.len());
    for (i, &qp) in q_pos.iter().enumerate() {
        let row = scores.row_mut(i);
        for (j, &kp) in k_pos.iter().enumerate() {
            if kp > qp {
                row[j] = f32::NEG_INFINITY;
            }
        }
    }
}

/// Returns the index of the maximum element of `row`.
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Returns the indices of the `k` largest elements of `vals`, sorted by
/// descending value (ties broken by lower index first).
pub fn top_k_indices(vals: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..vals.len()).collect();
    idx.sort_by(|&a, &b| {
        vals[b]
            .partial_cmp(&vals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_row(&mut row);
        assert_close(row.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_row_handles_large_values() {
        let mut row = vec![10000.0, 10001.0];
        softmax_row(&mut row);
        assert!(row.iter().all(|v| v.is_finite()));
        assert_close(row.iter().sum::<f32>(), 1.0, 1e-6);
    }

    #[test]
    fn softmax_row_masked_entries_get_zero() {
        let mut row = vec![f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY];
        softmax_row(&mut row);
        assert_eq!(row, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_row_all_masked_becomes_zero() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut row);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let mut m = Matrix::from_vec(1, 4, vec![2.0, -2.0, 2.0, -2.0]);
        rmsnorm_rows(&mut m, &[1.0; 4], 1e-6);
        let ms: f32 = m.row(0).iter().map(|&v| v * v).sum::<f32>() / 4.0;
        assert_close(ms, 1.0, 1e-4);
    }

    #[test]
    fn causal_mask_general_positions() {
        // Query rows at absolute positions 2 and 5; keys at 0..6.
        let mut s = Matrix::zeros(2, 6);
        causal_mask(&mut s, &[2, 5], &[0, 1, 2, 3, 4, 5]);
        assert_eq!(s[(0, 2)], 0.0);
        assert_eq!(s[(0, 3)], f32::NEG_INFINITY);
        assert_eq!(s[(1, 5)], 0.0);
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), 1);
    }

    #[test]
    fn top_k_orders_by_value() {
        let v = [1.0, 9.0, 5.0, 9.0, 2.0];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
    }

    #[test]
    fn top_k_k_larger_than_len() {
        let v = [1.0, 2.0];
        assert_eq!(top_k_indices(&v, 10), vec![1, 0]);
    }

    #[test]
    fn silu_matches_definition() {
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        silu(&mut m);
        assert_close(m[(0, 0)], 1.0 / (1.0 + (-1.0f32).exp()), 1e-6);
    }
}
