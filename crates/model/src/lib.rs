//! A from-scratch decoder-only transformer with a *compiled* cross-chunk
//! recall program.
//!
//! The CacheBlend reproduction cannot run Mistral-7B/Yi-34B/Llama-70B on a
//! CPU, so this crate provides the substitute the evaluation runs on: a real
//! transformer forward pass (multi-head causal attention, RoPE, residual
//! stream, MLPs, KV cache) whose weights are *constructed*, not trained, to
//! perform multi-hop associative recall over facts spread across text
//! chunks. Cross-chunk attention is mechanistically load-bearing: a
//! coreference (`REF`) fact can only be resolved by attending to a previous
//! chunk, exactly the property CacheBlend's selective KV recompute restores.
//!
//! Modules:
//!
//! - [`config`] — model configuration, residual-stream layout, and the three
//!   scaled model profiles.
//! - [`weights`] — head/MLP weight containers and noise-weight builders.
//! - [`program`] — the compiler that emits the recall program weights.
//! - [`kvcache`] — KV cache containers ([`kvcache::KvCache`]).
//! - [`model`] — the [`model::Model`] type and its forward passes (full
//!   prefill, cached-prefix extension, incremental decode, attention
//!   tracing).
//! - [`batch`] — continuous batched decode ([`batch::DecodeBatch`]):
//!   iteration-level admit/retire across many sequences, bit-identical to
//!   the sequential decode loop.

pub mod batch;
pub mod config;
pub mod kvcache;
pub mod model;
pub mod program;
pub mod scratch;
pub mod weights;

pub use batch::{DecodeBatch, FinishedSeq, SeqId};
pub use config::{ModelConfig, ModelProfile};
pub use kvcache::{KvCache, LayerKv};
pub use model::Model;
pub use scratch::{AttendScratch, HeadScratch, Scratch};
