//! Regenerates the kernel/forward-pass throughput baseline
//! (`target/experiments/BENCH_kernels.json`): prefill tokens/s, blend
//! TTFT, and decode tokens/s for the scalar / blocked / parallel arms on
//! the Small and Standard profiles. See `experiments::kernels`.
//!
//! Flags:
//!
//! - `--smoke` — shrunken sizes/repetitions (seconds, for CI).

use cb_bench::experiments::kernels::{run_opts, KernelOpts};

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    run_opts(KernelOpts { smoke });
}
