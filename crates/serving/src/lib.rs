//! Serving-layer simulation: request streams, queueing, cache-hit
//! accounting, and TTFT/throughput statistics (Figure 14).
//!
//! The quality side of the evaluation runs the tiny compiled model; the
//! *serving* side — what happens when requests arrive at rate λ against a
//! bounded KV store on a busy GPU — is a queueing question, answered here
//! with a discrete-event simulator driven by the paper-scale delay model
//! from `cb-storage`. The simulator reproduces the figure-14 mechanics:
//! Poisson arrivals, FIFO prefill admission, per-chunk cache hits with LRU
//! eviction, prefix-chain hits for the prefix-caching baseline (which must
//! store one entry per *prefix*, not per chunk — the storage blow-up §7.2
//! discusses), and pipelined load/recompute for CacheBlend.
//!
//! The simulator is generic over a [`backend::ServingBackend`]: the
//! analytic delay model prices admissions on paper-scale hardware, while
//! [`backend::EngineBackend`] serves every simulated request through a
//! real [`EngineService`](cb_core::scheduler::EngineService) and feeds the
//! *measured* blend TTFTs back into the same queueing loop — the
//! closed-loop Figure-14 arm.
//!
//! Modules:
//!
//! - [`workload`] — seeded Poisson request streams with popularity-skewed
//!   chunk reuse (the "extended dataset" construction).
//! - [`backend`] — the [`backend::ServingBackend`] trait, the analytic
//!   per-scheme service-time models, and the real-engine backend.
//! - [`sim`] — the event loop (queueing, TTFT, queue depth, deadlines).
//! - [`cluster`] — scale-*out*: the [`cluster::ClusterService`] fronting N
//!   engine replicas with chunk-locality (rendezvous) routing, queue-full
//!   spill, and health-based failover over a shared persistent tier.
//! - [`stats`] — latency summaries.

pub mod backend;
pub mod cluster;
pub mod sim;
pub mod stats;
pub mod workload;

pub use backend::{Admission, AnalyticBackend, BackendSummary, EngineBackend, ServingBackend};
pub use cluster::{ClusterError, ClusterService, ClusterStats};
pub use sim::{ServingConfig, ServingStats, Simulator};
pub use workload::{Request, Workload, WorkloadConfig};
