//! The persistent scheduler: [`EngineService`] owns a long-lived worker
//! pool over a shared [`Engine`] handle and serves streaming responses.
//!
//! Where [`Engine::submit`] is one-shot and synchronous, the service is a
//! request-lifecycle front end for continuous serving:
//!
//! - **Bounded admission queue** with two lanes ([`Priority::High`] /
//!   [`Priority::Normal`]), FIFO within a lane. A full queue pushes back:
//!   [`EngineService::try_submit_stream`] returns
//!   [`TrySubmitError::QueueFull`] (returning the request to the caller),
//!   while [`EngineService::submit_stream`] blocks until space frees.
//! - **Anti-starvation**: after [`ServiceConfig::fair_burst`] consecutive
//!   high-lane dispatches while normal work waits, the next dispatch comes
//!   from the normal lane, so neither lane starves.
//! - **Streaming**: every submission returns a [`ResponseStream`] yielding
//!   [`Event`]s (`Queued → Admitted → FirstToken → Token* → Done`);
//!   `ResponseStream::collect()` recovers the one-shot shape.
//! - **Observability**: [`ServiceStats`] counts submissions, rejections,
//!   completions, failures, TTFT-deadline misses, and the peak queue
//!   depth.
//!
//! Workers drain the queue on shutdown ([`EngineService`]'s `Drop` joins
//! them), so every accepted request reaches a terminal event as long as at
//! least one worker exists.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use cb_obs::metrics::{Counter, Histogram, Registry};
use cb_obs::trace::{Span, TraceContext};
use crossbeam::channel::{self, Sender};

use crate::engine::{Engine, EngineError, Priority, Request, Response};
use crate::stream::{Event, ResponseStream};

/// Cached handles into the process-global metrics registry. Every
/// [`EngineService`] in the process bumps the same series — the registry
/// view is the process total, while [`ServiceStats`] stays the
/// authoritative *per-service* count (cluster tests and routers read
/// those; one scrape reads these).
struct SchedObs {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    canceled: Arc<Counter>,
    deadline_misses: Arc<Counter>,
    tokens: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    ttft: Arc<Histogram>,
    ttft_load_wait: Arc<Histogram>,
    ttft_recompute: Arc<Histogram>,
    ttft_precompute: Arc<Histogram>,
    decode_token: Arc<Histogram>,
    request: Arc<Histogram>,
}

fn sched_obs() -> &'static SchedObs {
    static OBS: OnceLock<SchedObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        SchedObs {
            submitted: r.counter("cb_requests_submitted_total"),
            rejected: r.counter("cb_requests_rejected_total"),
            completed: r.counter("cb_requests_completed_total"),
            failed: r.counter("cb_requests_failed_total"),
            canceled: r.counter("cb_requests_canceled_total"),
            deadline_misses: r.counter("cb_deadline_misses_total"),
            tokens: r.counter("cb_tokens_total"),
            queue_wait: r.histogram("cb_queue_wait_seconds"),
            ttft: r.histogram("cb_ttft_seconds"),
            ttft_load_wait: r.histogram("cb_ttft_load_wait_seconds"),
            ttft_recompute: r.histogram("cb_ttft_recompute_seconds"),
            ttft_precompute: r.histogram("cb_ttft_precompute_seconds"),
            decode_token: r.histogram("cb_decode_token_seconds"),
            request: r.histogram("cb_request_seconds"),
        }
    })
}

/// Configuration of an [`EngineService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads serving the queue. `0` creates a *paused* service
    /// whose queue never drains — useful for testing admission
    /// backpressure deterministically (pair with
    /// [`EngineService::try_submit_stream`]; a blocking submit against a
    /// full paused queue would wait forever).
    pub workers: usize,
    /// Maximum requests waiting across both lanes (admitted-but-running
    /// requests do not count).
    pub queue_capacity: usize,
    /// Consecutive high-lane dispatches allowed while normal-lane work is
    /// waiting before one normal request is dispatched.
    pub fair_burst: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(4),
            queue_capacity: 64,
            fair_burst: 4,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-thread count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the admission-queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a zero-capacity queue could admit nothing).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "queue capacity must be positive");
        self.queue_capacity = n;
        self
    }

    /// Sets the anti-starvation burst length.
    pub fn fair_burst(mut self, n: usize) -> Self {
        self.fair_burst = n;
        self
    }
}

/// Error returned by [`EngineService::try_submit_stream`].
#[derive(Debug)]
pub enum TrySubmitError {
    /// The admission queue is at capacity; the request is handed back so
    /// the caller can retry, shed, or block.
    QueueFull(Request),
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::QueueFull(_) => write!(f, "admission queue is full"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// Counters of a service's lifetime (monotone; read with
/// [`EngineService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected with [`TrySubmitError::QueueFull`].
    pub rejected: u64,
    /// Requests that reached [`Event::Done`].
    pub completed: u64,
    /// Requests that reached [`Event::Failed`].
    pub failed: u64,
    /// Requests whose first token arrived after their
    /// [`Request::deadline`].
    pub deadline_misses: u64,
    /// Requests skipped because the client dropped the
    /// [`ResponseStream`] while they were still queued.
    pub canceled: u64,
    /// Highest number of requests simultaneously waiting in the queue.
    pub peak_queue_depth: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    canceled: AtomicU64,
    peak_queue_depth: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            canceled: self.canceled.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Non-blocking snapshot of a service's instantaneous load, taken with
/// [`EngineService::probe`]. Routers (the cluster front end) read these to
/// pick a replica without ever waiting on admission: the probe never
/// blocks for queue space, only for the brief scheduler mutex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceProbe {
    /// Requests waiting in the admission queue right now.
    pub queue_depth: usize,
    /// The queue's configured capacity.
    pub queue_capacity: usize,
    /// Requests admitted to a worker but not yet terminal.
    pub inflight: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// True once the service has begun shutting down.
    pub shutdown: bool,
}

impl ServiceProbe {
    /// True if a `try_submit_stream` right now would be rejected.
    pub fn queue_full(&self) -> bool {
        self.queue_depth >= self.queue_capacity
    }

    /// Requests this service currently owes (queued + in flight) — the
    /// load metric the cluster router minimizes when spilling.
    pub fn load(&self) -> usize {
        self.queue_depth + self.inflight
    }

    /// True if the service can still make progress on new work.
    pub fn healthy(&self) -> bool {
        self.workers > 0 && !self.shutdown
    }
}

/// Two FIFO lanes with a total capacity and an anti-starvation dispatch
/// rule: at most `fair_burst` consecutive high-lane pops while the normal
/// lane is non-empty.
#[derive(Debug)]
struct LaneQueue<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    capacity: usize,
    fair_burst: usize,
    high_streak: usize,
}

impl<T> LaneQueue<T> {
    fn new(capacity: usize, fair_burst: usize) -> Self {
        Self {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            capacity,
            fair_burst,
            high_streak: 0,
        }
    }

    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Enqueues into the lane for `priority`, or hands the item back when
    /// at capacity.
    fn push(&mut self, priority: Priority, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        match priority {
            Priority::High => self.high.push_back(item),
            Priority::Normal => self.normal.push_back(item),
        }
        Ok(())
    }

    /// Dispatches the next item under the fairness rule. The streak only
    /// accumulates while normal-lane work is actually waiting.
    fn pop(&mut self) -> Option<T> {
        if self.normal.is_empty() {
            self.high_streak = 0;
            return self.high.pop_front();
        }
        if self.high.is_empty() || self.high_streak >= self.fair_burst {
            self.high_streak = 0;
            return self.normal.pop_front();
        }
        self.high_streak += 1;
        self.high.pop_front()
    }
}

/// One queued request plus its event channel.
#[derive(Debug)]
struct Job {
    request: Request,
    tx: Sender<Event>,
    enqueued: Instant,
}

#[derive(Debug)]
struct SchedState {
    queue: LaneQueue<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<SchedState>,
    /// Workers wait here for jobs (or shutdown).
    jobs_cv: Condvar,
    /// Blocking submitters wait here for queue space.
    space_cv: Condvar,
    stats: AtomicStats,
    /// Jobs popped by a worker but not yet terminal (see
    /// [`ServiceProbe::inflight`]).
    inflight: AtomicU64,
}

/// The persistent streaming scheduler over an [`Engine`]. See the module
/// docs for the lifecycle; dropping the service shuts the pool down after
/// draining the queue.
#[derive(Debug)]
pub struct EngineService {
    engine: Engine,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EngineService {
    /// Starts the service: spawns `cfg.workers` threads, each holding a
    /// clone of `engine` (clones share the store, registry, and model).
    pub fn new(engine: Engine, cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: LaneQueue::new(cfg.queue_capacity.max(1), cfg.fair_burst.max(1)),
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            stats: AtomicStats::default(),
            inflight: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let engine = engine.clone();
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(engine, shared))
            })
            .collect();
        Self {
            engine,
            shared,
            workers,
        }
    }

    /// The engine this service schedules over (register chunks here).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Submits a request, blocking while the admission queue is full, and
    /// returns its event stream. The stream's first event is
    /// [`Event::Queued`].
    pub fn submit_stream(&self, request: Request) -> ResponseStream {
        let (tx, rx) = channel::unbounded();
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                // tx drops here: the stream closes without a terminal
                // event and collect() reports Canceled.
                return ResponseStream::new(rx);
            }
            if !st.queue.is_full() {
                break;
            }
            st = self.shared.space_cv.wait(st).unwrap();
        }
        let _ = tx.send(Event::Queued);
        self.enqueue_locked(&mut st, request, tx);
        drop(st);
        self.shared.jobs_cv.notify_one();
        ResponseStream::new(rx)
    }

    /// Non-blocking submit: on a full queue the request is handed back in
    /// [`TrySubmitError::QueueFull`] instead of waiting.
    pub fn try_submit_stream(&self, request: Request) -> Result<ResponseStream, TrySubmitError> {
        let (tx, rx) = channel::unbounded();
        let mut st = self.shared.state.lock().unwrap();
        if st.queue.is_full() || st.shutdown {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            sched_obs().rejected.inc();
            return Err(TrySubmitError::QueueFull(request));
        }
        let _ = tx.send(Event::Queued);
        self.enqueue_locked(&mut st, request, tx);
        drop(st);
        self.shared.jobs_cv.notify_one();
        Ok(ResponseStream::new(rx))
    }

    fn enqueue_locked(&self, st: &mut SchedState, request: Request, tx: Sender<Event>) {
        let priority = request.priority;
        let job = Job {
            request,
            tx,
            enqueued: Instant::now(),
        };
        st.queue
            .push(priority, job)
            .unwrap_or_else(|_| unreachable!("capacity checked under the same lock"));
        let stats = &self.shared.stats;
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        sched_obs().submitted.inc();
        stats
            .peak_queue_depth
            .fetch_max(st.queue.len() as u64, Ordering::Relaxed);
    }

    /// Blocking one-shot convenience: `submit_stream(request).collect()`.
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        self.submit_stream(request).collect()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Non-blocking load/health snapshot (see [`ServiceProbe`]). The
    /// cluster router calls this on every spill decision, so it must never
    /// wait on queue space — it only takes the scheduler mutex briefly.
    pub fn probe(&self) -> ServiceProbe {
        let st = self.shared.state.lock().unwrap();
        ServiceProbe {
            queue_depth: st.queue.len(),
            queue_capacity: st.queue.capacity,
            inflight: self.shared.inflight.load(Ordering::Relaxed) as usize,
            workers: self.workers.len(),
            shutdown: st.shutdown,
        }
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot()
    }
}

impl Drop for EngineService {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(engine: Engine, shared: Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop() {
                    // Counted in flight while the queue lock is still held,
                    // so a probe never sees the job in neither place.
                    shared.inflight.fetch_add(1, Ordering::Relaxed);
                    shared.space_cv.notify_one();
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.jobs_cv.wait(st).unwrap();
            }
        };
        let Some(job) = job else { return };
        let obs = sched_obs();
        let queue_wait = job.enqueued.elapsed();
        obs.queue_wait.record_duration(queue_wait);
        // Bind this request's trace to the worker thread so the queue
        // span, the serve span, and the engine's phase spans all land on
        // one timeline (the guard unbinds when the request retires).
        let _trace = TraceContext::enter(job.request.trace, job.request.trace_parent);
        if job.request.trace != 0 {
            let end = cb_obs::now_nanos();
            cb_obs::trace::record_span(
                job.request.trace,
                job.request.trace_parent,
                "queue",
                end.saturating_sub(queue_wait.as_nanos() as u64),
                end,
            );
        }
        // If the client already dropped the stream, skip the blend — no
        // one is listening, and the lane is better spent on live requests.
        if job.tx.send(Event::Admitted).is_err() {
            shared.stats.canceled.fetch_add(1, Ordering::Relaxed);
            obs.canceled.inc();
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let serve_span = Span::begin("serve");
        let served_at = Instant::now();
        let mut first_token_at = None;
        let mut last_token_at: Option<Instant> = None;
        // A panic anywhere in the blend/decode path must not kill the
        // worker — that would silently shrink the pool and leave queued
        // streams hanging. Contain it and fail only this request.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.submit_streaming(&job.request, &mut |event| {
                match &event {
                    Event::FirstToken(ttft) if first_token_at.is_none() => {
                        let now = Instant::now();
                        first_token_at = Some(now);
                        last_token_at = Some(now);
                        obs.ttft.record_duration(now.duration_since(job.enqueued));
                        obs.ttft_load_wait.record_duration(ttft.load_wait);
                        obs.ttft_recompute.record_duration(ttft.recompute);
                        obs.ttft_precompute.record_duration(ttft.precompute);
                    }
                    Event::Token(_) => {
                        let now = Instant::now();
                        if let Some(prev) = last_token_at.replace(now) {
                            obs.decode_token.record_duration(now.duration_since(prev));
                        }
                        obs.tokens.inc();
                    }
                    _ => {}
                }
                let _ = job.tx.send(event);
            })
        }))
        .unwrap_or(Err(EngineError::Panicked));
        if let (Some(deadline), Some(at)) = (job.request.deadline, first_token_at) {
            if at.duration_since(job.enqueued) > deadline {
                shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
                obs.deadline_misses.inc();
            }
        }
        obs.request.record_duration(served_at.elapsed());
        serve_span.end();
        // Decremented before the terminal event goes out: a client that
        // observed Done/Failed must never still see the request in flight.
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(resp) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                obs.completed.inc();
                let _ = job.tx.send(Event::Done(resp));
            }
            Err(err) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                obs.failed.inc();
                let _ = job.tx.send(Event::Failed(err));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cb_model::ModelProfile;
    use cb_tokenizer::TokenKind::*;

    #[test]
    fn lane_queue_respects_capacity() {
        let mut q: LaneQueue<u32> = LaneQueue::new(2, 4);
        assert!(q.push(Priority::Normal, 1).is_ok());
        assert!(q.push(Priority::High, 2).is_ok());
        assert_eq!(q.push(Priority::High, 3), Err(3));
        q.pop();
        assert!(q.push(Priority::Normal, 3).is_ok());
    }

    #[test]
    fn lane_queue_serves_high_first_but_never_starves_normal() {
        // 20 high + 4 normal items, fair_burst = 3: with the normal lane
        // non-empty throughout its residence, a normal item must surface at
        // least every fair_burst + 1 dispatches.
        let mut q: LaneQueue<(Priority, u32)> = LaneQueue::new(64, 3);
        for i in 0..20 {
            q.push(Priority::High, (Priority::High, i)).unwrap();
        }
        for i in 0..4 {
            q.push(Priority::Normal, (Priority::Normal, i)).unwrap();
        }
        let order: Vec<(Priority, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 24);
        assert_eq!(order[0].0, Priority::High, "high lane is served first");
        let normal_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == Priority::Normal)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(normal_positions.len(), 4);
        // First normal item within the first burst window; consecutive
        // normal dispatches no further than a burst apart.
        assert!(normal_positions[0] <= 3, "positions {normal_positions:?}");
        for w in normal_positions.windows(2) {
            assert!(w[1] - w[0] <= 4, "positions {normal_positions:?}");
        }
        // FIFO within each lane.
        let highs: Vec<u32> = order
            .iter()
            .filter(|(p, _)| *p == Priority::High)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(highs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lane_queue_streak_resets_when_normal_lane_is_empty() {
        let mut q: LaneQueue<u32> = LaneQueue::new(8, 2);
        q.push(Priority::High, 0).unwrap();
        q.push(Priority::High, 1).unwrap();
        q.push(Priority::High, 2).unwrap();
        // Normal lane empty: pops don't accumulate a streak.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(Priority::Normal, 10).unwrap();
        q.push(Priority::High, 3).unwrap();
        q.push(Priority::High, 4).unwrap();
        // Full burst of high available before the waiting normal.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(10), "burst of 2 exhausted");
        assert_eq!(q.pop(), Some(4));
    }

    fn service(workers: usize, capacity: usize) -> EngineService {
        let engine = EngineBuilder::new(ModelProfile::Tiny).build().unwrap();
        EngineService::new(
            engine,
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(capacity),
        )
    }

    #[test]
    fn stream_yields_lifecycle_in_order_and_collect_answers() {
        let s = service(2, 8);
        let v = s.engine().model().cfg.vocab.clone();
        let c1: Vec<_> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<_> = [Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)).to_vec();
        let ids = s.engine().register_chunks(&[c1, c2]).unwrap();
        let q: Vec<_> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();

        let stream = s.submit_stream(Request::new(ids, q).ratio(0.45).max_new_tokens(4));
        let mut events = Vec::new();
        for e in stream {
            events.push(e);
        }
        assert!(matches!(events[0], Event::Queued));
        assert!(matches!(events[1], Event::Admitted));
        assert!(matches!(events[2], Event::FirstToken(_)));
        let tokens: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Token(t) => Some(*t),
                _ => None,
            })
            .collect();
        let Event::Done(resp) = events.last().unwrap() else {
            panic!("missing terminal Done: {events:?}");
        };
        assert_eq!(tokens, resp.answer, "streamed tokens match the answer");
        assert_eq!(resp.answer, vec![v.id(Value(9))]);
        assert_eq!(s.stats().completed, 1);
    }

    #[test]
    fn failures_stream_a_terminal_failed_event() {
        let s = service(1, 4);
        let v = s.engine().model().cfg.vocab.clone();
        let q = vec![v.id(Query), v.id(QMark)];
        let err = s
            .submit_stream(Request::new(vec![cb_kv::ChunkId(99)], q))
            .collect()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownChunk(cb_kv::ChunkId(99)));
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn paused_service_backpressures_with_queue_full() {
        // workers = 0: nothing drains, so the capacity-2 queue fills
        // deterministically and the third submit is pushed back.
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let chunk = vec![v.id(Entity(1)), v.id(Attr(1)), v.id(Value(1))];
        let id = s.engine().register_chunk(&chunk).unwrap();
        let q = vec![v.id(Query), v.id(QMark)];
        let mk = || Request::new(vec![id], q.clone());

        let _s1 = s.try_submit_stream(mk()).expect("first fits");
        let _s2 = s.try_submit_stream(mk()).expect("second fits");
        match s.try_submit_stream(mk()) {
            Err(TrySubmitError::QueueFull(req)) => assert_eq!(req.chunk_ids, vec![id]),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.queue_depth(), 2);
        let st = s.stats();
        assert_eq!((st.submitted, st.rejected), (2, 1));
        assert_eq!(st.peak_queue_depth, 2);
    }

    #[test]
    fn probe_reports_load_and_health_without_blocking() {
        // A paused (0-worker) full queue: probe must return immediately
        // with the exact queue picture instead of waiting for space.
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(1)), v.id(Value(2))])
            .unwrap();
        let q = vec![v.id(Query), v.id(QMark)];
        let _s1 = s
            .try_submit_stream(Request::new(vec![id], q.clone()))
            .unwrap();
        let _s2 = s.try_submit_stream(Request::new(vec![id], q)).unwrap();
        let p = s.probe();
        assert_eq!(p.queue_depth, 2);
        assert_eq!(p.queue_capacity, 2);
        assert!(p.queue_full());
        assert_eq!(p.inflight, 0, "nothing drains a paused service");
        assert_eq!(p.load(), 2);
        assert!(!p.healthy(), "a workerless service cannot make progress");

        let live = service(2, 4);
        let p = live.probe();
        assert!(p.healthy());
        assert!(!p.queue_full());
        assert_eq!(p.workers, 2);
    }

    #[test]
    fn inflight_returns_to_zero_after_completion() {
        let s = service(1, 4);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(3)), v.id(Attr(1)), v.id(Value(2)), v.id(Sep)])
            .unwrap();
        let q = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(1)), v.id(QMark)];
        s.submit(Request::new(vec![id], q)).unwrap();
        let p = s.probe();
        assert_eq!(p.inflight, 0);
        assert_eq!(p.load(), 0);
    }

    #[test]
    fn dropping_a_paused_service_cancels_queued_streams() {
        let s = service(0, 2);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(1)), v.id(Value(1))])
            .unwrap();
        let stream = s
            .try_submit_stream(Request::new(vec![id], vec![v.id(Query), v.id(QMark)]))
            .unwrap();
        drop(s);
        assert_eq!(stream.collect().unwrap_err(), EngineError::Canceled);
    }

    #[test]
    fn deadline_misses_are_counted() {
        let s = service(1, 8);
        let v = s.engine().model().cfg.vocab.clone();
        let id = s
            .engine()
            .register_chunk(&[v.id(Entity(2)), v.id(Attr(1)), v.id(Value(3)), v.id(Sep)])
            .unwrap();
        let q = vec![v.id(Query), v.id(Entity(2)), v.id(Attr(1)), v.id(QMark)];
        // An impossible deadline is always missed; a generous one never is.
        s.submit(Request::new(vec![id], q.clone()).deadline(std::time::Duration::ZERO))
            .unwrap();
        s.submit(Request::new(vec![id], q).deadline(std::time::Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(s.stats().deadline_misses, 1);
    }
}
