//! Pipelined KV loading overlapped with selective recompute (§5/§6).
//!
//! A loader thread streams one fused context layer at a time — decoding
//! each chunk's serialized entry (`cb-kv::serialize::EntryReader`),
//! applying the Appendix-A re-rotation, and concatenating the chunk rows —
//! through a bounded channel. The fusor consumes layers in order; its
//! per-layer `synchronize()` is simply the channel `recv`. Because HKVD
//! selection for layer `i` needs only layer `i`'s loaded KV, loading layer
//! `i+1` proceeds while layer `i` is recomputed, exactly the overlap that
//! lets CacheBlend keep KV on slow devices without TTFT cost.
//!
//! An optional per-layer throttle emulates a storage device's read time for
//! tests/benches that demonstrate the overlap.

use std::time::{Duration, Instant};

use bytes::Bytes;
use cb_kv::serialize::{DecodeError, EntryReader};
use cb_model::{LayerKv, Model};
use cb_tokenizer::TokenId;
use crossbeam::channel::bounded;

use crate::fusor::{BlendConfig, BlendResult, Fusor};
use crate::rope_align;

/// Timing evidence from a pipelined blend.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// Wall-clock of the whole blend.
    pub total: Duration,
    /// Time the fusor spent blocked waiting for a layer (`synchronize()`).
    pub wait: Duration,
    /// Time the loader spent producing layers (decode + rotate + throttle).
    pub loader_busy: Duration,
}

/// Result of [`blend_pipelined`].
#[derive(Debug)]
pub struct PipelineOutput {
    /// The blend result (cache, residual, stats).
    pub result: BlendResult,
    /// Overlap evidence.
    pub report: PipelineReport,
}

/// Fuses serialized chunk entries with a real loader thread.
///
/// `parts` are the serialized per-chunk caches (as stored by
/// `cb-kv::KvStore`), in request order. `throttle` adds an artificial
/// per-layer read delay emulating a device.
///
/// # Errors
///
/// Returns a [`DecodeError`] if any entry fails its checksum.
pub fn blend_pipelined(
    model: &Model,
    cfg: BlendConfig,
    parts: Vec<Bytes>,
    suffix: &[TokenId],
    throttle: Option<Duration>,
) -> Result<PipelineOutput, DecodeError> {
    let readers: Vec<EntryReader> = parts
        .into_iter()
        .map(EntryReader::new)
        .collect::<Result<_, _>>()?;

    // Context metadata: BOS at 0, then each chunk relocated after the last.
    let bos = cb_kv::precompute::bos_cache(model);
    let mut offsets = Vec::with_capacity(readers.len());
    let mut positions: Vec<usize> = vec![0];
    let mut tokens: Vec<TokenId> = bos.tokens.clone();
    let mut cursor = 1usize;
    for r in &readers {
        offsets.push(cursor);
        positions.extend(cursor..cursor + r.rows());
        tokens.extend_from_slice(r.tokens());
        cursor += r.rows();
    }

    let n_layers = model.n_layers();
    let start = Instant::now();
    let (tx, rx) = bounded::<LayerKv>(2);

    let width = model.cfg.kv_width();
    let total_rows = 1 + readers.iter().map(|r| r.rows()).sum::<usize>();
    let (result, loader_busy) = std::thread::scope(|scope| {
        let loader = scope.spawn(|| {
            let busy_start = Instant::now();
            // One scratch buffer decodes every chunk of every layer; the
            // BOS layer KV is shared by reference (the historical loader
            // cloned it once per layer and stacked owned matrices through
            // a double-collected `vcat`).
            let mut chunk_buf = LayerKv::empty(width);
            for layer in 0..n_layers {
                let mut merged = LayerKv::empty(width);
                merged.reserve(total_rows);
                merged.append(&bos.layers[layer].k, &bos.layers[layer].v);
                for (r, &off) in readers.iter().zip(offsets.iter()) {
                    r.layer_into(layer, &mut chunk_buf);
                    let delta = off as i64 - r.positions()[0] as i64;
                    rope_align::relocate_layer(model, layer, &mut chunk_buf, delta);
                    merged.append(&chunk_buf.k, &chunk_buf.v);
                }
                if let Some(d) = throttle {
                    std::thread::sleep(d);
                }
                if tx.send(merged).is_err() {
                    break; // consumer gone (panic downstream)
                }
            }
            drop(tx);
            busy_start.elapsed()
        });

        let mut wait = Duration::ZERO;
        let fusor = Fusor::new(model, cfg);
        let mut result = fusor.blend_streamed(
            &positions,
            &tokens,
            |_l| {
                let t = Instant::now();
                let lkv = rx.recv().expect("loader thread died");
                wait += t.elapsed();
                lkv
            },
            suffix,
            false,
        );
        result.stats.first_layer_deviations.shrink_to_fit();
        let loader_busy = loader.join().expect("loader panicked");
        ((result, wait), loader_busy)
    });
    let ((result, wait), loader_busy) = (result, loader_busy);

    Ok(PipelineOutput {
        result,
        report: PipelineReport {
            total: start.elapsed(),
            wait,
            loader_busy,
        },
    })
}

/// Sequential reference: load (and throttle) *everything first*, then
/// blend — the unpipelined ablation of Figure 10(a).
pub fn blend_sequential(
    model: &Model,
    cfg: BlendConfig,
    parts: Vec<Bytes>,
    suffix: &[TokenId],
    throttle: Option<Duration>,
) -> Result<PipelineOutput, DecodeError> {
    let start = Instant::now();
    let mut caches = Vec::new();
    for b in parts {
        let c = cb_kv::serialize::decode(b)?;
        if let Some(d) = throttle {
            std::thread::sleep(d * model.n_layers() as u32);
        }
        caches.push(c);
    }
    let load_time = start.elapsed();
    let fusor = Fusor::new(model, cfg);
    let result = fusor.blend(caches, suffix, false);
    Ok(PipelineOutput {
        result,
        report: PipelineReport {
            total: start.elapsed(),
            wait: load_time,
            loader_busy: load_time,
        },
    })
}

/// Convenience used by tests/benches: serialize a fused request's chunks.
pub fn serialize_chunks(model: &Model, chunks: &[Vec<TokenId>]) -> Vec<Bytes> {
    chunks
        .iter()
        .map(|c| cb_kv::serialize::encode(&cb_kv::precompute::precompute_chunk(model, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{KvCache, ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn scenario(m: &Model) -> (Vec<Vec<TokenId>>, Vec<TokenId>, TokenId) {
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [
            Ref,
            Attr(3),
            Value(9),
            Sep,
            Entity(8),
            Attr(1),
            Value(4),
            Sep,
        ]
        .map(|k| v.id(k))
        .to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        (vec![c1, c2], q, v.id(Value(9)))
    }

    #[test]
    fn pipelined_matches_eager_blend() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let cfg = BlendConfig::with_ratio(0.4);
        let piped = blend_pipelined(&m, cfg, bytes, &q, None).unwrap();

        let parts: Vec<KvCache> = chunks
            .iter()
            .map(|c| cb_kv::precompute::precompute_chunk(&m, c))
            .collect();
        let eager = Fusor::new(&m, cfg).blend(parts, &q, false);
        for l in 0..m.n_layers() {
            let d = piped.result.cache.layers[l]
                .k
                .frobenius_distance(&eager.cache.layers[l].k);
            assert!(d < 1e-4, "layer {l} differs between pipelined and eager");
        }
        let dl = cb_tensor::stats::l2_distance(&piped.result.last_residual, &eager.last_residual);
        assert!(dl < 1e-4);
    }

    #[test]
    fn pipelined_answers_correctly() {
        let m = model();
        let (chunks, q, gold) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let mut out = blend_pipelined(&m, BlendConfig::with_ratio(0.45), bytes, &q, None).unwrap();
        let ans = m.decode_greedy(&mut out.result.cache, &out.result.last_residual, 4);
        assert_eq!(ans, vec![gold]);
    }

    #[test]
    fn corrupted_entry_is_rejected() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let mut bytes = serialize_chunks(&m, &chunks);
        let mut raw = bytes[0].to_vec();
        let n = raw.len();
        raw[n / 2] ^= 0xFF;
        bytes[0] = Bytes::from(raw);
        let err = blend_pipelined(&m, BlendConfig::default(), bytes, &q, None).unwrap_err();
        assert_eq!(err, DecodeError::Corrupted);
    }

    #[test]
    fn pipelining_hides_load_latency() {
        // With a per-layer throttle, the pipelined total must be well below
        // "load everything, then compute" — the §5 overlap claim measured
        // on real threads.
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let throttle = Duration::from_millis(8);
        let cfg = BlendConfig::with_ratio(0.4);
        let piped = blend_pipelined(&m, cfg, bytes.clone(), &q, Some(throttle)).unwrap();
        let seq = blend_sequential(&m, cfg, bytes, &q, Some(throttle)).unwrap();
        assert!(
            piped.report.total < seq.report.total,
            "pipelined {:?} !< sequential {:?}",
            piped.report.total,
            seq.report.total
        );
    }

    #[test]
    fn report_accounts_wait_time() {
        let m = model();
        let (chunks, q, _) = scenario(&m);
        let bytes = serialize_chunks(&m, &chunks);
        let out = blend_pipelined(
            &m,
            BlendConfig::default(),
            bytes,
            &q,
            Some(Duration::from_millis(2)),
        )
        .unwrap();
        assert!(out.report.wait <= out.report.total);
        assert!(out.report.loader_busy >= Duration::from_millis(2 * 4));
    }
}
