//! KV store benchmarks: serialization, tiered insert/get, disk-tier reads,
//! chunk hashing.

use cb_kv::chunk::hash_tokens;
use cb_kv::precompute::precompute_chunk;
use cb_kv::serialize::{decode, encode, EntryReader};
use cb_kv::store::KvStore;
use cb_kv::ChunkId;
use cb_model::{Model, ModelConfig, ModelProfile};
use cb_tokenizer::TokenKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn chunk_cache() -> cb_model::KvCache {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let v = &model.cfg.vocab;
    let toks: Vec<u32> = (0..24)
        .map(|i| match i % 4 {
            0 => v.id(TokenKind::Entity(i as u32 % 8)),
            1 => v.id(TokenKind::Attr(i as u32 % 8)),
            2 => v.id(TokenKind::Value(i as u32 % 16)),
            _ => v.id(TokenKind::Sep),
        })
        .collect();
    precompute_chunk(&model, &toks)
}

fn bench_serialize(c: &mut Criterion) {
    let cache = chunk_cache();
    let bytes = encode(&cache);
    let mut g = c.benchmark_group("serialize");
    g.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(encode(&cache))));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(decode(bytes.clone()).unwrap()))
    });
    g.bench_function("decode_one_layer", |b| {
        let reader = EntryReader::new(bytes.clone()).unwrap();
        b.iter(|| black_box(reader.layer(2)))
    });
    g.finish();
}

fn bench_store_ops(c: &mut Criterion) {
    let cache = chunk_cache();
    let store = KvStore::single("ram", 1 << 30);
    for i in 0..256u64 {
        store.insert(ChunkId(i), &cache).unwrap();
    }
    c.bench_function("store_get_hit", |b| {
        b.iter(|| black_box(store.get_bytes(ChunkId(128))))
    });
    c.bench_function("store_insert_refresh", |b| {
        b.iter(|| black_box(store.insert(ChunkId(7), &cache)))
    });
}

fn bench_quantize(c: &mut Criterion) {
    use cb_kv::quantize::{decode_quantized, encode_quantized};
    let cache = chunk_cache();
    let q = encode_quantized(&cache);
    let mut g = c.benchmark_group("quantize");
    g.throughput(criterion::Throughput::Bytes(q.len() as u64));
    g.bench_function("encode_int8", |b| {
        b.iter(|| black_box(encode_quantized(&cache)))
    });
    g.bench_function("decode_int8", |b| {
        b.iter(|| black_box(decode_quantized(q.clone()).unwrap()))
    });
    g.finish();
}

fn bench_disk_tier(c: &mut Criterion) {
    use cb_kv::store::TierConfig;
    use cb_storage::{DiskBackend, MemBackend, StorageBackend};
    use std::sync::Arc;
    let cache = chunk_cache();
    let bytes = encode(&cache);
    let dir = std::env::temp_dir().join(format!("cb-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // RAM tier below one entry: reads genuinely hit the disk backend.
    let store = KvStore::with_backends(vec![
        (
            TierConfig::new("ram", 64),
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        ),
        (
            TierConfig::new("disk", 1 << 30),
            Arc::new(DiskBackend::new(&dir, None).unwrap()),
        ),
    ]);
    store.insert_bytes(ChunkId(1), bytes).unwrap();
    store.flush().unwrap();
    c.bench_function("disk_get_full_entry", |b| {
        b.iter(|| black_box(store.get_bytes(ChunkId(1)).unwrap()))
    });
    c.bench_function("disk_prefetch_stream_layers", |b| {
        b.iter(|| {
            let mut h = store.prefetch(ChunkId(1)).unwrap().unwrap();
            let m = h.meta().unwrap().clone();
            let mut out = cb_model::LayerKv::empty(m.width);
            for l in 0..m.n_layers {
                h.layer_into(l, &mut out).unwrap();
            }
            black_box(out.len())
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_hash(c: &mut Criterion) {
    let toks: Vec<u32> = (0..512).map(|i| i % 190).collect();
    c.bench_function("hash_512_tokens", |b| {
        b.iter(|| black_box(hash_tokens(&toks)))
    });
}

criterion_group!(
    benches,
    bench_serialize,
    bench_store_ops,
    bench_disk_tier,
    bench_quantize,
    bench_hash
);
criterion_main!(benches);
