//! Byte serialization of KV caches with checksums.
//!
//! Device-resident cache entries are stored as bytes; this module defines
//! the (little-endian) wire format and detects corruption on load. Layout:
//!
//! ```text
//! magic u32 | n_layers u32 | rows u32 | width u32
//! positions: rows × u64
//! tokens:    rows × u32
//! layers:    n_layers × (K rows×width f32, V rows×width f32)
//! checksum:  u64 (word-wise FNV over all preceding bytes)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cb_model::{KvCache, LayerKv};
use cb_tensor::Matrix;

const MAGIC: u32 = 0x4342_4b56; // "CBKV"

/// Errors surfaced when decoding a serialized cache entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared sizes.
    Truncated,
    /// Magic number mismatch (not a cache entry).
    BadMagic,
    /// Checksum mismatch (corrupted bytes).
    Corrupted,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "serialized cache truncated"),
            DecodeError::BadMagic => write!(f, "bad magic (not a KV cache entry)"),
            DecodeError::Corrupted => write!(f, "checksum mismatch (corrupted entry)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a over 8-byte words (trailing bytes folded individually). The
/// word stride keeps the same single-bit-flip detection while checksumming
/// ~8x faster than the byte-wise loop — entry verification sits on the
/// blend's TTFT-critical load path.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serializes a cache to bytes (see module docs for the layout).
pub fn encode(cache: &KvCache) -> Bytes {
    let rows = cache.len();
    let width = cache.layers.first().map(|l| l.k.cols()).unwrap_or(0);
    let mut buf = BytesMut::with_capacity(16 + rows * 12 + cache.element_count() * 4 + 8);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(cache.n_layers() as u32);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(width as u32);
    for &p in &cache.positions {
        buf.put_u64_le(p as u64);
    }
    for &t in &cache.tokens {
        buf.put_u32_le(t);
    }
    for layer in &cache.layers {
        for &x in layer.k.as_slice() {
            buf.put_f32_le(x);
        }
        for &x in layer.v.as_slice() {
            buf.put_f32_le(x);
        }
    }
    let sum = fnv(&buf);
    buf.put_u64_le(sum);
    buf.freeze()
}

/// Decodes bytes produced by [`encode`], verifying the checksum.
pub fn decode(mut bytes: Bytes) -> Result<KvCache, DecodeError> {
    if bytes.len() < 24 {
        return Err(DecodeError::Truncated);
    }
    let body_len = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if fnv(&bytes[..body_len]) != declared {
        return Err(DecodeError::Corrupted);
    }
    if bytes.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let n_layers = bytes.get_u32_le() as usize;
    let rows = bytes.get_u32_le() as usize;
    let width = bytes.get_u32_le() as usize;
    let need = rows * 12 + n_layers * 2 * rows * width * 4 + 8;
    if bytes.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    let mut positions = Vec::with_capacity(rows);
    for _ in 0..rows {
        positions.push(bytes.get_u64_le() as usize);
    }
    let mut tokens = Vec::with_capacity(rows);
    for _ in 0..rows {
        tokens.push(bytes.get_u32_le());
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let mut read_mat = |rows: usize, width: usize| {
            let mut data = Vec::with_capacity(rows * width);
            for _ in 0..rows * width {
                data.push(bytes.get_f32_le());
            }
            Matrix::from_vec(rows, width, data)
        };
        let k = read_mat(rows, width);
        let v = read_mat(rows, width);
        layers.push(LayerKv { k, v });
    }
    Ok(KvCache {
        layers,
        positions,
        tokens,
    })
}

/// Random-access reader over a serialized entry, decoding one layer at a
/// time — the streaming loader fetches layer `i+1` while layer `i` is being
/// recomputed, so it must not pay for a full decode upfront.
#[derive(Clone, Debug)]
pub struct EntryReader {
    bytes: Bytes,
    n_layers: usize,
    rows: usize,
    width: usize,
    positions: Vec<usize>,
    tokens: Vec<u32>,
}

impl EntryReader {
    /// Parses and checksums the header of a serialized entry.
    pub fn new(bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.len() < 24 {
            return Err(DecodeError::Truncated);
        }
        let body_len = bytes.len() - 8;
        let declared = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
        if fnv(&bytes[..body_len]) != declared {
            return Err(DecodeError::Corrupted);
        }
        let mut hdr = bytes.clone();
        if hdr.get_u32_le() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let n_layers = hdr.get_u32_le() as usize;
        let rows = hdr.get_u32_le() as usize;
        let width = hdr.get_u32_le() as usize;
        if hdr.remaining() < rows * 12 + n_layers * 2 * rows * width * 4 + 8 {
            return Err(DecodeError::Truncated);
        }
        let mut positions = Vec::with_capacity(rows);
        for _ in 0..rows {
            positions.push(hdr.get_u64_le() as usize);
        }
        let mut tokens = Vec::with_capacity(rows);
        for _ in 0..rows {
            tokens.push(hdr.get_u32_le());
        }
        Ok(Self {
            bytes,
            n_layers,
            rows,
            width,
            positions,
            tokens,
        })
    }

    /// Number of layers in the entry.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Cached token count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Absolute positions of the cached tokens.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Token ids of the cached tokens.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Size in bytes of one layer's K+V block.
    pub fn layer_bytes(&self) -> usize {
        2 * self.rows * self.width * 4
    }

    /// Decodes layer `l` only.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer(&self, l: usize) -> LayerKv {
        let mut out = LayerKv::empty(self.width);
        self.layer_into(l, &mut out);
        out
    }

    /// Decodes layer `l` into a reusable buffer (the streaming loader
    /// decodes every chunk of every layer through one scratch `LayerKv`).
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer_into(&self, l: usize, out: &mut LayerKv) {
        assert!(l < self.n_layers, "layer {l} out of range");
        let header = 16 + self.rows * 12;
        let start = header + l * self.layer_bytes();
        let half = self.layer_bytes() / 2;
        // Bulk little-endian conversion (chunked from_le_bytes compiles to
        // a plain copy on LE targets) — the streaming loader decodes every
        // layer on the blend's critical path, so a per-element cursor was
        // a measurable TTFT tax.
        let fill = |m: &mut Matrix, lo: usize| {
            // Every element is overwritten by the conversion loop below.
            m.resize_dirty(self.rows, self.width);
            for (v, ch) in m
                .as_mut_slice()
                .iter_mut()
                .zip(self.bytes[lo..lo + half].chunks_exact(4))
            {
                *v = f32::from_le_bytes(ch.try_into().unwrap());
            }
        };
        fill(&mut out.k, start);
        fill(&mut out.v, start + half);
    }
}

/// Serializes a single layer (used by the streaming loader, which fetches
/// layer `i+1` while layer `i` is being recomputed).
pub fn encode_layer(layer: &LayerKv) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 8 * layer.k.rows() * layer.k.cols());
    buf.put_u32_le(layer.k.rows() as u32);
    buf.put_u32_le(layer.k.cols() as u32);
    for &x in layer.k.as_slice() {
        buf.put_f32_le(x);
    }
    for &x in layer.v.as_slice() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Decodes a single layer produced by [`encode_layer`].
pub fn decode_layer(mut bytes: Bytes) -> Result<LayerKv, DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let rows = bytes.get_u32_le() as usize;
    let width = bytes.get_u32_le() as usize;
    if bytes.remaining() < 2 * rows * width * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut read = |n: usize| {
        let mut d = Vec::with_capacity(n);
        for _ in 0..n {
            d.push(bytes.get_f32_le());
        }
        d
    };
    let k = Matrix::from_vec(rows, width, read(rows * width));
    let v = Matrix::from_vec(rows, width, read(rows * width));
    Ok(LayerKv { k, v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KvCache {
        let mut c = KvCache::empty(2, 4);
        for l in 0..2 {
            let k = Matrix::from_fn(3, 4, |r, d| (l * 100 + r * 4 + d) as f32 * 0.5);
            let v = Matrix::from_fn(3, 4, |r, d| -((l * 100 + r * 4 + d) as f32));
            c.layers[l].append(&k, &v);
        }
        c.positions = vec![1, 2, 3];
        c.tokens = vec![10, 11, 12];
        c
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = toy();
        let got = decode(encode(&c)).unwrap();
        assert_eq!(got, c);
    }

    #[test]
    fn empty_cache_roundtrips() {
        let c = KvCache::empty(3, 8);
        let got = decode(encode(&c)).unwrap();
        assert_eq!(got.n_layers(), 3);
        assert!(got.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(decode(Bytes::from(bytes)), Err(DecodeError::Corrupted));
    }

    #[test]
    fn truncation_is_detected() {
        let c = toy();
        let bytes = encode(&c);
        let cut = bytes.slice(0..bytes.len() / 3);
        assert!(matches!(
            decode(cut),
            Err(DecodeError::Truncated | DecodeError::Corrupted)
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        bytes[0] ^= 0x01;
        // Checksum covers the magic too, so either error is acceptable —
        // but after fixing the checksum the magic check must fire.
        let body = bytes.len() - 8;
        let sum = fnv(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(Bytes::from(bytes)), Err(DecodeError::BadMagic));
    }

    #[test]
    fn layer_roundtrip() {
        let c = toy();
        let got = decode_layer(encode_layer(&c.layers[1])).unwrap();
        assert_eq!(got, c.layers[1]);
    }

    #[test]
    fn entry_reader_decodes_layers_independently() {
        let c = toy();
        let r = EntryReader::new(encode(&c)).unwrap();
        assert_eq!(r.n_layers(), 2);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.positions(), &[1, 2, 3]);
        assert_eq!(r.tokens(), &[10, 11, 12]);
        assert_eq!(r.layer(0), c.layers[0]);
        assert_eq!(r.layer(1), c.layers[1]);
    }

    #[test]
    fn entry_reader_detects_corruption() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        assert_eq!(
            EntryReader::new(Bytes::from(bytes)).err(),
            Some(DecodeError::Corrupted)
        );
    }
}
