//! Fault-injection matrix for the segment log's compactor: crashes
//! mid-rewrite at several points, stale temp files across restarts, and
//! readers racing a live compaction must never lose or corrupt a live
//! record — and a completed compaction must actually give the garbage
//! back.

use bytes::Bytes;
use cacheblend::storage::{SegmentLogBackend, SegmentLogConfig, StorageBackend};
use std::sync::Arc;

fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-seg-compact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Distinct, recognizable payload for key `i` (~1 KiB).
fn payload(i: u64) -> Bytes {
    let mut v = vec![0u8; 1024];
    for (j, b) in v.iter_mut().enumerate() {
        *b = (i as usize).wrapping_mul(31).wrapping_add(j) as u8;
    }
    Bytes::from(v)
}

/// Small logs + manual compaction: every test drives the compactor
/// deterministically from the test thread.
fn config() -> SegmentLogConfig {
    SegmentLogConfig {
        rotate_bytes: 16 << 10,
        compact_min_garbage: 0.3,
        compact_min_bytes: 1 << 10,
        auto_compact: false,
    }
}

/// Populates `n` records and tombstones every key where `i % 5 < 3`
/// (60 % garbage in every log); returns the surviving keys.
fn populate(log: &SegmentLogBackend, n: u64) -> Vec<u64> {
    for i in 0..n {
        log.put(i, payload(i)).expect("put");
    }
    for i in (0..n).filter(|i| i % 5 < 3) {
        log.remove(i);
    }
    log.flush().expect("flush");
    (0..n).filter(|i| i % 5 >= 3).collect()
}

fn assert_all_live(log: &SegmentLogBackend, live: &[u64], ctx: &str) {
    for &i in live {
        let got = log.get(i).expect("clean read").unwrap_or_else(|| {
            panic!("{ctx}: live record {i} lost");
        });
        assert_eq!(got, payload(i), "{ctx}: record {i} corrupted");
    }
}

#[test]
fn aborted_compactions_never_lose_a_live_record() {
    // Crash the rewrite after 0, 1, and 7 records copied: each abort must
    // leave the victim untouched (all live records readable), and the run
    // that finally completes must too.
    let dir = test_dir("abort-matrix");
    let log = SegmentLogBackend::with_config(&dir, None, false, config()).expect("open");
    let live = populate(&log, 120);

    for abort_after in [0usize, 1, 7] {
        assert!(
            log.compact_once_aborting(abort_after),
            "garbage over threshold: a victim must be selected"
        );
        assert_all_live(&log, &live, &format!("after abort at {abort_after}"));
        let ctmp = std::fs::read_dir(&dir)
            .expect("dir")
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(".ctmp"))
            .count();
        assert!(ctmp > 0, "aborted pass must leave its temp file behind");
    }

    assert!(log.compact_now() > 0, "real pass compacts the victims");
    assert_all_live(&log, &live, "after completed compaction");
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_after_crashed_compaction_recovers_everything() {
    // Kill the process mid-rewrite (simulated by the abort hook + drop),
    // reopen the directory: the stale `.ctmp` is crash debris — removed
    // at startup — and every live record survives into the new handle,
    // where compaction then completes normally.
    let dir = test_dir("restart");
    let live = {
        let log = SegmentLogBackend::with_config(&dir, None, false, config()).expect("open");
        let live = populate(&log, 120);
        assert!(log.compact_once_aborting(3), "victim selected");
        live
    };

    let log = SegmentLogBackend::with_config(&dir, None, false, config()).expect("reopen");
    assert!(
        log.dropped_debris() > 0,
        "startup must clean the stale .ctmp"
    );
    assert!(
        !std::fs::read_dir(&dir)
            .expect("dir")
            .flatten()
            .any(|e| e.path().to_string_lossy().ends_with(".ctmp")),
        "no temp files after recovery"
    );
    assert_all_live(&log, &live, "after restart");

    assert!(log.compact_now() > 0);
    assert_all_live(&log, &live, "after post-restart compaction");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readers_racing_a_compaction_always_see_correct_bytes() {
    // Four reader threads hammer the live keys while the main thread
    // compacts every eligible log (twice, with fresh garbage in between).
    // Every read must return the exact payload — never a miss, never a
    // torn or stale record.
    let dir = test_dir("race");
    let log = Arc::new(SegmentLogBackend::with_config(&dir, None, false, config()).expect("open"));
    let live = populate(&log, 200);
    // The second wave below tombstones the even keys mid-race, so readers
    // only touch the keys that stay live through the whole test.
    let still: Arc<Vec<u64>> = Arc::new(live.iter().copied().filter(|i| i % 2 == 1).collect());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let (log, live, stop) = (log.clone(), still.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for &i in live.iter().skip(t).step_by(4) {
                        let got = log
                            .get(i)
                            .expect("clean read")
                            .unwrap_or_else(|| panic!("live record {i} lost during compaction"));
                        assert_eq!(got, payload(i), "record {i} corrupted during compaction");
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    assert!(log.compact_now() > 0, "first wave compacts");
    // Second wave: new garbage while readers are still running.
    for &i in live.iter().filter(|i| *i % 2 == 0) {
        log.remove(i);
    }
    log.flush().expect("flush");
    log.compact_now();

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    assert!(
        total > 0,
        "readers must have observed the compaction window"
    );

    // Post-race: the records never tombstoned are still exact.
    assert_all_live(&log, &still, "after racing compactions");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_reclaims_at_least_90_percent_of_dead_bytes() {
    // The acceptance bound: with small rotation (the never-compacted
    // active log is a sliver), compaction must give back ≥ 90 % of the
    // tombstoned bytes without touching a live record.
    let dir = test_dir("reclaim");
    let log = SegmentLogBackend::with_config(&dir, None, false, config()).expect("open");
    let live = populate(&log, 400);

    let before = log.log_stats();
    let dead = before.file_bytes - before.live_bytes;
    assert!(dead > 0, "populate() must create garbage");
    assert!(log.compact_now() > 0);
    let after = log.log_stats();

    let reclaimed = after.reclaimed_bytes - before.reclaimed_bytes;
    assert!(
        reclaimed as f64 >= 0.9 * dead as f64,
        "reclaimed only {reclaimed} of {dead} dead bytes"
    );
    assert!(
        after.file_bytes < before.file_bytes,
        "disk footprint must shrink"
    );
    assert_all_live(&log, &live, "after reclaim");
    let _ = std::fs::remove_dir_all(&dir);
}
