//! Prefix caching (vLLM / SGLang style).
//!
//! The request's token stream is split into fixed blocks; each block's id
//! is the chain hash of its content *and* everything before it, so a block
//! cache is valid only behind the exact same prefix. On a request, the
//! engine walks the chain while blocks hit, reuses their KV rows verbatim
//! (no rotation needed — a prefix is position-identical), prefills the
//! rest, and inserts the newly computed blocks.
//!
//! Quality is exactly full recompute; the saving is limited to the leading
//! run of cached blocks — with multi-chunk RAG inputs only the first chunk
//! ever matches, which is the paper's core criticism (§3.2).

use cb_kv::chunk::{chain_hash, ChunkId};
use cb_kv::store::{KvStore, TierConfig};
use cb_model::{KvCache, Model};
use cb_tokenizer::TokenId;

/// Outcome of a prefix-cached run.
#[derive(Clone, Debug)]
pub struct PrefixOutcome {
    /// The generated answer tokens.
    pub answer: Vec<TokenId>,
    /// Tokens served from the prefix cache.
    pub hit_tokens: usize,
    /// Tokens prefilled (request length − hits).
    pub prefilled_tokens: usize,
}

/// A prefix-caching serving engine with a tiered block store.
pub struct PrefixCachingEngine {
    block: usize,
    store: KvStore,
}

/// Copies rows `lo..hi` of a cache into a standalone cache.
fn slice_cache(cache: &KvCache, lo: usize, hi: usize) -> KvCache {
    KvCache {
        layers: cache
            .layers
            .iter()
            .map(|l| cb_model::LayerKv {
                k: l.k.slice_rows(lo, hi),
                v: l.v.slice_rows(lo, hi),
            })
            .collect(),
        positions: cache.positions[lo..hi].to_vec(),
        tokens: cache.tokens[lo..hi].to_vec(),
    }
}

impl PrefixCachingEngine {
    /// Creates an engine with the given block size and storage tiers.
    pub fn new(block: usize, tiers: Vec<TierConfig>) -> Self {
        assert!(block > 0, "block size must be positive");
        Self {
            block,
            store: KvStore::new(tiers),
        }
    }

    /// Convenience: a RAM-only engine (the paper idealizes prefix-cache
    /// loading as free, so tiering matters only for capacity).
    pub fn in_ram(block: usize, capacity: u64) -> Self {
        Self::new(block, vec![TierConfig::new("cpu-ram", capacity)])
    }

    /// Block-chain ids of a request's complete blocks.
    fn chain_ids(&self, tokens: &[TokenId]) -> Vec<ChunkId> {
        let mut ids = Vec::new();
        let mut prev = ChunkId(0);
        for b in tokens.chunks(self.block) {
            if b.len() < self.block {
                break; // trailing partial block is never cached
            }
            let id = chain_hash(prev, b);
            ids.push(id);
            prev = id;
        }
        ids
    }

    /// Runs one request (`tokens` = BOS + context + query), reusing and
    /// updating the prefix store.
    pub fn run(&self, model: &Model, tokens: &[TokenId], max_tokens: usize) -> PrefixOutcome {
        let ids = self.chain_ids(tokens);
        // Walk the chain while blocks hit.
        let mut segments: Vec<KvCache> = Vec::new();
        for id in &ids {
            match self.store.get(*id) {
                Ok(Some((c, _tier))) => segments.push(c),
                _ => break,
            }
        }
        let hit_blocks = segments.len();
        let hit_tokens = hit_blocks * self.block;

        let mut cache = if segments.is_empty() {
            model.new_cache()
        } else {
            let refs: Vec<&KvCache> = segments.iter().collect();
            KvCache::concat(&refs)
        };
        debug_assert_eq!(cache.len(), hit_tokens);

        // Prefill the remainder behind the cached prefix.
        let rest = &tokens[hit_tokens..];
        let positions: Vec<usize> = (hit_tokens..tokens.len()).collect();
        let x = model.forward_rows(rest, &positions, &mut cache, None);
        let last = x.row(x.rows() - 1).to_vec();

        // Insert the newly computed complete blocks.
        for (b, id) in ids.iter().enumerate().skip(hit_blocks) {
            let lo = b * self.block;
            let seg = slice_cache(&cache, lo, lo + self.block);
            let _ = self.store.insert(*id, &seg);
        }

        let answer = model.decode_greedy(&mut cache, &last, max_tokens);
        PrefixOutcome {
            answer,
            hit_tokens,
            prefilled_tokens: tokens.len() - hit_tokens,
        }
    }

    /// Store statistics (hits/misses/evictions).
    pub fn store_stats(&self) -> cb_kv::store::StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn request(m: &Model, first: u32) -> Vec<TokenId> {
        let v = &m.cfg.vocab;
        let mut t = vec![v.id(Bos)];
        t.extend([Entity(first), Attr(0), Value(1), Sep].map(|k| v.id(k)));
        t.extend([Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)));
        t.extend([Query, Entity(first), Attr(3), QMark].map(|k| v.id(k)));
        t
    }

    #[test]
    fn quality_equals_full_recompute() {
        let m = model();
        let v = &m.cfg.vocab;
        let eng = PrefixCachingEngine::in_ram(4, 1 << 24);
        let req = request(&m, 5);
        let out = eng.run(&m, &req, 4);
        assert_eq!(out.answer, vec![v.id(Value(9))]);
        assert_eq!(out.hit_tokens, 0, "cold store has no hits");
    }

    #[test]
    fn repeated_request_hits_the_prefix() {
        let m = model();
        let eng = PrefixCachingEngine::in_ram(4, 1 << 24);
        let req = request(&m, 5);
        let cold = eng.run(&m, &req, 4);
        let warm = eng.run(&m, &req, 4);
        assert_eq!(warm.answer, cold.answer);
        // 13 tokens → 3 complete blocks of 4 cached.
        assert_eq!(warm.hit_tokens, 12);
        assert_eq!(warm.prefilled_tokens, req.len() - 12);
    }

    #[test]
    fn shared_prefix_with_different_suffix_partially_hits() {
        let m = model();
        let eng = PrefixCachingEngine::in_ram(4, 1 << 24);
        let a = request(&m, 5);
        eng.run(&m, &a, 4);
        // Same first chunk, different second chunk → only leading blocks hit.
        let v = &m.cfg.vocab;
        let mut b = vec![v.id(Bos)];
        b.extend([Entity(5), Attr(0), Value(1), Sep].map(|k| v.id(k)));
        b.extend([Entity(8), Attr(2), Value(4), Sep].map(|k| v.id(k)));
        b.extend([Query, Entity(8), Attr(2), QMark].map(|k| v.id(k)));
        let out = eng.run(&m, &b, 4);
        assert_eq!(out.answer, vec![v.id(Value(4))]);
        assert!(out.hit_tokens > 0 && out.hit_tokens < 12);
    }

    #[test]
    fn different_prefix_never_hits() {
        let m = model();
        let eng = PrefixCachingEngine::in_ram(4, 1 << 24);
        eng.run(&m, &request(&m, 5), 4);
        let out = eng.run(&m, &request(&m, 6), 4);
        assert_eq!(out.hit_tokens, 0, "chain hash must isolate prefixes");
    }

    #[test]
    fn eviction_under_tiny_capacity_still_correct() {
        let m = model();
        let eng = PrefixCachingEngine::in_ram(4, 200_000);
        for e in 0..4 {
            let out = eng.run(&m, &request(&m, e), 4);
            assert_eq!(out.answer, vec![m.cfg.vocab.id(Value(9))]);
        }
        assert!(eng.store_stats().evictions > 0, "expected LRU churn");
    }
}
