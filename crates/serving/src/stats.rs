//! Latency summaries.

/// Summary statistics of a latency sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes a sample (empty samples yield zeros).
    pub fn of(mut xs: Vec<f64>) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                max_s: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let pick = |q: f64| xs[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        Self {
            n,
            mean_s: mean,
            p50_s: pick(0.5),
            p95_s: pick(0.95),
            max_s: xs[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = LatencySummary::of(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean_s - 2.5).abs() < 1e-12);
        assert_eq!(s.max_s, 4.0);
        assert!(s.p50_s == 2.0 || s.p50_s == 3.0);
    }

    #[test]
    fn empty_sample_is_zeros() {
        let s = LatencySummary::of(vec![]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_s, 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = LatencySummary::of(xs);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.max_s);
    }
}
