//! Content hashing of token chunks.
//!
//! Chunks are identified by an FNV-1a hash of their token ids, the same
//! content-addressing idea vLLM uses for paged blocks: two requests that
//! retrieve the same chunk text map to the same cache entry regardless of
//! where the chunk lands in the LLM input.

use cb_tokenizer::TokenId;

/// Identifier of a cached text chunk (content hash of its tokens).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over the token id stream.
pub fn hash_tokens(tokens: &[TokenId]) -> ChunkId {
    let mut h = FNV_OFFSET;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    ChunkId(h)
}

/// Hash chaining for prefix identification (used by the prefix-caching
/// baseline): the id of a block *in context* depends on every preceding
/// block, exactly like vLLM's prefix block hashes.
pub fn chain_hash(prev: ChunkId, tokens: &[TokenId]) -> ChunkId {
    let mut h = FNV_OFFSET;
    // Fold the parent id in first so chained ids differ from plain hashes
    // even for a zero parent.
    for b in prev.0.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &t in tokens {
        for b in t.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    ChunkId(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_tokens_same_hash() {
        assert_eq!(hash_tokens(&[1, 2, 3]), hash_tokens(&[1, 2, 3]));
    }

    #[test]
    fn different_tokens_different_hash() {
        assert_ne!(hash_tokens(&[1, 2, 3]), hash_tokens(&[1, 2, 4]));
        assert_ne!(hash_tokens(&[1, 2, 3]), hash_tokens(&[3, 2, 1]));
    }

    #[test]
    fn empty_chunk_hashes_to_offset() {
        assert_eq!(hash_tokens(&[]).0, FNV_OFFSET);
    }

    #[test]
    fn chain_hash_depends_on_prefix() {
        let a = chain_hash(hash_tokens(&[1]), &[5, 6]);
        let b = chain_hash(hash_tokens(&[2]), &[5, 6]);
        assert_ne!(a, b);
    }

    #[test]
    fn chain_hash_differs_from_plain_hash() {
        assert_ne!(chain_hash(ChunkId(0), &[5, 6]), hash_tokens(&[5, 6]));
    }
}
