//! Offline stand-in for the `parking_lot` crate.
//!
//! A [`Mutex`] with the non-poisoning `lock()` signature, wrapping
//! `std::sync::Mutex` (a panicked holder's poison is swallowed, matching
//! parking_lot's behaviour of never poisoning).

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
