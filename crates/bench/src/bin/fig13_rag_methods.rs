//! Regenerates fig13 (see DESIGN.md §8 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig13::run();
}
