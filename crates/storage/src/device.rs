//! Storage device catalogue.

/// The storage devices the evaluation sweeps over (Figures 10 and 17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// CPU DRAM (pinned host memory).
    CpuRam,
    /// The paper's testbed NVMe SSD (measured 4.8 GB/s).
    NvmeSsd,
    /// The paper's "slower disk" (4 Gb/s ≈ 0.5 GB/s).
    SlowSsd,
    /// A 1 GB/s commodity SSD (Figure 10's example device).
    CommoditySsd,
    /// Cloud object storage over the network.
    ObjectStore,
}

/// Physical characteristics of a storage device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Catalogue entry this spec was derived from.
    pub kind: DeviceKind,
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained read throughput to GPU memory, bytes/second.
    pub read_bytes_per_s: f64,
    /// Per-request access latency, seconds.
    pub latency_s: f64,
    /// Storage cost, $ per GB-month (0 for RAM counts the DRAM rental via
    /// `cost_per_gb_month` anyway — DRAM is by far the most expensive).
    pub cost_per_gb_month: f64,
}

impl DeviceKind {
    /// The full catalogue, fastest first.
    pub fn all() -> [DeviceKind; 5] {
        [
            DeviceKind::CpuRam,
            DeviceKind::NvmeSsd,
            DeviceKind::CommoditySsd,
            DeviceKind::SlowSsd,
            DeviceKind::ObjectStore,
        ]
    }

    /// The catalogue spec for this device.
    ///
    /// Throughputs: RAM ≈ 16 GB/s effective host-to-GPU (PCIe 4.0 x16 in
    /// practice), NVMe 4.8 GB/s (measured in §7.1), commodity SSD 1 GB/s
    /// (Figure 10's running example), slow disk 4 Gb/s = 0.5 GB/s (§7.3),
    /// object store 0.2 GB/s. Costs follow typical 2024 cloud pricing used
    /// for the paper's cost argument (DRAM ≫ NVMe ≫ HDD ≫ object store).
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceKind::CpuRam => DeviceSpec {
                kind: self,
                name: "cpu-ram",
                read_bytes_per_s: 16.0e9,
                latency_s: 10e-6,
                cost_per_gb_month: 2.5,
            },
            DeviceKind::NvmeSsd => DeviceSpec {
                kind: self,
                name: "nvme-ssd",
                read_bytes_per_s: 4.8e9,
                latency_s: 100e-6,
                cost_per_gb_month: 0.25,
            },
            DeviceKind::CommoditySsd => DeviceSpec {
                kind: self,
                name: "commodity-ssd",
                read_bytes_per_s: 1.0e9,
                latency_s: 150e-6,
                cost_per_gb_month: 0.10,
            },
            DeviceKind::SlowSsd => DeviceSpec {
                kind: self,
                name: "slow-ssd-4gbps",
                read_bytes_per_s: 0.5e9,
                latency_s: 200e-6,
                cost_per_gb_month: 0.05,
            },
            DeviceKind::ObjectStore => DeviceSpec {
                kind: self,
                name: "object-store",
                read_bytes_per_s: 0.2e9,
                latency_s: 20e-3,
                cost_per_gb_month: 0.023,
            },
        }
    }

    /// Seconds to read `bytes` from this device.
    pub fn read_time(self, bytes: f64) -> f64 {
        let s = self.spec();
        s.latency_s + bytes / s.read_bytes_per_s
    }

    /// $ to keep `gb` stored for `months`.
    pub fn storage_cost(self, gb: f64, months: f64) -> f64 {
        self.spec().cost_per_gb_month * gb * months
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_ordered_fastest_first() {
        let all = DeviceKind::all();
        for w in all.windows(2) {
            assert!(
                w[0].spec().read_bytes_per_s >= w[1].spec().read_bytes_per_s,
                "{:?} slower than {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cheaper_devices_are_slower() {
        let all = DeviceKind::all();
        for w in all.windows(2) {
            assert!(
                w[0].spec().cost_per_gb_month >= w[1].spec().cost_per_gb_month,
                "{:?} cheaper than {:?} but faster",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn read_time_includes_latency() {
        let t0 = DeviceKind::ObjectStore.read_time(0.0);
        assert!(t0 >= 20e-3);
        let t1 = DeviceKind::ObjectStore.read_time(0.2e9);
        assert!((t1 - t0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nvme_matches_paper_measurement() {
        // §7.1: "1TB NVME SSD whose measured throughput is 4.8 GB/s".
        assert_eq!(DeviceKind::NvmeSsd.spec().read_bytes_per_s, 4.8e9);
    }

    #[test]
    fn storage_cost_scales_linearly() {
        let c = DeviceKind::NvmeSsd.storage_cost(100.0, 2.0);
        assert!((c - 0.25 * 200.0).abs() < 1e-9);
    }
}
