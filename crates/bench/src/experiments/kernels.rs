//! Kernel/forward-pass throughput: scalar vs blocked vs parallel.
//!
//! The repo's first measured perf baseline. Three arms run the same
//! workloads on the same model shapes:
//!
//! - **scalar** — the seed's reference path ([`Model::with_reference_kernels`]:
//!   per-head matmuls, copied column blocks, per-element mask/bias loops,
//!   copy-on-append caches), thread pool pinned to 1.
//! - **blocked** — the fused/blocked kernels, thread pool pinned to 1
//!   (isolates the single-core kernel win).
//! - **parallel** — the blocked kernels with a 4-thread pool (row-range and
//!   per-head parallelism; on a single-core host this measures that the
//!   parallel path adds no meaningful overhead).
//!
//! Three metrics per arm on the Small (Tiny) and Standard (Mistral-7B)
//! profiles, on the noise model (dense weights — [`Model::random`] exists
//! exactly for throughput benches where only the computation shape
//! matters):
//!
//! - **prefill tokens/s** — one full prefill of a fixed prompt.
//! - **blend TTFT (ms)** — `blend_pipelined` over serialized chunk caches
//!   (the engine's hot path: load + selective recompute + suffix).
//! - **decode tokens/s** — single-row forward steps against a growing
//!   cache (the steady-state generation loop).
//!
//! Each measurement is the best of several repetitions. Output lands in
//! `target/experiments/BENCH_kernels.json`; later PRs regress against it.

use std::time::Instant;

use cb_core::fusor::BlendConfig;
use cb_core::pipeline::{blend_pipelined, serialize_chunks};
use cb_model::{Model, ModelConfig, ModelProfile, Scratch};
use cb_tokenizer::{TokenId, TokenKind};

use crate::out::{emit, Row};

/// Options for the kernels experiment.
#[derive(Clone, Copy, Debug)]
pub struct KernelOpts {
    /// Shrunken sizes/repetitions (seconds, for CI).
    pub smoke: bool,
}

/// Sizes of one profile's workload.
struct Workload {
    prefill_tokens: usize,
    chunks: usize,
    chunk_tokens: usize,
    decode_prompt: usize,
    decode_steps: usize,
    reps: usize,
}

impl Workload {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                prefill_tokens: 64,
                chunks: 2,
                chunk_tokens: 24,
                decode_prompt: 24,
                decode_steps: 24,
                reps: 1,
            }
        } else {
            // Paper-scale shapes: fig. 12's retrieval setting is six
            // 512-token chunks, and prefill throughput is quoted on
            // multi-thousand-token contexts.
            Self {
                prefill_tokens: 2048,
                chunks: 6,
                chunk_tokens: 512,
                decode_prompt: 256,
                decode_steps: 128,
                reps: 3,
            }
        }
    }
}

fn filler_tokens(model: &Model, n: usize, salt: usize) -> Vec<TokenId> {
    let v = &model.cfg.vocab;
    (0..n)
        .map(|i| v.id(TokenKind::Filler(((i + salt) % 8) as u32)))
        .collect()
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_prefill(model: &Model, w: &Workload) -> f64 {
    let toks = filler_tokens(model, w.prefill_tokens, 0);
    let secs = best_secs(w.reps, || {
        let (cache, x) = model.prefill(&toks);
        assert_eq!(cache.len(), toks.len());
        std::hint::black_box(x.max_abs());
    });
    w.prefill_tokens as f64 / secs
}

fn bench_blend(model: &Model, bytes: &[bytes::Bytes], query: &[TokenId], w: &Workload) -> f64 {
    let cfg = BlendConfig::with_ratio(0.2);
    let secs = best_secs(w.reps, || {
        let out = blend_pipelined(model, cfg, bytes.to_vec(), query, None).expect("blend");
        std::hint::black_box(out.result.last_residual[0]);
    });
    secs * 1e3
}

fn bench_decode(model: &Model, w: &Workload) -> f64 {
    let prompt = filler_tokens(model, w.decode_prompt, 1);
    let tok = model.cfg.vocab.id(TokenKind::Filler(3));
    let mut best = f64::INFINITY;
    for _ in 0..w.reps.max(1) {
        // Prefill (untimed) sets up the cache; the timed region is the
        // steady-state single-row loop with a warm scratch arena.
        let (mut cache, _) = model.prefill(&prompt);
        cache.reserve(w.decode_steps);
        let mut scratch = Scratch::new();
        scratch.reserve_decode(
            model.cfg.n_heads,
            model.cfg.d_model(),
            model.cfg.kv_width(),
            cache.len() + w.decode_steps,
        );
        let t = Instant::now();
        for i in 0..w.decode_steps {
            model.forward_rows_with(
                &[tok],
                &[w.decode_prompt + i],
                &mut cache,
                None,
                &mut scratch,
            );
        }
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(cache.len());
    }
    w.decode_steps as f64 / best
}

/// Runs the experiment with default options.
pub fn run() {
    run_opts(KernelOpts { smoke: false });
}

/// Runs the experiment.
pub fn run_opts(opts: KernelOpts) {
    let w = Workload::new(opts.smoke);
    let arms: [(&str, bool, usize); 3] = [
        ("scalar", true, 1),
        ("blocked", false, 1),
        ("parallel", false, 4),
    ];
    let profiles = [
        ("Small", ModelProfile::Tiny),
        ("Standard", ModelProfile::Mistral7B),
    ];
    let mut rows = Vec::new();
    for (pname, profile) in profiles {
        let fast = Model::random(ModelConfig::standard(profile, 7));
        let chunks: Vec<Vec<TokenId>> = (0..w.chunks)
            .map(|c| filler_tokens(&fast, w.chunk_tokens, c))
            .collect();
        let bytes = serialize_chunks(&fast, &chunks);
        let query = filler_tokens(&fast, if opts.smoke { 8 } else { 16 }, 5);

        let mut scalar_base: Option<(f64, f64, f64)> = None;
        for (aname, reference, threads) in arms {
            cb_tensor::pool::set_threads(threads);
            let model = if reference {
                fast.clone().with_reference_kernels()
            } else {
                fast.clone()
            };
            let prefill_tps = bench_prefill(&model, &w);
            let blend_ms = bench_blend(&model, &bytes, &query, &w);
            let decode_tps = bench_decode(&model, &w);
            let base = *scalar_base.get_or_insert((prefill_tps, blend_ms, decode_tps));
            rows.push(
                Row::new("kernels")
                    .col("profile", pname)
                    .col("arm", aname)
                    .col("threads", threads)
                    .num("prefill_tok_s", prefill_tps)
                    .num("blend_ttft_ms", blend_ms)
                    .num("decode_tok_s", decode_tps)
                    .num("speedup_prefill", prefill_tps / base.0)
                    .num("speedup_blend_ttft", base.1 / blend_ms)
                    .num("speedup_decode", decode_tps / base.2),
            );
        }
    }
    cb_tensor::pool::set_threads(cb_tensor::pool::default_threads());
    emit("BENCH_kernels", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_arms_agree_on_answers() {
        // The three arms must compute the same blend, not just fast ones:
        // compare last residuals between scalar and blocked on one blend.
        let model = Model::random(ModelConfig::standard(ModelProfile::Tiny, 7));
        let chunks = vec![filler_tokens(&model, 12, 0), filler_tokens(&model, 12, 1)];
        let bytes = serialize_chunks(&model, &chunks);
        let query = filler_tokens(&model, 4, 5);
        let cfg = BlendConfig::with_ratio(0.3);
        let fast = blend_pipelined(&model, cfg, bytes.clone(), &query, None).unwrap();
        let scalar_model = model.clone().with_reference_kernels();
        let scalar = blend_pipelined(&scalar_model, cfg, bytes, &query, None).unwrap();
        let d =
            cb_tensor::stats::l2_distance(&fast.result.last_residual, &scalar.result.last_residual);
        assert!(d < 1e-3, "arms diverge: {d}");
    }
}
