//! Figure 14: TTFT vs request rate on the extended datasets.
//!
//! Paper shape: every scheme's TTFT blows up past its saturation rate;
//! CacheBlend's knee sits 2.8–5× further right than full recompute and
//! prefix caching.

use cb_baselines::SchemeKind;
use cb_serving::sim::{ServingConfig, Simulator};
use cb_serving::workload::{Workload, WorkloadConfig};
use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};

use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
    ];
    let mut rows = Vec::new();
    for pm in PaperModel::evaluation_models() {
        let perf = PerfModel::on_a40(pm);
        // Rate grid scaled to each model's service time so the knee is
        // visible for all of them.
        let full_service = perf.ttft_full_prefill(6 * 512 + 32);
        let base = 1.0 / full_service;
        for (ds_name, seed) in [("Musique-ext", 21u64), ("2WikiMQA-ext", 22u64)] {
            for mult in [0.2, 0.5, 0.8, 1.2, 2.0, 3.5, 5.0] {
                let rate = base * mult;
                let w = Workload::generate(&WorkloadConfig::extended(rate, seed));
                for scheme in schemes {
                    let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
                    let stats = Simulator::new(cfg).run(&w);
                    rows.push(
                        Row::new("fig14")
                            .col("model", perf.spec.name)
                            .col("dataset", ds_name)
                            .col("scheme", scheme.name())
                            .num("rate_rps", rate)
                            .num("mean_ttft_s", stats.ttft.mean_s)
                            .num("p95_ttft_s", stats.ttft.p95_s)
                            .num("hit_rate", stats.hit_rate)
                            .num("throughput_rps", stats.throughput_rps),
                    );
                }
            }
        }
    }
    emit("fig14_serving_rate", &rows);
}
