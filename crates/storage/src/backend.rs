//! Storage backends: where serialized KV bytes physically live.
//!
//! The tiered [`cb-kv::KvStore`] tracks *which* entry sits on *which* tier
//! and when to spill/promote; a [`StorageBackend`] answers only "hold these
//! bytes under this key" for one tier. Two implementations ship:
//!
//! - [`MemBackend`] — a RAM map; the fast tier.
//! - [`DiskBackend`](crate::disk::DiskBackend) — persistent file-per-chunk
//!   segments with a write-behind flusher; the capacity tier.
//!
//! Reads come in two shapes. [`StorageBackend::get`] returns the whole
//! entry (integrity-verified where the medium can corrupt, i.e. on disk).
//! [`StorageBackend::open_read`] returns a sequential [`ReadStream`] that
//! hands out the payload in caller-sized installments — the pipelined
//! loader fetches one transformer layer per installment so the read of
//! layer *i+1* overlaps the selective recompute of layer *i*, paying the
//! device's access latency once per entry instead of once per layer.
//!
//! An optional [`Throttle`] emulates a storage device's bandwidth/latency
//! (the §5.2 device grid) with real sleeps, so pipelining claims are
//! measured on real threads rather than modeled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::device::DeviceKind;

/// Errors surfaced by storage backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// An I/O operation failed (message carries the OS error).
    Io(String),
    /// A segment failed its integrity checksum (or its framing was torn).
    Corrupt,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io(e) => write!(f, "storage backend I/O error: {e}"),
            BackendError::Corrupt => write!(f, "storage segment corrupt"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Background-maintenance counters a backend may expose (log-structured
/// backends report their compactor's work here; simple backends have no
/// maintenance and return `None` from [`StorageBackend::maintenance`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Completed compaction passes.
    pub compactions: u64,
    /// Bytes of dead records reclaimed by compaction (victim file size
    /// minus the bytes rewritten for still-live records).
    pub reclaimed_bytes: u64,
}

/// Snapshot of a backend's filesystem-operation counters. Benchmarks use
/// these to compare layouts (file-per-chunk pays one `open` per read; a
/// packed log reads through cached handles) without `strace`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoOps {
    /// File/dir opens (including whole-file read/write convenience calls).
    pub opens: u64,
    /// Read calls.
    pub reads: u64,
    /// Write calls.
    pub writes: u64,
    /// Renames.
    pub renames: u64,
    /// File deletions.
    pub deletes: u64,
}

impl IoOps {
    /// Total filesystem operations.
    pub fn total(&self) -> u64 {
        self.opens + self.reads + self.writes + self.renames + self.deletes
    }
}

/// Internal atomic holder behind [`IoOps`] snapshots.
#[derive(Debug, Default)]
pub(crate) struct IoCounters {
    opens: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    renames: AtomicU64,
    deletes: AtomicU64,
}

impl IoCounters {
    pub(crate) fn open(&self) {
        self.opens.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn rename(&self) {
        self.renames.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn snapshot(&self) -> IoOps {
        IoOps {
            opens: self.opens.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// A sequential reader over one entry's payload.
///
/// Installments are served front to back; the backend charges its device
/// model's access latency at open time and bandwidth per installment.
pub trait ReadStream {
    /// Total payload bytes behind this stream.
    fn payload_len(&self) -> u64;

    /// Reads the next `len` bytes (the remainder if fewer are left).
    fn read_next(&mut self, len: usize) -> Result<Bytes, BackendError>;
}

/// One tier's byte store. Implementations are internally synchronized.
/// The tiering policy above keeps its own lock off the *read* path — a
/// slow (throttled) disk `get`/`open_read` never serializes concurrent
/// RAM hits — while management operations (spill, promote, remove,
/// persist) may issue brief backend calls under the policy lock: RAM map
/// ops, write-behind `put`s, and file deletes, all of which return
/// without device-speed waits.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Short label for stats/reporting ("mem", "disk:/path").
    fn name(&self) -> String;

    /// True if entries survive process restart (drives store recovery).
    fn persistent(&self) -> bool {
        false
    }

    /// True if other live handles use the same medium (shared segment
    /// dir). The tiering policy above promotes *by copy* from a shared
    /// tier — deleting the source segment would steal it from siblings.
    fn shared(&self) -> bool {
        false
    }

    /// Stores `bytes` under `key`, replacing any previous entry.
    fn put(&self, key: u64, bytes: Bytes) -> Result<(), BackendError>;

    /// Whole-entry read. Persistent backends verify the segment checksum
    /// and drop the segment on mismatch (returning
    /// [`BackendError::Corrupt`]).
    fn get(&self, key: u64) -> Result<Option<Bytes>, BackendError>;

    /// Opens a sequential payload stream (see [`ReadStream`]). Framing is
    /// verified at open; payload integrity is the caller's per-block
    /// checksums (`cb-kv`'s wire format carries them).
    fn open_read(&self, key: u64) -> Result<Option<Box<dyn ReadStream + Send>>, BackendError>;

    /// Attempts to locate `key` on the medium even if this handle has not
    /// indexed it. Exclusive backends own their index and return `None`
    /// for unindexed keys; *shared-directory* backends (several handles —
    /// possibly several processes — over one segment dir) re-probe the
    /// medium, index the segment on success, and return its payload
    /// length. Integrity is still verified by the read that follows.
    fn discover(&self, _key: u64) -> Option<u64> {
        None
    }

    /// Removes an entry; `true` if one was present.
    fn remove(&self, key: u64) -> bool;

    /// Drops this handle's claim on `key` without destroying shared
    /// state: private backends free the entry (same as [`Self::remove`]);
    /// shared backends only forget their index mapping, leaving the
    /// medium's copy for sibling handles. The tiering policy above uses
    /// this for capacity eviction, which must never unlink a segment
    /// siblings may still serve.
    fn forget(&self, key: u64) -> bool {
        self.remove(key)
    }

    /// True if `key` is held.
    fn contains(&self, key: u64) -> bool;

    /// All `(key, payload_len)` pairs currently held (recovery indexing).
    fn entries(&self) -> Vec<(u64, u64)>;

    /// Number of entries held.
    fn len(&self) -> usize;

    /// True if no entries are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes held (pending writes included).
    fn used_bytes(&self) -> u64;

    /// Blocks until queued write-behind work is durable. Surfaces the
    /// first write error since the previous flush.
    fn flush(&self) -> Result<(), BackendError>;

    /// Background-maintenance counters, for backends that run any (the
    /// segment log's compactor). `None` means "no maintenance machinery".
    fn maintenance(&self) -> Option<MaintenanceStats> {
        None
    }
}

/// Emulated device timing: every read sleeps `latency_s` once per access
/// plus `bytes / bytes_per_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throttle {
    /// Per-access latency, seconds.
    pub latency_s: f64,
    /// Sustained read bandwidth, bytes/second.
    pub bytes_per_s: f64,
}

impl Throttle {
    /// The throttle matching a catalogue device's spec.
    pub fn device(kind: DeviceKind) -> Self {
        let spec = kind.spec();
        Self {
            latency_s: spec.latency_s,
            bytes_per_s: spec.read_bytes_per_s,
        }
    }

    /// A pure-bandwidth throttle (no access latency).
    pub fn bandwidth(bytes_per_s: f64) -> Self {
        Self {
            latency_s: 0.0,
            bytes_per_s,
        }
    }

    /// Seconds one access of `bytes` takes on this device.
    pub fn read_secs(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bytes_per_s
    }

    pub(crate) fn charge_access(&self) {
        if self.latency_s > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(self.latency_s));
        }
    }

    pub(crate) fn charge_bytes(&self, bytes: usize) {
        if bytes > 0 && self.bytes_per_s.is_finite() && self.bytes_per_s > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(bytes as f64 / self.bytes_per_s));
        }
    }
}

/// Stream over an in-memory payload (also used for disk entries still
/// sitting in the write-behind queue — those are served from RAM like an
/// OS page cache would).
pub(crate) struct BytesStream {
    bytes: Bytes,
    pos: usize,
}

impl BytesStream {
    pub(crate) fn new(bytes: Bytes) -> Self {
        Self { bytes, pos: 0 }
    }
}

impl ReadStream for BytesStream {
    fn payload_len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_next(&mut self, len: usize) -> Result<Bytes, BackendError> {
        let end = (self.pos + len).min(self.bytes.len());
        let out = self.bytes.slice(self.pos..end);
        self.pos = end;
        Ok(out)
    }
}

/// The RAM tier: a synchronized map of entries.
#[derive(Debug, Default)]
pub struct MemBackend {
    inner: Mutex<MemState>,
}

#[derive(Debug, Default)]
struct MemState {
    entries: HashMap<u64, Bytes>,
    used: u64,
}

impl MemBackend {
    /// An empty RAM backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn name(&self) -> String {
        "mem".to_string()
    }

    fn put(&self, key: u64, bytes: Bytes) -> Result<(), BackendError> {
        let mut s = self.inner.lock();
        if let Some(old) = s.entries.insert(key, bytes) {
            s.used -= old.len() as u64;
        }
        let len = s.entries[&key].len() as u64;
        s.used += len;
        Ok(())
    }

    fn get(&self, key: u64) -> Result<Option<Bytes>, BackendError> {
        Ok(self.inner.lock().entries.get(&key).cloned())
    }

    fn open_read(&self, key: u64) -> Result<Option<Box<dyn ReadStream + Send>>, BackendError> {
        Ok(self
            .inner
            .lock()
            .entries
            .get(&key)
            .cloned()
            .map(|b| Box::new(BytesStream::new(b)) as Box<dyn ReadStream + Send>))
    }

    fn remove(&self, key: u64) -> bool {
        let mut s = self.inner.lock();
        match s.entries.remove(&key) {
            Some(old) => {
                s.used -= old.len() as u64;
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.inner.lock().entries.contains_key(&key)
    }

    fn entries(&self) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .entries
            .iter()
            .map(|(&k, v)| (k, v.len() as u64))
            .collect()
    }

    fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    fn flush(&self) -> Result<(), BackendError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrips_and_accounts() {
        let b = MemBackend::new();
        assert!(!b.contains(7));
        b.put(7, Bytes::from(vec![1, 2, 3])).unwrap();
        b.put(9, Bytes::from(vec![4; 10])).unwrap();
        assert_eq!(b.get(7).unwrap().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.used_bytes(), 13);
        // Replacement adjusts the accounting instead of double-counting.
        b.put(7, Bytes::from(vec![5; 5])).unwrap();
        assert_eq!(b.used_bytes(), 15);
        assert!(b.remove(7));
        assert!(!b.remove(7));
        assert_eq!(b.used_bytes(), 10);
    }

    #[test]
    fn mem_stream_reads_in_installments() {
        let b = MemBackend::new();
        b.put(1, Bytes::from((0u8..20).collect::<Vec<_>>()))
            .unwrap();
        let mut s = b.open_read(1).unwrap().unwrap();
        assert_eq!(s.payload_len(), 20);
        assert_eq!(s.read_next(8).unwrap().as_ref(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s.read_next(8).unwrap().len(), 8);
        assert_eq!(s.read_next(8).unwrap().len(), 4, "remainder");
        assert!(s.read_next(8).unwrap().is_empty(), "exhausted");
        assert!(b.open_read(42).unwrap().is_none());
    }

    #[test]
    fn throttle_math_matches_device_spec() {
        let t = Throttle::device(DeviceKind::NvmeSsd);
        assert_eq!(t.bytes_per_s, 4.8e9);
        let secs = t.read_secs(4_800_000);
        assert!((secs - (100e-6 + 1e-3)).abs() < 1e-9);
        let b = Throttle::bandwidth(1e9);
        assert_eq!(b.latency_s, 0.0);
    }
}
