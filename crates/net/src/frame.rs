//! The wire framing layer: every message travels as one length-prefixed,
//! checksummed frame.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"CBNF"
//! 4       2     protocol version (currently 1)
//! 6       4     payload length in bytes
//! 10      len   payload (one encoded `Message`)
//! 10+len  8     fnv64(payload) — the workspace storage checksum
//! ```
//!
//! The decoder validates in header order and **before allocating**: a
//! frame claiming a `u32::MAX` payload is rejected by the
//! [`MAX_FRAME_PAYLOAD`] bound without reserving a byte, and a truncated
//! buffer is reported as [`FrameError::Truncated`] rather than read past.
//! The checksum closes the gap the length prefix leaves open — a
//! bit-flipped payload of the right length still fails to verify.

use cb_storage::checksum::fnv64;
use std::io::{Read, Write};

/// Leading frame magic.
pub const FRAME_MAGIC: [u8; 4] = *b"CBNF";
/// Protocol version stamped into (and required of) every frame.
pub const FRAME_VERSION: u16 = 1;
/// Bytes before the payload: magic + version + payload length.
pub const HEADER_LEN: usize = 10;
/// Bytes after the payload: the FNV-1a checksum.
pub const TRAILER_LEN: usize = 8;
/// Upper bound on a payload. Registration frames carry whole token
/// vectors, so the bound is generous — but it exists precisely so a
/// corrupted or hostile length field can never drive an allocation.
pub const MAX_FRAME_PAYLOAD: usize = 32 << 20;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The version field names a protocol this build does not speak.
    BadVersion(u16),
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u32),
    /// The buffer or stream ended before the frame did.
    Truncated,
    /// The payload does not match its checksum.
    Checksum {
        /// Checksum carried by the frame trailer.
        expected: u64,
        /// Checksum recomputed over the received payload.
        actual: u64,
    },
    /// The underlying reader/writer failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversize(n) => {
                write!(
                    f,
                    "frame claims {n} payload bytes (max {MAX_FRAME_PAYLOAD})"
                )
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Checksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {expected:#x}, computed {actual:#x}"
                )
            }
            FrameError::Io(e) => write!(f, "frame transport i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    }
}

/// Wraps a payload into one complete frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload too large"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Decodes the frame at the front of `buf`, returning the payload slice
/// and the total bytes consumed. Validation is allocation-free: the
/// payload is borrowed, never copied.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let magic: [u8; 4] = buf[0..4].try_into().unwrap();
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let len = u32::from_le_bytes(buf[6..10].try_into().unwrap());
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let len = len as usize;
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let expected = u64::from_le_bytes(buf[HEADER_LEN + len..total].try_into().unwrap());
    let actual = fnv64(payload);
    if expected != actual {
        return Err(FrameError::Checksum { expected, actual });
    }
    Ok((payload, total))
}

/// Writes one frame to a stream (a socket). One call produces exactly the
/// bytes [`read_frame`] consumes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a stream, validating the header before the
/// payload allocation (an oversize length never allocates).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().unwrap();
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; TRAILER_LEN];
    r.read_exact(&mut trailer)?;
    let expected = u64::from_le_bytes(trailer);
    let actual = fnv64(&payload);
    if expected != actual {
        return Err(FrameError::Checksum { expected, actual });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_payload() {
        for payload in [&[][..], &[7u8][..], &[1, 2, 3, 4, 5, 6, 7, 8, 9][..]] {
            let frame = encode_frame(payload);
            let (got, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(got, payload);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn stream_roundtrip_matches_slice_decode() {
        let payload = b"over the stream";
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let got = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn consecutive_frames_decode_in_order() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_frame(b"first"));
        buf.extend_from_slice(&encode_frame(b"second"));
        let (p1, used) = decode_frame(&buf).unwrap();
        assert_eq!(p1, b"first");
        let (p2, _) = decode_frame(&buf[used..]).unwrap();
        assert_eq!(p2, b"second");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(b"sensitive payload");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 1;
            // Flips may hit the magic, version, length, payload, or
            // checksum — all must surface as *some* decode error.
            let res = decode_frame(&bad);
            assert!(res.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut frame = encode_frame(b"x");
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(FrameError::Oversize(u32::MAX)));
        assert_eq!(
            read_frame(&mut &frame[..]),
            Err(FrameError::Oversize(u32::MAX))
        );
    }

    #[test]
    fn truncation_at_any_point_is_reported() {
        let frame = encode_frame(b"will be cut");
        for keep in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..keep]),
                Err(FrameError::Truncated),
                "keeping {keep} bytes"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = encode_frame(b"v?");
        frame[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadVersion(7))
        ));
    }
}
