//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++), the [`Rng`] extension trait with
//! `random::<T>()` and `random_range(..)`, in-place [`seq::SliceRandom`]
//! shuffling, and [`seq::index::sample`]. Streams are deterministic per
//! seed but do **not** byte-match the real rand crate — all in-repo seeds
//! and statistical assertions were validated against this generator.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed (same seed ⇒ same stream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `StandardUniform`
/// distribution of rand 0.9).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types usable as `random_range` endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); span ≪ 2^64 in practice.
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span as u128);
                    }
                }
                lo.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize, i64);

/// Range argument forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        usize::sample_in(rng, *self.start(), *self.end() + 1)
    }
}

impl SampleRange<u32> for std::ops::RangeInclusive<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        u32::sample_in(rng, *self.start(), *self.end() + 1)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution
    /// (floats in `[0, 1)`, fair bools, full-range ints).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a (non-empty) range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place Fisher–Yates shuffling of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_in(rng, 0usize, i + 1);
                self.swap(i, j);
            }
        }
    }

    /// Sampling of distinct indices.
    pub mod index {
        use super::super::RngCore;

        /// A set of sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = super::super::SampleUniform::sample_in(rng, i, length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_both_halves() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 4000;
        let lows = (0..n).filter(|_| r.random::<f64>() < 0.5).count();
        assert!((n / 2 - n / 8..n / 2 + n / 8).contains(&lows), "{lows}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(2usize..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut r = SmallRng::seed_from_u64(17);
        let picked = super::seq::index::sample(&mut r, 20, 8).into_vec();
        assert_eq!(picked.len(), 8);
        let set: std::collections::HashSet<_> = picked.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(picked.iter().all(|&i| i < 20));
    }
}
