//! The structured vocabulary: token roles, id layout, and text rendering.

/// A token identifier. Ids are dense: control tokens first, then entity,
/// attribute, value, and filler ranges.
pub type TokenId = u32;

/// The role of a token in the structured vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Padding (also used as the "null" antecedent for coreference).
    Pad,
    /// Beginning of sequence; also acts as the null entity sink.
    Bos,
    /// Fact separator (rendered ".").
    Sep,
    /// Coreference marker: "the same entity as the most recent one".
    Ref,
    /// Query introducer (rendered "Q:").
    Query,
    /// End-of-query marker (rendered "?"); generation starts after it.
    QMark,
    /// End of answer.
    Eos,
    /// An entity name, e.g. "ent17".
    Entity(u32),
    /// An attribute name, e.g. "attr3".
    Attr(u32),
    /// A value word, e.g. "val42". Answers are sequences of values.
    Value(u32),
    /// A filler word carrying no task information.
    Filler(u32),
}

/// Number of control tokens preceding the entity range.
const N_CONTROL: u32 = 7;

/// A structured vocabulary with fixed-size entity/attribute/value/filler
/// ranges.
///
/// The id layout is `[control | entities | attrs | values | fillers]`, and
/// every mapping is a pure function of the four range sizes, so a `Vocab`
/// is cheap to construct and trivially consistent across crates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocab {
    n_entities: u32,
    n_attrs: u32,
    n_values: u32,
    n_fillers: u32,
}

impl Vocab {
    /// Creates a vocabulary with the given range sizes.
    ///
    /// # Panics
    ///
    /// Panics if any range is zero (the generators assume non-empty ranges).
    pub fn new(n_entities: u32, n_attrs: u32, n_values: u32, n_fillers: u32) -> Self {
        assert!(
            n_entities > 0 && n_attrs > 0 && n_values > 0 && n_fillers > 0,
            "all vocabulary ranges must be non-empty"
        );
        Self {
            n_entities,
            n_attrs,
            n_values,
            n_fillers,
        }
    }

    /// The default vocabulary used across the evaluation: large enough that
    /// synthetic datasets do not exhaust ids, small enough for tiny models.
    pub fn default_eval() -> Self {
        Self::new(96, 24, 96, 64)
    }

    /// Total number of token ids.
    pub fn size(&self) -> usize {
        (N_CONTROL + self.n_entities + self.n_attrs + self.n_values + self.n_fillers) as usize
    }

    /// Number of entity tokens.
    pub fn n_entities(&self) -> u32 {
        self.n_entities
    }

    /// Number of attribute tokens.
    pub fn n_attrs(&self) -> u32 {
        self.n_attrs
    }

    /// Number of value tokens.
    pub fn n_values(&self) -> u32 {
        self.n_values
    }

    /// Number of filler tokens.
    pub fn n_fillers(&self) -> u32 {
        self.n_fillers
    }

    /// Maps a token kind to its id.
    ///
    /// # Panics
    ///
    /// Panics if the kind's index exceeds its range.
    pub fn id(&self, kind: TokenKind) -> TokenId {
        match kind {
            TokenKind::Pad => 0,
            TokenKind::Bos => 1,
            TokenKind::Sep => 2,
            TokenKind::Ref => 3,
            TokenKind::Query => 4,
            TokenKind::QMark => 5,
            TokenKind::Eos => 6,
            TokenKind::Entity(e) => {
                assert!(e < self.n_entities, "entity index {e} out of range");
                N_CONTROL + e
            }
            TokenKind::Attr(a) => {
                assert!(a < self.n_attrs, "attr index {a} out of range");
                N_CONTROL + self.n_entities + a
            }
            TokenKind::Value(v) => {
                assert!(v < self.n_values, "value index {v} out of range");
                N_CONTROL + self.n_entities + self.n_attrs + v
            }
            TokenKind::Filler(w) => {
                assert!(w < self.n_fillers, "filler index {w} out of range");
                N_CONTROL + self.n_entities + self.n_attrs + self.n_values + w
            }
        }
    }

    /// Maps an id back to its kind.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the vocabulary.
    pub fn kind(&self, id: TokenId) -> TokenKind {
        assert!((id as usize) < self.size(), "token id {id} out of range");
        match id {
            0 => TokenKind::Pad,
            1 => TokenKind::Bos,
            2 => TokenKind::Sep,
            3 => TokenKind::Ref,
            4 => TokenKind::Query,
            5 => TokenKind::QMark,
            6 => TokenKind::Eos,
            _ => {
                let mut rest = id - N_CONTROL;
                if rest < self.n_entities {
                    return TokenKind::Entity(rest);
                }
                rest -= self.n_entities;
                if rest < self.n_attrs {
                    return TokenKind::Attr(rest);
                }
                rest -= self.n_attrs;
                if rest < self.n_values {
                    return TokenKind::Value(rest);
                }
                rest -= self.n_values;
                TokenKind::Filler(rest)
            }
        }
    }

    /// True if `id` is an entity token.
    pub fn is_entity(&self, id: TokenId) -> bool {
        matches!(self.kind(id), TokenKind::Entity(_))
    }

    /// True if `id` is a value token.
    pub fn is_value(&self, id: TokenId) -> bool {
        matches!(self.kind(id), TokenKind::Value(_))
    }

    /// Renders a token id as human-readable text.
    pub fn render(&self, id: TokenId) -> String {
        match self.kind(id) {
            TokenKind::Pad => "<pad>".into(),
            TokenKind::Bos => "<bos>".into(),
            TokenKind::Sep => ".".into(),
            TokenKind::Ref => "it".into(),
            TokenKind::Query => "Q:".into(),
            TokenKind::QMark => "?".into(),
            TokenKind::Eos => "<eos>".into(),
            TokenKind::Entity(e) => format!("ent{e}"),
            TokenKind::Attr(a) => format!("attr{a}"),
            TokenKind::Value(v) => format!("val{v}"),
            TokenKind::Filler(w) => format!("w{w}"),
        }
    }

    /// Renders a token sequence as space-separated text.
    pub fn render_seq(&self, ids: &[TokenId]) -> String {
        ids.iter()
            .map(|&t| self.render(t))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses text produced by [`Vocab::render_seq`] back into ids.
    ///
    /// Returns `None` if any word is not in the vocabulary. (Used by tests
    /// and the examples; the datasets work directly with ids.)
    pub fn parse_seq(&self, text: &str) -> Option<Vec<TokenId>> {
        text.split_whitespace()
            .map(|w| self.parse_word(w))
            .collect()
    }

    fn parse_word(&self, w: &str) -> Option<TokenId> {
        let kind = match w {
            "<pad>" => TokenKind::Pad,
            "<bos>" => TokenKind::Bos,
            "." => TokenKind::Sep,
            "it" => TokenKind::Ref,
            "Q:" => TokenKind::Query,
            "?" => TokenKind::QMark,
            "<eos>" => TokenKind::Eos,
            _ => {
                if let Some(n) = w.strip_prefix("ent") {
                    TokenKind::Entity(n.parse().ok()?)
                } else if let Some(n) = w.strip_prefix("attr") {
                    TokenKind::Attr(n.parse().ok()?)
                } else if let Some(n) = w.strip_prefix("val") {
                    TokenKind::Value(n.parse().ok()?)
                } else if let Some(n) = w.strip_prefix('w') {
                    TokenKind::Filler(n.parse().ok()?)
                } else {
                    return None;
                }
            }
        };
        // Range-check through `id`, but without panicking on bad input.
        let in_range = match kind {
            TokenKind::Entity(e) => e < self.n_entities,
            TokenKind::Attr(a) => a < self.n_attrs,
            TokenKind::Value(v) => v < self.n_values,
            TokenKind::Filler(f) => f < self.n_fillers,
            _ => true,
        };
        in_range.then(|| self.id(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_kind_roundtrip_covers_all_ids() {
        let v = Vocab::new(5, 4, 3, 2);
        for id in 0..v.size() as u32 {
            let k = v.kind(id);
            assert_eq!(v.id(k), id, "roundtrip failed for id {id} kind {k:?}");
        }
    }

    #[test]
    fn ranges_are_disjoint() {
        let v = Vocab::new(5, 4, 3, 2);
        assert_ne!(v.id(TokenKind::Entity(4)), v.id(TokenKind::Attr(0)));
        assert_ne!(v.id(TokenKind::Attr(3)), v.id(TokenKind::Value(0)));
        assert_ne!(v.id(TokenKind::Value(2)), v.id(TokenKind::Filler(0)));
    }

    #[test]
    fn size_counts_everything() {
        let v = Vocab::new(5, 4, 3, 2);
        assert_eq!(v.size(), 7 + 5 + 4 + 3 + 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entity_out_of_range_panics() {
        let v = Vocab::new(5, 4, 3, 2);
        let _ = v.id(TokenKind::Entity(5));
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = Vocab::default_eval();
        let seq = vec![
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(17)),
            v.id(TokenKind::Attr(3)),
            v.id(TokenKind::Value(42)),
            v.id(TokenKind::Sep),
            v.id(TokenKind::Ref),
            v.id(TokenKind::Query),
            v.id(TokenKind::QMark),
        ];
        let text = v.render_seq(&seq);
        assert_eq!(text, "<bos> ent17 attr3 val42 . it Q: ?");
        assert_eq!(v.parse_seq(&text), Some(seq));
    }

    #[test]
    fn parse_rejects_unknown_words() {
        let v = Vocab::default_eval();
        assert_eq!(v.parse_seq("hello"), None);
        assert_eq!(v.parse_seq("ent99999"), None);
    }

    #[test]
    fn class_predicates() {
        let v = Vocab::default_eval();
        assert!(v.is_entity(v.id(TokenKind::Entity(0))));
        assert!(!v.is_entity(v.id(TokenKind::Value(0))));
        assert!(v.is_value(v.id(TokenKind::Value(5))));
    }
}
