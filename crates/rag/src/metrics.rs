//! Generation-quality metrics: token-level F1 and Rouge-L.
//!
//! F1 follows the SQuAD convention (bag-of-tokens overlap) used for
//! Musique/2WikiMQA; Rouge-L follows Lin (2004) (LCS-based F-measure) used
//! for SAMSum/MultiNews.

use cb_tokenizer::TokenId;
use std::collections::HashMap;

/// Token-level F1 between a prediction and a gold answer.
///
/// Returns 1.0 when both are empty (vacuously perfect), 0.0 when exactly
/// one is empty.
pub fn f1_score(pred: &[TokenId], gold: &[TokenId]) -> f32 {
    if pred.is_empty() && gold.is_empty() {
        return 1.0;
    }
    if pred.is_empty() || gold.is_empty() {
        return 0.0;
    }
    let mut gold_counts: HashMap<TokenId, usize> = HashMap::new();
    for &t in gold {
        *gold_counts.entry(t).or_default() += 1;
    }
    let mut overlap = 0usize;
    for &t in pred {
        if let Some(c) = gold_counts.get_mut(&t) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let p = overlap as f32 / pred.len() as f32;
    let r = overlap as f32 / gold.len() as f32;
    2.0 * p * r / (p + r)
}

/// Length of the longest common subsequence.
fn lcs_len(a: &[TokenId], b: &[TokenId]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &x in a {
        for (j, &y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Rouge-L F-measure between a prediction and a gold summary.
pub fn rouge_l(pred: &[TokenId], gold: &[TokenId]) -> f32 {
    if pred.is_empty() && gold.is_empty() {
        return 1.0;
    }
    if pred.is_empty() || gold.is_empty() {
        return 0.0;
    }
    let lcs = lcs_len(pred, gold) as f32;
    if lcs == 0.0 {
        return 0.0;
    }
    let p = lcs / pred.len() as f32;
    let r = lcs / gold.len() as f32;
    2.0 * p * r / (p + r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_scores_one() {
        assert_eq!(f1_score(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(rouge_l(&[1, 2, 3], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn disjoint_scores_zero() {
        assert_eq!(f1_score(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(rouge_l(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        // pred {1,2}, gold {2,3}: overlap 1, P = R = 0.5, F1 = 0.5.
        assert!((f1_score(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn f1_is_order_insensitive_but_rouge_is_not() {
        let a = [1, 2, 3];
        let rev = [3, 2, 1];
        assert_eq!(f1_score(&a, &rev), 1.0);
        assert!(rouge_l(&a, &rev) < 1.0);
    }

    #[test]
    fn f1_respects_multiplicity() {
        // pred has one `1`, gold needs two.
        let s = f1_score(&[1], &[1, 1]);
        // overlap 1, P = 1, R = 0.5 → F1 = 2/3.
        assert!((s - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rouge_l_prefix_match() {
        // pred [1,2], gold [1,2,3,4]: LCS 2, P=1, R=0.5 → 2/3.
        assert!((rouge_l(&[1, 2], &[1, 2, 3, 4]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(f1_score(&[], &[]), 1.0);
        assert_eq!(f1_score(&[], &[1]), 0.0);
        assert_eq!(f1_score(&[1], &[]), 0.0);
        assert_eq!(rouge_l(&[], &[]), 1.0);
        assert_eq!(rouge_l(&[], &[1]), 0.0);
    }

    #[test]
    fn lcs_skips_gaps() {
        // LCS of [1,9,2,9,3] and [1,2,3] is 3.
        assert_eq!(lcs_len(&[1, 9, 2, 9, 3], &[1, 2, 3]), 3);
    }
}
