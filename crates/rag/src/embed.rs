//! Deterministic text embeddings (the SentenceTransformers stand-in).
//!
//! A chunk or query is embedded as the L2-normalized sum of per-token
//! random feature vectors (seeded by token id). Two texts sharing tokens —
//! a query naming an entity and the chunk stating facts about it — land
//! close in L2, which is all the retrieval experiments need.

use cb_tokenizer::TokenId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 64;

/// A deterministic embedder.
#[derive(Clone, Debug)]
pub struct Embedder {
    seed: u64,
}

impl Embedder {
    /// Creates an embedder; the same seed always produces the same space.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn token_feature(&self, t: TokenId) -> [f32; EMBED_DIM] {
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (t as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let mut f = [0.0f32; EMBED_DIM];
        for v in &mut f {
            *v = if rng.random::<bool>() { 1.0 } else { -1.0 };
        }
        f
    }

    /// Embeds a token sequence (bag-of-tokens, L2-normalized).
    pub fn embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut acc = vec![0.0f32; EMBED_DIM];
        for &t in tokens {
            let f = self.token_feature(t);
            for (a, b) in acc.iter_mut().zip(f.iter()) {
                *a += b;
            }
        }
        let norm = acc.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut acc {
                *v /= norm;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_tensor::stats::l2_distance;

    #[test]
    fn deterministic() {
        let e = Embedder::new(3);
        assert_eq!(e.embed(&[1, 2, 3]), e.embed(&[1, 2, 3]));
    }

    #[test]
    fn normalized() {
        let e = Embedder::new(3);
        let v = e.embed(&[5, 9, 11]);
        let n: f32 = v.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shared_tokens_are_closer() {
        let e = Embedder::new(3);
        let q = e.embed(&[10, 20]);
        let near = e.embed(&[10, 20, 30, 31]);
        let far = e.embed(&[40, 41, 42, 43]);
        assert!(l2_distance(&q, &near) < l2_distance(&q, &far));
    }

    #[test]
    fn empty_input_embeds_to_zero() {
        let e = Embedder::new(3);
        assert!(e.embed(&[]).iter().all(|&v| v == 0.0));
    }
}
