//! Observability overhead guard: is the `cb-obs` instrumentation cheap
//! enough to leave on in production?
//!
//! Two kinds of measurement land in `target/experiments/BENCH_obs.json`:
//!
//! - **Per-op microcosts** — the ns/op of each primitive the serving hot
//!   path calls (`Counter::inc`, `Histogram::record`, a `Span`
//!   begin/drop with a bound trace context, `now_nanos`, and the
//!   disabled-path early return that a compile-time `noop` build folds
//!   to). Each is a median over several trials of a tight loop, so the
//!   numbers are deterministic enough to assert on.
//! - **Per-token budget** — a real [`EngineService`] on the tiny model
//!   serves a warm decode workload; the measured mean of the
//!   `cb_decode_token_seconds` histogram is the denominator. The decode
//!   hot path pays exactly one `Instant::now`, one `Histogram::record`,
//!   and one `Counter::inc` per token (see `cb_core::scheduler`), so
//!   the asserted guard is their summed microcost as a fraction of the
//!   per-token decode time: it must stay under one percent.
//!
//! The same workload is also served twice end-to-end — instrumentation
//! enabled vs. runtime-disabled via [`cb_obs::set_enabled`] (the closest
//! one process gets to the compile-time `noop` baseline) — and both
//! throughputs are reported. That A/B delta is *informational*: on a
//! loaded CI host a sub-1% wall-clock difference is below scheduler
//! noise, which is exactly why the hard assert is on the deterministic
//! per-op ratio instead.
//!
//! The binary exits non-zero when the guard fails, so CI treats a
//! regression in instrumentation cost like any other test failure.
//!
//! [`EngineService`]: cb_core::scheduler::EngineService

use std::time::Instant;

use cb_core::engine::{EngineBuilder, Request};
use cb_core::scheduler::{EngineService, ServiceConfig};
use cb_model::ModelProfile;
use cb_obs::metrics::Registry;
use cb_obs::trace::{Span, TraceContext, Tracer};
use cb_tokenizer::{TokenKind, Vocab};

use crate::out::{emit, Row};

/// Options for the overhead guard.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObsOpts {
    /// Shrink loop counts so the guard finishes in a couple of seconds.
    pub smoke: bool,
}

/// Medians a few trials of `ops` iterations of `f`, returning ns/op.
fn ns_per_op(ops: u64, mut f: impl FnMut(u64)) -> f64 {
    let trials = 5;
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        for i in 0..ops {
            f(i);
        }
        samples.push(start.elapsed().as_nanos() as f64 / ops as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[trials / 2]
}

/// Serves `requests` warm decode requests and returns
/// `(wall_seconds, decoded_tokens)`.
fn serve_workload(service: &EngineService, requests: usize) -> (f64, u64) {
    let vocab: Vocab = service.engine().model().cfg.vocab.clone();
    let chunk = vec![
        vocab.id(TokenKind::Entity(3)),
        vocab.id(TokenKind::Attr(1)),
        vocab.id(TokenKind::Value(7)),
        vocab.id(TokenKind::Sep),
    ];
    let id = service
        .engine()
        .register_chunk(&chunk)
        .expect("chunk registers");
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(3)),
        vocab.id(TokenKind::Attr(1)),
        vocab.id(TokenKind::QMark),
    ];
    let mk = || {
        Request::new(vec![id], query.clone())
            .ratio(0.15)
            .max_new_tokens(16)
    };
    // Warm: store hot, worker thread paged in, histogram buckets touched.
    service.submit(mk()).expect("warmup serves");
    let mut tokens = 0u64;
    let start = Instant::now();
    for _ in 0..requests {
        let resp = service.submit(mk()).expect("workload serves");
        tokens += resp.answer.len() as u64;
    }
    (start.elapsed().as_secs_f64(), tokens)
}

/// Runs the full guard and emits rows.
pub fn run() {
    run_opts(ObsOpts::default());
}

/// Runs the guard with explicit options.
pub fn run_opts(opts: ObsOpts) {
    let ops: u64 = if opts.smoke { 200_000 } else { 2_000_000 };
    let requests = if opts.smoke { 24 } else { 96 };
    let reg = Registry::global();

    // -- per-op microcosts ------------------------------------------------
    let counter = reg.counter("cb_bench_obs_ops_total");
    let hist = reg.histogram("cb_bench_obs_op_seconds");
    let inc_ns = ns_per_op(ops, |_| counter.inc());
    // Vary the value so the bucket index is not branch-predicted into
    // irrelevance: cycle across three decades of magnitude.
    let record_ns = ns_per_op(ops, |i| hist.record(1_000 + (i % 997) * 1_000));
    let now_ns = ns_per_op(ops, |_| {
        std::hint::black_box(cb_obs::now_nanos());
    });
    let span_ops = ops / 10; // spans hit the ring lock; keep the loop short
    let span_ns = {
        let _ctx = TraceContext::enter(0xBEEF, 1);
        let n = ns_per_op(span_ops, |_| {
            Span::begin("bench").end();
        });
        Tracer::global().clear();
        n
    };
    cb_obs::set_enabled(false);
    let disabled_ns = ns_per_op(ops, |i| {
        counter.inc();
        hist.record(i);
    });
    cb_obs::set_enabled(true);

    // -- per-token decode budget -----------------------------------------
    let build = || {
        EngineService::new(
            EngineBuilder::new(ModelProfile::Tiny)
                .seed(11)
                .build()
                .expect("engine builds"),
            ServiceConfig::default().workers(1).queue_capacity(64),
        )
    };
    // A/B arms: the disabled arm first, so the enabled arm's histogram
    // mean reflects only instrumented serving.
    cb_obs::set_enabled(false);
    let (off_wall, off_tokens) = serve_workload(&build(), requests);
    cb_obs::set_enabled(true);
    let before = reg.snapshot();
    let (on_wall, on_tokens) = serve_workload(&build(), requests);
    let after = reg.snapshot();

    // The decode-time denominator comes from the instrumented arm's own
    // histogram delta — the measured mean inter-token gap.
    let (d_count, d_sum) = {
        let b = before.hist("cb_decode_token_seconds");
        let a = after.hist("cb_decode_token_seconds");
        let (bc, bs) = b.map(|h| (h.count, h.sum)).unwrap_or((0, 0));
        let (ac, au) = a.map(|h| (h.count, h.sum)).unwrap_or((0, 0));
        (ac.saturating_sub(bc), au.saturating_sub(bs))
    };
    assert!(d_count > 0, "workload decoded no tokens");
    let decode_ns = d_sum as f64 / d_count as f64;

    // One Instant::now + one Histogram::record + one Counter::inc per
    // decoded token (cb_core::scheduler's Event::Token arm).
    let per_token_overhead_ns = now_ns + record_ns + inc_ns;
    let overhead_frac = per_token_overhead_ns / decode_ns;
    let on_tok_s = on_tokens as f64 / on_wall;
    let off_tok_s = off_tokens as f64 / off_wall;

    let rows = vec![
        Row::new("obs_microcost")
            .num("counter_inc_ns", inc_ns)
            .num("hist_record_ns", record_ns)
            .num("now_nanos_ns", now_ns)
            .num("span_begin_end_ns", span_ns)
            .num("disabled_path_ns", disabled_ns),
        Row::new("obs_overhead")
            .num("decode_token_ns", decode_ns)
            .num("per_token_instr_ns", per_token_overhead_ns)
            .num("overhead_frac", overhead_frac)
            .col("budget", "< 0.01")
            .col("pass", overhead_frac < 0.01),
        Row::new("obs_ab")
            .num("enabled_tok_s", on_tok_s)
            .num("disabled_tok_s", off_tok_s)
            .num("ab_delta_frac", (off_tok_s - on_tok_s) / off_tok_s)
            .col("note", "informational: wall-clock A/B, host-noise bound"),
    ];
    emit("BENCH_obs", &rows);

    println!(
        "obs overhead: {per_token_overhead_ns:.1} ns instrumented per token \
         over a {decode_ns:.0} ns decode step = {:.3}% (budget 1%)",
        overhead_frac * 100.0
    );
    assert!(
        overhead_frac < 0.01,
        "instrumentation overhead {:.3}% exceeds the 1% budget \
         (per-token instr {per_token_overhead_ns:.1} ns, decode {decode_ns:.0} ns)",
        overhead_frac * 100.0
    );
}
