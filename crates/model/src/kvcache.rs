//! KV cache containers.
//!
//! A [`KvCache`] holds, for every transformer layer, one K row and one V row
//! per cached token. Rows are laid out head-major: row = `[head0 | head1 |
//! …]`, each slice `head_dim` wide. K rows are stored *with RoPE applied at
//! the position recorded in [`KvCache::positions`]* — relocating a cache to
//! a different position range is done by the Appendix-A re-rotation (see
//! `cb-core::rope_align`), never by recomputation.

use cb_tensor::Matrix;

/// One layer's cached keys and values (`seq × kv_width` each).
#[derive(Clone, Debug, PartialEq)]
pub struct LayerKv {
    /// Keys, RoPE-rotated at their recorded positions.
    pub k: Matrix,
    /// Values.
    pub v: Matrix,
}

impl LayerKv {
    /// An empty layer cache of the given row width.
    pub fn empty(kv_width: usize) -> Self {
        Self {
            k: Matrix::zeros(0, kv_width),
            v: Matrix::zeros(0, kv_width),
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    /// True if no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the rows of `k`/`v` (shape `n × kv_width`) in place —
    /// amortized O(n) per append (and allocation-free once
    /// [`LayerKv::reserve`] has sized the buffers), where the historical
    /// implementation re-copied the whole accumulated cache every call.
    pub fn append(&mut self, k: &Matrix, v: &Matrix) {
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        self.k.extend_rows(k);
        self.v.extend_rows(v);
    }

    /// Appends rows `lo..hi` of `k`/`v` without slicing a temporary.
    pub fn append_rows(&mut self, k: &Matrix, v: &Matrix, lo: usize, hi: usize) {
        self.k.extend_from_rows(k, lo, hi);
        self.v.extend_from_rows(v, lo, hi);
    }

    /// The seed's copy-on-append (`vcat` of old + new). Kept only as the
    /// faithful "scalar baseline" arm of the throughput benchmarks.
    pub fn append_vcat(&mut self, k: &Matrix, v: &Matrix) {
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        self.k = Matrix::vcat(&[&self.k, k]);
        self.v = Matrix::vcat(&[&self.v, v]);
    }

    /// Reserves capacity for `extra` more cached tokens.
    pub fn reserve(&mut self, extra: usize) {
        self.k.reserve_rows(extra);
        self.v.reserve_rows(extra);
    }

    /// Overwrites rows `rows[i]` with row `i` of `k`/`v` (selective
    /// recompute scatters fresh HKVD rows into the loaded cache).
    pub fn scatter(&mut self, rows: &[usize], k: &Matrix, v: &Matrix) {
        self.k.scatter_rows(rows, k);
        self.v.scatter_rows(rows, v);
    }
}

/// A multi-layer KV cache with the absolute position of every cached token.
#[derive(Clone, Debug, PartialEq)]
pub struct KvCache {
    /// One entry per transformer layer.
    pub layers: Vec<LayerKv>,
    /// Absolute position of each cached token (row index → position).
    pub positions: Vec<usize>,
    /// The token ids the rows were computed from (needed by selective
    /// recompute to re-embed HKVD tokens).
    pub tokens: Vec<u32>,
}

impl KvCache {
    /// An empty cache for a model with `n_layers` layers and `kv_width`-wide
    /// rows.
    pub fn empty(n_layers: usize, kv_width: usize) -> Self {
        Self {
            layers: vec![LayerKv::empty(kv_width); n_layers],
            positions: Vec::new(),
            tokens: Vec::new(),
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Reserves capacity for `extra` more tokens on every layer (decode
    /// loops call this once so steady-state appends allocate nothing).
    pub fn reserve(&mut self, extra: usize) {
        for l in &mut self.layers {
            l.reserve(extra);
        }
        self.positions.reserve(extra);
        self.tokens.reserve(extra);
    }

    /// Concatenates caches for consecutive text segments into one cache.
    ///
    /// The caller is responsible for the segments' positions being already
    /// disjoint and increasing (use `cb-core::rope_align` to relocate each
    /// segment first).
    ///
    /// # Panics
    ///
    /// Panics if layer counts differ or positions are not strictly
    /// increasing across the seam.
    pub fn concat(parts: &[&KvCache]) -> KvCache {
        assert!(!parts.is_empty(), "concat of zero caches");
        let n_layers = parts[0].n_layers();
        let mut out = KvCache {
            layers: Vec::with_capacity(n_layers),
            positions: Vec::new(),
            tokens: Vec::new(),
        };
        for l in 0..n_layers {
            let ks: Vec<&Matrix> = parts
                .iter()
                .map(|p| {
                    assert_eq!(p.n_layers(), n_layers, "layer count mismatch");
                    &p.layers[l].k
                })
                .collect();
            let vs: Vec<&Matrix> = parts.iter().map(|p| &p.layers[l].v).collect();
            out.layers.push(LayerKv {
                k: Matrix::vcat(&ks),
                v: Matrix::vcat(&vs),
            });
        }
        for p in parts {
            out.positions.extend_from_slice(&p.positions);
            out.tokens.extend_from_slice(&p.tokens);
        }
        assert!(
            out.positions.windows(2).all(|w| w[0] < w[1]),
            "concatenated cache positions must be strictly increasing"
        );
        out
    }

    /// Total f32 elements held (K + V across layers), used for size
    /// accounting by the KV store.
    pub fn element_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| 2 * l.k.rows() * l.k.cols())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_cache(n_layers: usize, rows: usize, width: usize, fill: f32, pos0: usize) -> KvCache {
        let mut c = KvCache::empty(n_layers, width);
        for l in 0..n_layers {
            let k = Matrix::from_fn(rows, width, |r, d| fill + (r * width + d) as f32 * 0.01);
            let v = Matrix::from_fn(rows, width, |r, d| -fill - (r * width + d) as f32 * 0.01);
            c.layers[l].append(&k, &v);
        }
        c.positions = (pos0..pos0 + rows).collect();
        c.tokens = vec![7; rows];
        c
    }

    #[test]
    fn empty_cache_has_no_tokens() {
        let c = KvCache::empty(3, 8);
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 3);
        assert_eq!(c.element_count(), 0);
    }

    #[test]
    fn append_grows_rows() {
        let mut l = LayerKv::empty(4);
        let k = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        l.append(&k, &k);
        assert_eq!(l.len(), 2);
        l.append(&k, &k);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn scatter_overwrites_selected_rows() {
        let mut l = LayerKv::empty(2);
        let k = Matrix::from_fn(3, 2, |_, _| 1.0);
        l.append(&k, &k);
        let fresh = Matrix::from_fn(1, 2, |_, _| 9.0);
        l.scatter(&[1], &fresh, &fresh);
        assert_eq!(l.k.row(0), &[1.0, 1.0]);
        assert_eq!(l.k.row(1), &[9.0, 9.0]);
        assert_eq!(l.v.row(1), &[9.0, 9.0]);
    }

    #[test]
    fn concat_preserves_order_and_positions() {
        let a = toy_cache(2, 3, 4, 1.0, 0);
        let b = toy_cache(2, 2, 4, 5.0, 3);
        let c = KvCache::concat(&[&a, &b]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.positions, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.layers[0].k.row(0), a.layers[0].k.row(0));
        assert_eq!(c.layers[1].k.row(3), b.layers[1].k.row(0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn concat_rejects_overlapping_positions() {
        let a = toy_cache(1, 3, 4, 1.0, 0);
        let b = toy_cache(1, 2, 4, 5.0, 1);
        let _ = KvCache::concat(&[&a, &b]);
    }

    #[test]
    fn element_count_counts_k_and_v() {
        let c = toy_cache(2, 3, 4, 0.0, 0);
        assert_eq!(c.element_count(), 2 * 2 * 3 * 4);
    }
}
