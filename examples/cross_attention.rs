//! The Figure 3/4 illustration: why full KV reuse gives a wrong answer on
//! a two-chunk comparative question, shown with real attention matrices.
//!
//! The paper's example prepends two player-stat chunks to "who scored more
//! goals?"; the structured-vocabulary analogue is a coreference fact whose
//! subject lives in the other chunk. This example prints the recall head's
//! forward attention row (the `?` position) under (a) full prefill and
//! (b) full KV reuse, making the missing cross-attention visible, then
//! shows CacheBlend restoring it.
//!
//! Run with: `cargo run --release --example cross_attention`

use cacheblend::blend::fusor::{BlendConfig, Fusor};
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::model::model::ForwardTrace;
use cacheblend::model::{Model, ModelConfig, ModelProfile};
use cacheblend::tokenizer::TokenKind::*;

fn print_attention_row(model: &Model, labels: &[String], attn: &cacheblend::tensor::Matrix) {
    // Last traced row = the `?` position; print its distribution over the
    // context in coarse ASCII.
    let row = attn.row(attn.rows() - 1);
    println!("  attention of '?' over context (final layer, mean over heads):");
    for (i, (&w, label)) in row.iter().zip(labels.iter()).enumerate() {
        if w > 0.02 {
            let bar = "#".repeat((w * 40.0) as usize + 1);
            println!("    [{i:2}] {label:<6} {w:>6.3} {bar}");
        }
    }
    let _ = model;
}

fn main() {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let vocab = model.cfg.vocab.clone();
    let t = |k| vocab.id(k);

    // Chunk 1: "ent5 scored val1 goals." Chunk 2: "it also has attr3 =
    // val9" — the Messi/Ronaldo structure: the second chunk's fact is
    // about the first chunk's entity.
    let chunk1 = vec![t(Entity(5)), t(Attr(0)), t(Value(1)), t(Sep)];
    let chunk2 = vec![t(Ref), t(Attr(3)), t(Value(9)), t(Sep)];
    let query = vec![t(Query), t(Entity(5)), t(Attr(3)), t(QMark)];

    let mut full_tokens = vec![t(Bos)];
    full_tokens.extend_from_slice(&chunk1);
    full_tokens.extend_from_slice(&chunk2);
    full_tokens.extend_from_slice(&query);
    let labels: Vec<String> = full_tokens.iter().map(|&x| vocab.render(x)).collect();

    println!("context: {}", vocab.render_seq(&full_tokens));
    println!("gold answer: {}\n", vocab.render(t(Value(9))));

    // (a) Full prefill: trace the suffix attention.
    let mut cache = model.new_cache();
    let positions: Vec<usize> = (0..full_tokens.len()).collect();
    let mut trace = ForwardTrace::default();
    let x = model.forward_rows(&full_tokens, &positions, &mut cache, Some(&mut trace));
    let last = x.row(x.rows() - 1).to_vec();
    let answer = model.decode_greedy(&mut cache, &last, 4);
    println!("(a) full KV recompute → {}", vocab.render_seq(&answer));
    print_attention_row(&model, &labels, trace.attn.last().unwrap());

    // (b) Full KV reuse: the REF fact's binding was computed without chunk
    // 1, so the recall head finds nothing.
    let parts = vec![
        precompute_chunk(&model, &chunk1),
        precompute_chunk(&model, &chunk2),
    ];
    let reuse = cacheblend::baselines::run_full_reuse(&model, parts, &query, 4, true);
    println!(
        "\n(b) full KV reuse     → {}   (wrong: cross-attention lost)",
        if reuse.answer.is_empty() {
            "<no answer>".to_string()
        } else {
            vocab.render_seq(&reuse.answer)
        }
    );

    // (c) CacheBlend: selective recompute restores the attention edge.
    let parts = vec![
        precompute_chunk(&model, &chunk1),
        precompute_chunk(&model, &chunk2),
    ];
    let fusor = Fusor::new(&model, BlendConfig::with_ratio(0.5));
    let out = fusor.blend(parts, &query, true);
    let mut cache = out.cache;
    let blend = model.decode_greedy(&mut cache, &out.last_residual, 4);
    println!("\n(c) CacheBlend        → {}", vocab.render_seq(&blend));
    print_attention_row(
        &model,
        &labels,
        out.trace.as_ref().unwrap().attn.last().unwrap(),
    );

    println!(
        "\nKV deviation per context token (layer 1) — the HKVD signal:\n  {:?}",
        out.stats
            .first_layer_deviations
            .iter()
            .map(|d| (d * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
