//! LangChain-style RAG alternatives: MapReduce and MapRerank (§7.1).
//!
//! Both process each chunk *independently* (so every chunk is a prefix and
//! prefix caching applies), then combine:
//!
//! - **MapReduce**: each map pass answers the query from one chunk; the
//!   non-empty per-chunk answers are re-encoded as facts and a reduce pass
//!   answers over them. An extra full LLM pass → high TTFT.
//! - **MapRerank**: each map pass answers with a confidence score (the
//!   first-token logit margin); the most confident answer wins. Cheap, but
//!   facts that need *multiple* chunks jointly can never be recovered.

use cb_model::Model;
use cb_tensor::ops::argmax;
use cb_tokenizer::{TokenId, TokenKind};

/// Outcome of a MapReduce / MapRerank run.
#[derive(Clone, Debug)]
pub struct RagMethodOutcome {
    /// The final answer tokens.
    pub answer: Vec<TokenId>,
    /// Tokens prefilled in each map pass.
    pub map_prefills: Vec<usize>,
    /// Tokens prefilled in the reduce pass (0 for MapRerank).
    pub reduce_prefill: usize,
}

/// Generates from `[BOS] ++ chunk ++ query` and reports the confidence of
/// the first decoded token (top-1 minus top-2 logit).
fn map_pass(
    model: &Model,
    chunk: &[TokenId],
    query: &[TokenId],
    max_tokens: usize,
) -> (Vec<TokenId>, f32, usize) {
    let mut toks = vec![model.cfg.vocab.id(TokenKind::Bos)];
    toks.extend_from_slice(chunk);
    toks.extend_from_slice(query);
    let prefilled = toks.len();
    let (mut cache, x) = model.prefill(&toks);
    let last = x.row(x.rows() - 1).to_vec();
    let logits = model.logits(&last);
    let best = argmax(&logits);
    let mut second = f32::NEG_INFINITY;
    for (i, &l) in logits.iter().enumerate() {
        if i != best && l > second {
            second = l;
        }
    }
    let confidence = logits[best] - second;
    let answer = model.decode_greedy(&mut cache, &last, max_tokens);
    (answer, confidence, prefilled)
}

/// LangChain MapReduce: map over chunks, reduce over the per-chunk answers.
pub fn run_map_reduce(
    model: &Model,
    chunks: &[Vec<TokenId>],
    query: &[TokenId],
    max_tokens: usize,
) -> RagMethodOutcome {
    assert!(query.len() >= 4, "query must be `Q: ent attr ?`");
    let vocab = &model.cfg.vocab;
    let mut map_prefills = Vec::with_capacity(chunks.len());
    let mut summaries: Vec<Vec<TokenId>> = Vec::new();
    for chunk in chunks {
        let (ans, _conf, prefilled) = map_pass(model, chunk, query, max_tokens);
        map_prefills.push(prefilled);
        if !ans.is_empty() {
            // Re-encode the per-chunk answer as a fact about the queried
            // (entity, attr) — the "summary" document of the reduce step.
            let mut fact = vec![query[1], query[2]];
            fact.extend_from_slice(&ans);
            fact.push(vocab.id(TokenKind::Sep));
            summaries.push(fact);
        }
    }
    if summaries.is_empty() {
        return RagMethodOutcome {
            answer: Vec::new(),
            map_prefills,
            reduce_prefill: 0,
        };
    }
    let mut reduce_ctx = vec![vocab.id(TokenKind::Bos)];
    for s in &summaries {
        reduce_ctx.extend_from_slice(s);
    }
    reduce_ctx.extend_from_slice(query);
    let reduce_prefill = reduce_ctx.len();
    let answer = model.generate(&reduce_ctx, max_tokens);
    RagMethodOutcome {
        answer,
        map_prefills,
        reduce_prefill,
    }
}

/// LangChain MapRerank: per-chunk answers scored by confidence; best wins.
pub fn run_map_rerank(
    model: &Model,
    chunks: &[Vec<TokenId>],
    query: &[TokenId],
    max_tokens: usize,
) -> RagMethodOutcome {
    let mut best: Option<(Vec<TokenId>, f32)> = None;
    let mut map_prefills = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let (ans, conf, prefilled) = map_pass(model, chunk, query, max_tokens);
        map_prefills.push(prefilled);
        if ans.is_empty() {
            continue;
        }
        if best.as_ref().map(|(_, c)| conf > *c).unwrap_or(true) {
            best = Some((ans, conf));
        }
    }
    RagMethodOutcome {
        answer: best.map(|(a, _)| a).unwrap_or_default(),
        map_prefills,
        reduce_prefill: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn chunks_and_query(m: &Model) -> (Vec<Vec<TokenId>>, Vec<TokenId>, TokenId) {
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [Entity(8), Attr(3), Value(9), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let q: Vec<TokenId> = [Query, Entity(8), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        (vec![c1, c2], q, v.id(Value(9)))
    }

    #[test]
    fn map_rerank_answers_single_chunk_fact() {
        let m = model();
        let (chunks, q, gold) = chunks_and_query(&m);
        let out = run_map_rerank(&m, &chunks, &q, 4);
        assert_eq!(out.answer, vec![gold]);
        assert_eq!(out.map_prefills.len(), 2);
        assert_eq!(out.reduce_prefill, 0);
    }

    #[test]
    fn map_reduce_answers_single_chunk_fact() {
        let m = model();
        let (chunks, q, gold) = chunks_and_query(&m);
        let out = run_map_reduce(&m, &chunks, &q, 4);
        assert_eq!(out.answer, vec![gold]);
        assert!(out.reduce_prefill > 0, "reduce pass must run");
    }

    #[test]
    fn both_fail_on_cross_chunk_facts() {
        // The fact needs chunk 1 (antecedent) and chunk 2 (REF fact)
        // jointly; chunk-independent processing cannot resolve it.
        let m = model();
        let v = &m.cfg.vocab;
        let c1: Vec<TokenId> = [Entity(5), Attr(0), Value(1), Sep]
            .map(|k| v.id(k))
            .to_vec();
        let c2: Vec<TokenId> = [Ref, Attr(3), Value(9), Sep].map(|k| v.id(k)).to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let gold = vec![v.id(Value(9))];
        let rerank = run_map_rerank(&m, &[c1.clone(), c2.clone()], &q, 4);
        assert_ne!(rerank.answer, gold);
        let reduce = run_map_reduce(&m, &[c1, c2], &q, 4);
        assert_ne!(reduce.answer, gold);
    }

    #[test]
    fn empty_map_answers_yield_empty_output() {
        let m = model();
        let v = &m.cfg.vocab;
        let c: Vec<TokenId> = [Filler(1), Filler(2), Filler(3)].map(|k| v.id(k)).to_vec();
        let q: Vec<TokenId> = [Query, Entity(5), Attr(3), QMark].map(|k| v.id(k)).to_vec();
        let out = run_map_reduce(&m, std::slice::from_ref(&c), &q, 4);
        assert!(out.answer.is_empty());
        assert_eq!(out.reduce_prefill, 0);
        let out = run_map_rerank(&m, &[c], &q, 4);
        assert!(out.answer.is_empty());
    }
}
