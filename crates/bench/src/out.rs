//! Experiment output: pretty tables on stdout + JSON rows on disk.

use std::fs;
use std::path::PathBuf;

/// One output row: a flat map of column → value.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment id, e.g. "fig12".
    pub experiment: String,
    /// Labelled values in column order.
    pub values: Vec<(String, String)>,
}

impl Row {
    /// Starts a row for an experiment.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            values: Vec::new(),
        }
    }

    /// Adds a string column.
    pub fn col(mut self, name: &str, value: impl ToString) -> Self {
        self.values.push((name.to_string(), value.to_string()));
        self
    }

    /// Adds a float column with 4 digits.
    pub fn num(mut self, name: &str, value: f64) -> Self {
        self.values.push((name.to_string(), format!("{value:.4}")));
        self
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders rows as a JSON array of `{experiment, values: {col: val}}`
/// objects (hand-rolled: the offline build has no serde).
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!(
            "    \"experiment\": \"{}\",\n    \"values\": {{",
            json_escape(&r.experiment)
        ));
        for (j, (k, v)) in r.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push_str("\n    }\n  }");
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Prints one markdown table per row group and writes them as JSON to
/// `target/experiments/<name>.json`.
fn print_table(rows: &[&Row]) {
    let headers: Vec<&str> = rows[0].values.iter().map(|(h, _)| h.as_str()).collect();
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        let vals: Vec<&str> = r.values.iter().map(|(_, v)| v.as_str()).collect();
        println!("| {} |", vals.join(" | "));
    }
}

/// Prints rows as markdown tables (one per experiment id, since different
/// experiments carry different columns) and writes them as JSON to
/// `target/experiments/<name>.json`.
pub fn emit(name: &str, rows: &[Row]) {
    if rows.is_empty() {
        println!("({name}: no rows)");
        return;
    }
    println!("\n## {name}");
    let mut groups: Vec<(&str, Vec<&Row>)> = Vec::new();
    for r in rows {
        match groups.iter_mut().find(|(e, _)| *e == r.experiment) {
            Some((_, g)) => g.push(r),
            None => groups.push((&r.experiment, vec![r])),
        }
    }
    let solo = groups.len() == 1;
    for (experiment, group) in groups {
        if !solo {
            println!("\n### {experiment}\n");
        } else {
            println!();
        }
        print_table(&group);
    }
    // JSON sidecar.
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        let _ = fs::write(&path, rows_to_json(rows));
        println!("\n(wrote {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_orders_columns() {
        let r = Row::new("figX").col("a", 1).num("b", 2.5);
        assert_eq!(r.values[0].0, "a");
        assert_eq!(r.values[1].1, "2.5000");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let rows = vec![Row::new("fig\"x").col("k", "a\nb"), Row::new("y")];
        let j = rows_to_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"x"));
        assert!(j.contains("a\\nb"));
        assert_eq!(j.matches("\"experiment\"").count(), 2);
    }
}
