//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the `bytes` 1.x API the workspace uses:
//! cheaply-cloneable immutable [`Bytes`] (an `Arc`'d buffer plus a view
//! range), a growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`]
//! reader/writer traits with the little-endian accessors the KV
//! serialization format needs.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into a shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Reader over a byte cursor (little-endian accessors advance the cursor).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.copy_to_slice(&mut b);
            b
        })
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes({
            let mut b = [0u8; 8];
            self.copy_to_slice(&mut b);
            b
        })
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Writer of little-endian scalars onto a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        b.put_i8(-3);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 4 + 8 + 4 + 1);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_i8(), -3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn index_and_to_vec() {
        let b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(&b[..2], &[9, 8]);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}
