//! Serving-layer integration: controller decisions driving the simulator,
//! and saturation/knee structure across schemes.

use cacheblend::baselines::SchemeKind;
use cacheblend::blend::controller::LoadingController;
use cacheblend::serving::sim::{ServingConfig, Simulator};
use cacheblend::serving::workload::{Workload, WorkloadConfig};
use cacheblend::storage::device::DeviceKind;
use cacheblend::storage::perf::{PaperModel, PerfModel};

#[test]
fn controller_ratio_feeds_the_simulator_consistently() {
    // The controller's per-device ratio keeps CacheBlend's simulated TTFT
    // monotone in device speed (slower device → no faster TTFT).
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let ctl = LoadingController::new(perf);
    let w = Workload::generate(&WorkloadConfig::extended(0.2, 3));
    let mut prev = 0.0;
    for device in [DeviceKind::CpuRam, DeviceKind::NvmeSsd, DeviceKind::SlowSsd] {
        let mut cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, device);
        cfg.recompute_ratio = ctl.pick_ratio(6 * cfg.chunk_tokens, device);
        let stats = Simulator::new(cfg).run(&w);
        assert!(
            stats.ttft.mean_s + 1e-9 >= prev,
            "TTFT decreased on a slower device: {} then {}",
            prev,
            stats.ttft.mean_s
        );
        prev = stats.ttft.mean_s;
    }
}

#[test]
fn saturation_knee_ordering_matches_figure_14() {
    // At a rate chosen above full-recompute's capacity but below
    // CacheBlend's, full recompute queues unboundedly while CacheBlend
    // stays near its unloaded latency.
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let saturating = 1.2 / perf.ttft_full_prefill(6 * 512 + 32);
    let w = Workload::generate(&WorkloadConfig::extended(saturating, 9));
    let run =
        |scheme| Simulator::new(ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd)).run(&w);
    let blend = run(SchemeKind::CacheBlend);
    let full = run(SchemeKind::FullRecompute);
    let prefix = run(SchemeKind::PrefixCaching);
    assert!(full.ttft.mean_s > 3.0 * blend.ttft.mean_s);
    assert!(prefix.ttft.mean_s > blend.ttft.mean_s);
    assert!(blend.throughput_rps > full.throughput_rps);
}

#[test]
fn low_rate_ttfts_match_the_analytic_model() {
    // With no queueing, simulated mean TTFT approaches the per-request
    // delay model (cache warm ⇒ blend path, cold misses raise the mean).
    let perf = PerfModel::on_a40(PaperModel::Yi34B);
    let w = Workload::generate(&WorkloadConfig::extended(0.01, 5));
    let cfg = ServingConfig::fig14(SchemeKind::FullRecompute, perf, DeviceKind::NvmeSsd);
    let stats = Simulator::new(cfg).run(&w);
    let analytic = perf.ttft_full_prefill(6 * 512 + 32);
    assert!(
        (stats.ttft.mean_s - analytic).abs() / analytic < 0.05,
        "sim {} vs model {}",
        stats.ttft.mean_s,
        analytic
    );
}

#[test]
fn workload_reuse_drives_blend_hit_rate_above_cold_start() {
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, DeviceKind::NvmeSsd);
    let small = Workload::generate(&WorkloadConfig {
        n_requests: 40,
        ..WorkloadConfig::extended(0.2, 5)
    });
    let large = Workload::generate(&WorkloadConfig {
        n_requests: 400,
        ..WorkloadConfig::extended(0.2, 5)
    });
    let cold = Simulator::new(cfg.clone()).run(&small);
    let warm = Simulator::new(cfg).run(&large);
    assert!(
        warm.hit_rate > cold.hit_rate,
        "{} !> {}",
        warm.hit_rate,
        cold.hit_rate
    );
}
