//! Storage device models and the CacheBlend delay/cost estimators (§5.1).
//!
//! The paper's loading controller reasons with two analytic estimators —
//! `T_recompute(r%, LLM, L) = r% × Prefill(LLM, L)` and
//! `T_load(LLM, L, device) = PerTokenKVSize(LLM) × L / Throughput(device)` —
//! plus a storage-cost estimator. This crate implements those models at
//! *paper scale*: the real Mistral-7B/Yi-34B/Llama-70B layer counts and KV
//! sizes, an A40-class GPU profile, and the device throughputs the paper
//! measures (4.8 GB/s NVMe, a 4 Gb/s slow disk, CPU RAM). The tiny
//! executable models in `cb-model` produce quality; this crate produces
//! TTFT, keeping each where it can be faithful.
//!
//! Since the tiered-storage subsystem, this crate also owns the *real*
//! byte stores the tiered `cb-kv::KvStore` places entries on: the
//! [`backend::StorageBackend`] trait with an in-RAM [`backend::MemBackend`]
//! and a persistent [`disk::DiskBackend`] (file-per-chunk segments,
//! write-behind flusher, crash-safe recovery), plus the shared
//! [`checksum::fnv64`] integrity hash and a [`backend::Throttle`] that
//! emulates the §5.2 device grid with real sleeps.
//!
//! Modules:
//!
//! - [`device`] — storage device catalogue (throughput, latency, $/GB·mo).
//! - [`perf`] — paper-scale model specs, GPU profile, prefill/recompute/
//!   load delay estimators, and pipelined TTFT.
//! - [`checksum`] — the workspace's shared word-wise FNV checksum.
//! - [`backend`] — the [`backend::StorageBackend`] tier-store trait and
//!   the RAM implementation.
//! - [`disk`] — the persistent file-per-chunk backend (reference layout).
//! - [`segment_log`] — the packed log-structured backend: append-only
//!   segment logs, group commit, startup replay with torn-tail recovery.
//! - [`compact`] — background compaction for the segment log.

pub mod backend;
pub mod checksum;
pub(crate) mod compact;
pub mod device;
pub mod disk;
pub mod perf;
pub mod segment_log;

pub use backend::{
    BackendError, IoOps, MaintenanceStats, MemBackend, ReadStream, StorageBackend, Throttle,
};
pub use checksum::fnv64;
pub use device::{DeviceKind, DeviceSpec};
pub use disk::DiskBackend;
pub use perf::{GpuSpec, PaperModel, PerfModel};
pub use segment_log::{LogStats, SegmentLogBackend, SegmentLogConfig};
