//! Scale-out serving: a [`ClusterService`] fronting three engine replicas
//! with chunk-locality routing, a shared persistent tier, and failover.
//!
//! Run with: `cargo run --release --example cluster_serving`

use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("cb-cluster-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Three replicas: each owns its model, scheduler, and a small RAM
    // tier; all share one persistent segment dir, so any replica can
    // serve any chunk that reached disk.
    let cluster = ClusterService::build(
        3,
        ServiceConfig::default().workers(1).queue_capacity(8),
        |_| {
            EngineBuilder::new(ModelProfile::Tiny)
                .seed(11)
                .storage(
                    StorageConfig::default()
                        .tier(DeviceKind::CpuRam, 1 << 20)
                        .shared_disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir, false),
                )
                .build()
        },
    )
    .expect("cluster builds");
    let v = cluster.replica(0).engine().model().cfg.vocab.clone();

    // Offline: register the chunk corpus cluster-wide. Every replica
    // learns the tokens; the KV cache is precomputed at each chunk's
    // *home* replica — the one rendezvous hashing will route to.
    let chunks: Vec<Vec<u32>> = (0..12)
        .map(|i| {
            vec![
                v.id(Entity(i as u32)),
                v.id(Attr(i as u32 % 8)),
                v.id(Value(i as u32 * 2)),
                v.id(Sep),
            ]
        })
        .collect();
    let ids = cluster.register_chunks(&chunks).unwrap();
    for (i, &id) in ids.iter().enumerate().take(4) {
        println!("chunk {i} → home replica {}", cluster.home_of(id));
    }

    // Online: repeated RAG contexts keep hitting the replica whose RAM is
    // warm for their chunks.
    let query = vec![v.id(Query), v.id(Entity(2)), v.id(Attr(2)), v.id(QMark)];
    for round in 0..6 {
        let set = vec![ids[2], ids[(round + 3) % 12], ids[(round + 7) % 12]];
        let resp = cluster
            .submit(
                Request::new(set, query.clone())
                    .ratio(0.45)
                    .max_new_tokens(2),
            )
            .unwrap();
        println!(
            "round {round}: answer {:?} (ratio {:.2})",
            v.render_seq(&resp.answer),
            resp.recompute_ratio
        );
    }

    // Failover: mark a replica down — its traffic reroutes to the healthy
    // replicas, which can still serve every chunk (registry is
    // cluster-wide, the persistent tier is shared).
    let victim = cluster.home_of(ids[2]);
    cluster.set_replica_health(victim, false);
    let resp = cluster
        .submit(
            // The chunk is homed at the downed replica: the router must
            // fail over.
            Request::new(vec![ids[2]], query.clone())
                .ratio(0.45)
                .max_new_tokens(2),
        )
        .expect("failover serves");
    println!(
        "\nreplica {victim} down: request still answered {:?}",
        v.render_seq(&resp.answer)
    );
    cluster.set_replica_health(victim, true);

    let st = cluster.stats();
    println!("\ncluster stats:");
    println!("  admissions per replica: {:?}", st.admissions);
    println!(
        "  locality: {:.0}% of chunks served at their home replica, {:.0}% of requests at their preferred replica",
        100.0 * st.locality_hit_rate(),
        100.0 * st.request_locality_rate()
    );
    println!(
        "  spills {}, failovers {}, rejections {}",
        st.spills, st.failovers, st.rejections
    );
    let agg = cluster.aggregate_service_stats();
    println!(
        "  schedulers: completed {}, failed {}, deadline misses {}",
        agg.completed, agg.failed, agg.deadline_misses
    );

    let _ = std::fs::remove_dir_all(&dir);
}
