//! The network control plane, explicitly: a `Gateway` coordinator, two
//! `Worker`-wrapped engines joined over **real TCP sockets**, and a
//! `NetClient` session submitting requests — all in one process so the
//! example runs under `cargo run`, but every byte crosses a socket
//! exactly as it would between machines (`cb_gateway` / `cb_worker` are
//! the same types as standalone binaries).
//!
//! Four acts: serve with locality routing, survive a heartbeat
//! partition, survive a worker "process restart" (re-attach under the
//! same identity, slot adopted, chunk homes untouched), and survive the
//! **gateway itself dying** — a warm `Standby` that mirrored the
//! primary's roster and chunk registry takes over, the workers re-attach
//! to it, and a client serves requests against the inherited state
//! without re-registering anything.
//!
//! ```bash
//! cargo run --release --example net_control_plane
//! ```

use cacheblend::net::{
    Gateway, GatewayConfig, NetClient, Standby, TcpTransport, Worker, WorkerConfig,
};
use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_service() -> Arc<EngineService> {
    Arc::new(EngineService::new(
        EngineBuilder::new(ModelProfile::Tiny)
            .seed(11)
            .build()
            .expect("engine builds"),
        ServiceConfig::default().workers(1).queue_capacity(32),
    ))
}

fn main() {
    // Gateway side: listen, accept whatever dials in (workers say
    // HelloWorker, clients say HelloClient — the first frame decides).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let gateway = Arc::new(Gateway::new(
        GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400)),
    ));
    {
        // 5 connections total: two workers, a client, worker 0's
        // re-attach, and the standby. The thread (and its gateway
        // handle) ends after the last one.
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            for stream in listener.incoming().take(5) {
                let conn = TcpTransport::from_stream(stream.expect("accept")).expect("handshake");
                gateway.accept(Arc::new(conn)).expect("peer accepted");
            }
        });
    }

    // Worker side: each wraps an engine service and dials the gateway.
    // The services outlive their control-plane sessions — a re-attach
    // keeps the engine (and its warm cache) alive.
    let services: Vec<Arc<EngineService>> = (0..2).map(|_| tiny_service()).collect();
    let mut workers: Vec<Worker> = services
        .iter()
        .map(|service| {
            Worker::start(
                Arc::clone(service),
                Arc::new(TcpTransport::connect(addr).expect("worker dials gateway")),
                WorkerConfig::default().heartbeat_interval(Duration::from_millis(20)),
            )
            .expect("worker handshake")
        })
        .collect();
    while gateway.n_workers() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("gateway on {addr} with {} TCP workers", gateway.n_workers());

    // Client side: a third socket. Registration is content-addressed, so
    // the gateway computes each chunk's home and precomputes KV there.
    let client = NetClient::connect(Arc::new(
        TcpTransport::connect(addr).expect("client dials gateway"),
    ))
    .expect("client handshake");
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let chunks: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            vec![
                v.id(Entity(i)),
                v.id(Attr(i % 8)),
                v.id(Value(2 * i)),
                v.id(Sep),
            ]
        })
        .collect();
    let ids: Vec<_> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).expect("registers"))
        .collect();
    let query = |i: u32| vec![v.id(Query), v.id(Entity(i)), v.id(Attr(i % 8)), v.id(QMark)];

    for (i, &id) in ids.iter().enumerate() {
        let resp = client
            .submit(
                &Request::new(vec![id], query(i as u32))
                    .ratio(0.45)
                    .max_new_tokens(4),
            )
            .expect("request serves");
        println!(
            "request {i}: {} answer tokens, ttft {:.2?} (chunk home: worker {})",
            resp.answer.len(),
            resp.ttft.total,
            gateway.home_of(id),
        );
    }

    // Partition one worker: its heartbeats stop, the gateway marks it
    // down exactly once and routes everything to the survivor.
    workers[0].pause_heartbeats(true);
    let t0 = Instant::now();
    while gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("worker 0 silent → marked down after {:.0?}", t0.elapsed());
    for (i, &id) in ids.iter().enumerate() {
        client
            .submit(
                &Request::new(vec![id], query(i as u32))
                    .ratio(0.45)
                    .max_new_tokens(2),
            )
            .expect("survivor serves every request");
    }
    workers[0].pause_heartbeats(false);
    while !gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = gateway.stats();
    println!(
        "recovered; failovers {} (counted once per down edge), reroutes {}, \
         admissions {:?}, locality {:.2}",
        stats.failovers,
        stats.reroutes,
        stats.admissions,
        stats.locality_hit_rate(),
    );
    let (healthy, _) = client.cluster_status().expect("status rpc");
    assert_eq!(healthy, vec![true, true]);
    assert_eq!(stats.failovers, 1);

    // Act three — worker 0's "process restarts": its session drops, and
    // a fresh one under the same identity with a bumped incarnation
    // adopts the old slot. The roster never grows and no chunk home
    // moves, so the re-attached engine's cache is still the one the
    // router warms.
    let homes: Vec<usize> = ids.iter().map(|&id| gateway.home_of(id)).collect();
    let worker1_identity = workers[1].identity();
    let (id0, inc0) = workers[0].identity();
    workers.remove(0); // drop the session; the engine in services[0] survives
    while gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let readopted = Worker::start(
        Arc::clone(&services[0]),
        Arc::new(TcpTransport::connect(addr).expect("worker redials")),
        WorkerConfig::default()
            .identity(id0, inc0 + 1)
            .heartbeat_interval(Duration::from_millis(20)),
    )
    .expect("re-attach handshake");
    while !gateway.worker_healthy(0) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let homes_after: Vec<usize> = ids.iter().map(|&id| gateway.home_of(id)).collect();
    assert_eq!(gateway.n_workers(), 2, "adoption must not grow the roster");
    assert_eq!(homes_after, homes, "adoption must not move chunk homes");
    println!(
        "worker 0 re-attached as incarnation {} and adopted its slot (adoptions: {})",
        inc0 + 1,
        gateway.stats().adoptions,
    );

    // Act four — the gateway itself dies. A warm standby has been
    // mirroring the roster, chunk registry, and in-flight journal; when
    // the primary's replication feed goes dead it takes over with chunk
    // homes intact.
    let mut standby = Standby::connect(
        Arc::new(TcpTransport::connect(addr).expect("standby dials primary")),
        GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400)),
    )
    .expect("standby handshake");
    // The standby pumps the replication feed itself; one window is
    // plenty for the snapshot to land.
    while standby.n_chunks() < ids.len() {
        standby.pump_for(Duration::from_millis(50));
    }
    println!(
        "standby mirroring: {} chunks, {} roster slots",
        standby.n_chunks(),
        standby.roster().len(),
    );
    let waiter = std::thread::spawn(move || standby.wait_takeover());
    drop(client);
    drop(readopted);
    drop(workers);
    drop(gateway); // the accept thread already exited after its 5th connection
    let promoted = Arc::new(waiter.join().expect("standby thread"));
    println!(
        "primary dead → standby promoted with {} inherited roster slots (takeovers: {})",
        promoted.n_workers(),
        promoted.stats().takeovers,
    );

    // The promoted gateway binds its own listener; both workers re-attach
    // under their old identities (next incarnation) and a client resumes.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    {
        let promoted = Arc::clone(&promoted);
        std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                let conn = TcpTransport::from_stream(stream.expect("accept")).expect("handshake");
                promoted.accept(Arc::new(conn)).expect("peer accepted");
            }
        });
    }
    let _revived: Vec<Worker> = [(id0, inc0 + 1), worker1_identity]
        .iter()
        .zip(&services)
        .map(|(&(id, inc), service)| {
            Worker::start(
                Arc::clone(service),
                Arc::new(TcpTransport::connect(addr).expect("worker redials standby")),
                WorkerConfig::default()
                    .identity(id, inc + 1)
                    .heartbeat_interval(Duration::from_millis(20)),
            )
            .expect("re-attach to promoted gateway")
        })
        .collect();
    while !(promoted.worker_healthy(0) && promoted.worker_healthy(1)) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let client = NetClient::connect(Arc::new(
        TcpTransport::connect(addr).expect("client dials promoted gateway"),
    ))
    .expect("client handshake");
    // The chunk ids registered against the dead primary still resolve:
    // the registry was mirrored, and homes match the primary's.
    let resp = client
        .submit(
            &Request::new(vec![ids[0]], query(0))
                .ratio(0.45)
                .max_new_tokens(4),
        )
        .expect("promoted gateway serves");
    let homes_promoted: Vec<usize> = ids.iter().map(|&id| promoted.home_of(id)).collect();
    assert_eq!(homes_promoted, homes, "takeover must not move chunk homes");
    println!(
        "promoted gateway served {} answer tokens from the mirrored registry \
         (adoptions there: {})",
        resp.answer.len(),
        promoted.stats().adoptions,
    );
}
