//! Cluster serving: N engine replicas behind one chunk-locality router.
//!
//! One [`EngineService`] scales *up* (more workers over one engine); this
//! module scales *out*: a [`ClusterService`] fronts several replicas, each
//! with its own model instance, scheduler, and RAM store tier — typically
//! all backed by one **shared persistent tier** (a
//! [`DiskBackend::open_shared`] segment dir), so any replica can serve any
//! chunk via the existing prefetch pipeline even when its RAM is cold.
//!
//! **Routing.** Requests are routed by *rendezvous hashing over their
//! chunk ids*: every chunk has a stable home replica (the replica with the
//! highest rendezvous score for that chunk id), and a request goes to the
//! replica that is home to the most of its chunks. Repeated RAG contexts —
//! the paper's workload is exactly this — therefore keep hitting the
//! replica whose RAM cache is already warm, instead of smearing the
//! working set across every replica's cache.
//!
//! **Spill and failover.** Admission is non-blocking at the routed
//! replica: on [`TrySubmitError::QueueFull`] (or an unhealthy replica —
//! no workers, shut down, or marked down by the operator) the request
//! spills to the least-loaded healthy replica, probed via the scheduler's
//! non-blocking [`EngineService::probe`]. The shared persistent tier makes
//! the spill cheap: the alternate replica discovers the chunk's segment on
//! disk rather than re-precomputing it. Rendezvous hashing keeps placement
//! stable when replicas come and go — a chunk's home only moves if its
//! home replica is the one that changed.
//!
//! **Observability.** [`ClusterStats`] reports per-replica admissions, the
//! chunk- and request-level locality rates, spill/failover counts, and the
//! summed scheduler counters (deadline misses included).
//!
//! [`DiskBackend::open_shared`]: cb_storage::DiskBackend::open_shared

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cb_core::engine::{Engine, EngineError, Request, Response};
use cb_core::scheduler::{EngineService, ServiceConfig, ServiceStats, TrySubmitError};
use cb_core::stream::ResponseStream;
use cb_kv::ChunkId;
use cb_tokenizer::TokenId;

/// Errors surfaced by cluster submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// Every replica is unhealthy (no workers, shut down, or marked down);
    /// the request was not accepted anywhere.
    NoHealthyReplica,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoHealthyReplica => {
                write!(f, "no healthy replica available to serve the request")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Lifetime counters of a cluster (see [`ClusterService::stats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterStats {
    /// Requests admitted per replica (cluster submissions only).
    pub admissions: Vec<u64>,
    /// Requests that could not be admitted at their routed replica
    /// (queue full) and were placed on the least-loaded replica instead.
    pub spills: u64,
    /// Requests whose locality-preferred replica was unhealthy, so routing
    /// fell back to the healthy candidates.
    pub failovers: u64,
    /// Requests served by their locality-preferred replica.
    pub local_requests: u64,
    /// Requests admitted in total.
    pub total_requests: u64,
    /// Chunk references across all admitted requests.
    pub chunk_lookups: u64,
    /// Chunk references served by the chunk's home replica — the cache
    /// the rendezvous placement keeps warm.
    pub chunk_local: u64,
    /// Requests rejected because no replica was healthy.
    pub rejections: u64,
}

impl ClusterStats {
    /// Fraction of chunk references served at the chunk's home replica —
    /// the router's locality hit rate.
    pub fn locality_hit_rate(&self) -> f64 {
        if self.chunk_lookups == 0 {
            0.0
        } else {
            self.chunk_local as f64 / self.chunk_lookups as f64
        }
    }

    /// Fraction of requests served by their locality-preferred replica.
    pub fn request_locality_rate(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.local_requests as f64 / self.total_requests as f64
        }
    }
}

#[derive(Debug, Default)]
struct AtomicClusterStats {
    spills: AtomicU64,
    failovers: AtomicU64,
    local_requests: AtomicU64,
    total_requests: AtomicU64,
    chunk_lookups: AtomicU64,
    chunk_local: AtomicU64,
    rejections: AtomicU64,
}

/// SplitMix64 finalizer: a strong, cheap 64-bit mix for rendezvous scores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The cluster front end (see module docs). Dropping it shuts every
/// replica's scheduler down after draining its queue.
#[derive(Debug)]
pub struct ClusterService {
    replicas: Vec<EngineService>,
    /// Operator-controlled health flags (fault injection, maintenance);
    /// combined with each scheduler's own probe for routing eligibility.
    marked_healthy: Vec<AtomicBool>,
    admissions: Vec<AtomicU64>,
    stats: AtomicClusterStats,
}

impl ClusterService {
    /// Fronts an explicit set of running replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<EngineService>) -> Self {
        assert!(!replicas.is_empty(), "cluster needs at least one replica");
        let n = replicas.len();
        Self {
            replicas,
            marked_healthy: (0..n).map(|_| AtomicBool::new(true)).collect(),
            admissions: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stats: AtomicClusterStats::default(),
        }
    }

    /// Builds `n` replicas from an engine factory (called with the replica
    /// index) and starts each behind its own scheduler with `service_cfg`.
    /// Replicas meant to produce identical outputs must be built from the
    /// same model profile and seed — routing then changes only placement
    /// and latency, never results.
    pub fn build<F>(
        n: usize,
        service_cfg: ServiceConfig,
        mut engine: F,
    ) -> Result<Self, EngineError>
    where
        F: FnMut(usize) -> Result<Engine, EngineError>,
    {
        let replicas = (0..n)
            .map(|i| Ok(EngineService::new(engine(i)?, service_cfg)))
            .collect::<Result<Vec<_>, EngineError>>()?;
        Ok(Self::new(replicas))
    }

    /// Number of replicas (healthy or not).
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A replica's scheduler (for stats, probes, or direct registration).
    pub fn replica(&self, i: usize) -> &EngineService {
        &self.replicas[i]
    }

    /// Marks a replica up or down for routing. A downed replica receives
    /// no new cluster traffic (in-flight requests finish); marking it up
    /// restores it. Fault-injection tests and operators use this.
    pub fn set_replica_health(&self, i: usize, healthy: bool) {
        self.marked_healthy[i].store(healthy, Ordering::Relaxed);
    }

    /// True if replica `i` is eligible for routing: marked up *and* its
    /// scheduler can make progress (workers alive, not shut down).
    pub fn replica_healthy(&self, i: usize) -> bool {
        self.marked_healthy[i].load(Ordering::Relaxed) && self.replicas[i].probe().healthy()
    }

    /// The stable home replica of a chunk: the replica with the highest
    /// rendezvous score for its id, over *all* replicas (health does not
    /// move homes — routing falls back instead, so a recovering replica
    /// finds its cache assignments unchanged).
    pub fn home_of(&self, id: ChunkId) -> usize {
        (0..self.replicas.len())
            .max_by_key(|&r| splitmix64(id.0 ^ (r as u64).wrapping_mul(0xA24B_AED4_963E_E407)))
            .expect("at least one replica")
    }

    /// One-scan routing decision: `(target, preferred, failover)`. The
    /// preferred replica is the one home to the most of the set's chunks
    /// (ties broken by a rendezvous hash of the whole set,
    /// order-independently; health ignored, so placement is stable). The
    /// target is the preferred replica if healthy, else the best healthy
    /// candidate by the same rank (`None` when nothing is healthy).
    fn decide(&self, chunk_ids: &[ChunkId]) -> (Option<usize>, usize, bool) {
        let n = self.replicas.len();
        let mut votes = vec![0usize; n];
        let mut set_hash = 0u64;
        for &c in chunk_ids {
            votes[self.home_of(c)] += 1;
            set_hash ^= splitmix64(c.0);
        }
        let rank = |r: usize| {
            (
                votes[r],
                splitmix64(set_hash ^ (r as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
            )
        };
        let preferred = (0..n)
            .max_by_key(|&r| rank(r))
            .expect("at least one replica");
        if self.replica_healthy(preferred) {
            return (Some(preferred), preferred, false);
        }
        let target = (0..n)
            .filter(|&r| self.replica_healthy(r))
            .max_by_key(|&r| rank(r));
        (target, preferred, target.is_some())
    }

    /// The locality-preferred replica for a chunk set (health ignored).
    fn preferred(&self, chunk_ids: &[ChunkId]) -> usize {
        self.decide(chunk_ids).1
    }

    /// Routing decision for a chunk set: the locality-preferred replica if
    /// healthy, else the healthy replica with the best (votes, rendezvous)
    /// rank. `None` if no replica is healthy. The second field reports
    /// whether the preferred replica had to be skipped (a failover).
    pub fn route(&self, chunk_ids: &[ChunkId]) -> Option<(usize, bool)> {
        let (target, _, failover) = self.decide(chunk_ids);
        target.map(|t| (t, failover))
    }

    /// The healthy replica currently owing the least work (queued plus in
    /// flight), probed without blocking. Ties go to the lowest index.
    pub fn least_loaded(&self, exclude: Option<usize>) -> Option<usize> {
        (0..self.replicas.len())
            .filter(|&r| Some(r) != exclude && self.replica_healthy(r))
            .min_by_key(|&r| self.replicas[r].probe().load())
    }

    /// Registers a chunk cluster-wide: the tokens enter every replica's
    /// registry (so any replica can repair a miss by precompute), the KV
    /// cache is precomputed eagerly only at the chunk's *home* replica —
    /// warming exactly the cache the router will route to — and the
    /// entry is replicated onto the home store's persistent tier (when
    /// one is configured), so a spilled or failed-over request at any
    /// sibling replica discovers it there instead of re-precomputing.
    pub fn register_chunk(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        let id = self.register_chunk_lazy(tokens)?;
        let home = self.replicas[self.home_of(id)].engine();
        home.register_chunk(tokens)?;
        home.store()
            .replicate_to_persistent(id)
            .map_err(EngineError::from)?;
        Ok(id)
    }

    /// Registers a chunk on every replica without precomputing any KV
    /// (content-addressed ids are identical across replicas). The first
    /// request naming it pays the precompute at whichever replica serves
    /// it.
    pub fn register_chunk_lazy(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        let mut id = None;
        for r in &self.replicas {
            id = Some(r.engine().register_chunk_lazy(tokens)?);
        }
        Ok(id.expect("at least one replica"))
    }

    /// Registers many chunks, returning ids in input order.
    pub fn register_chunks(&self, chunks: &[Vec<TokenId>]) -> Result<Vec<ChunkId>, EngineError> {
        chunks.iter().map(|c| self.register_chunk(c)).collect()
    }

    /// Submits a request through the locality router and returns its event
    /// stream. Placement: routed replica if it admits, else spill to the
    /// least-loaded healthy replica (blocking there only if every healthy
    /// queue is full).
    pub fn submit_stream(&self, request: Request) -> Result<ResponseStream, ClusterError> {
        let (target, preferred, failover) = self.decide(&request.chunk_ids);
        let Some(target) = target else {
            self.stats.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(ClusterError::NoHealthyReplica);
        };
        if failover {
            self.stats.failovers.fetch_add(1, Ordering::Relaxed);
        }
        let chunk_ids = request.chunk_ids.clone();
        match self.replicas[target].try_submit_stream(request) {
            Ok(stream) => {
                self.record_admission(target, preferred, &chunk_ids);
                Ok(stream)
            }
            Err(TrySubmitError::QueueFull(request)) => {
                // The routed replica is saturated: place the request on
                // the least-loaded *other* healthy replica. The shared
                // persistent tier makes it able to serve the chunks
                // without re-precompute. With no alternate (single healthy
                // replica), there is nowhere to spill — block on the
                // routed queue itself, uncounted.
                let Some(spill) = self.least_loaded(Some(target)) else {
                    let stream = self.replicas[target].submit_stream(request);
                    self.record_admission(target, preferred, &chunk_ids);
                    return Ok(stream);
                };
                self.stats.spills.fetch_add(1, Ordering::Relaxed);
                let stream = match self.replicas[spill].try_submit_stream(request) {
                    Ok(stream) => stream,
                    // Every healthy queue is full: block on the least
                    // loaded one — its workers are alive, so space frees.
                    Err(TrySubmitError::QueueFull(request)) => {
                        self.replicas[spill].submit_stream(request)
                    }
                };
                self.record_admission(spill, preferred, &chunk_ids);
                Ok(stream)
            }
        }
    }

    /// Blocking one-shot convenience over [`ClusterService::submit_stream`].
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        match self.submit_stream(request) {
            Ok(stream) => stream.collect(),
            // Mapped onto the engine's error surface so callers see one
            // error type for "the request was never served".
            Err(ClusterError::NoHealthyReplica) => Err(EngineError::Canceled),
        }
    }

    /// Submits directly to an explicit replica, bypassing the router but
    /// keeping the cluster accounting (admin tooling and the bench harness
    /// drive placement themselves).
    pub fn submit_to(&self, replica: usize, request: Request) -> ResponseStream {
        let preferred = self.preferred(&request.chunk_ids);
        let chunk_ids = request.chunk_ids.clone();
        let stream = self.replicas[replica].submit_stream(request);
        self.record_admission(replica, preferred, &chunk_ids);
        stream
    }

    fn record_admission(&self, replica: usize, preferred: usize, chunk_ids: &[ChunkId]) {
        self.admissions[replica].fetch_add(1, Ordering::Relaxed);
        self.stats.total_requests.fetch_add(1, Ordering::Relaxed);
        if replica == preferred {
            self.stats.local_requests.fetch_add(1, Ordering::Relaxed);
        }
        let local = chunk_ids
            .iter()
            .filter(|&&c| self.home_of(c) == replica)
            .count();
        self.stats
            .chunk_lookups
            .fetch_add(chunk_ids.len() as u64, Ordering::Relaxed);
        self.stats
            .chunk_local
            .fetch_add(local as u64, Ordering::Relaxed);
    }

    /// Snapshot of the cluster counters.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            admissions: self
                .admissions
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            spills: self.stats.spills.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            local_requests: self.stats.local_requests.load(Ordering::Relaxed),
            total_requests: self.stats.total_requests.load(Ordering::Relaxed),
            chunk_lookups: self.stats.chunk_lookups.load(Ordering::Relaxed),
            chunk_local: self.stats.chunk_local.load(Ordering::Relaxed),
            rejections: self.stats.rejections.load(Ordering::Relaxed),
        }
    }

    /// Per-replica scheduler counters.
    pub fn service_stats(&self) -> Vec<ServiceStats> {
        self.replicas.iter().map(|r| r.stats()).collect()
    }

    /// Summed scheduler counters across replicas (deadline misses, peak
    /// queue depth as the max over replicas).
    pub fn aggregate_service_stats(&self) -> ServiceStats {
        let mut agg = ServiceStats::default();
        for s in self.service_stats() {
            agg.submitted += s.submitted;
            agg.rejected += s.rejected;
            agg.completed += s.completed;
            agg.failed += s.failed;
            agg.deadline_misses += s.deadline_misses;
            agg.canceled += s.canceled;
            agg.peak_queue_depth = agg.peak_queue_depth.max(s.peak_queue_depth);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_core::engine::EngineBuilder;
    use cb_model::ModelProfile;
    use cb_tokenizer::TokenKind::*;

    fn cluster(n: usize, workers: usize, capacity: usize) -> ClusterService {
        ClusterService::build(
            n,
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(capacity),
            |_| EngineBuilder::new(ModelProfile::Tiny).build(),
        )
        .unwrap()
    }

    /// Registers `n` distinct chunks and the cross-chunk query.
    fn scenario(c: &ClusterService, n: usize) -> (Vec<ChunkId>, Vec<TokenId>) {
        let v = c.replica(0).engine().model().cfg.vocab.clone();
        let chunks: Vec<Vec<TokenId>> = (0..n)
            .map(|i| {
                vec![
                    v.id(Entity(i as u32 % 16)),
                    v.id(Attr(i as u32 % 8)),
                    v.id(Value(i as u32 % 24)),
                    v.id(Sep),
                ]
            })
            .collect();
        let ids = c.register_chunks(&chunks).unwrap();
        let q = vec![v.id(Query), v.id(Entity(0)), v.id(Attr(0)), v.id(QMark)];
        (ids, q)
    }

    #[test]
    fn homes_are_stable_and_roughly_balanced() {
        let a = cluster(4, 0, 4);
        let b = cluster(4, 0, 4);
        let mut per_replica = [0usize; 4];
        for i in 0..1000u64 {
            let id = ChunkId(splitmix64(i));
            assert_eq!(a.home_of(id), b.home_of(id), "homes depend only on n");
            per_replica[a.home_of(id)] += 1;
        }
        for (r, &n) in per_replica.iter().enumerate() {
            assert!(
                (150..=350).contains(&n),
                "replica {r} homes {n}/1000 chunks — rendezvous should balance"
            );
        }
    }

    #[test]
    fn route_prefers_the_majority_home() {
        let c = cluster(3, 0, 4);
        // Build a set where one replica is home to most chunks.
        let ids: Vec<ChunkId> = (0..64).map(|i| ChunkId(splitmix64(1000 + i))).collect();
        let target = c.home_of(ids[0]);
        let majority: Vec<ChunkId> = ids
            .iter()
            .copied()
            .filter(|&c2| c.home_of(c2) == target)
            .take(3)
            .collect();
        let mut set = majority.clone();
        set.push(*ids.iter().find(|&&c2| c.home_of(c2) != target).unwrap());
        // 0-worker replicas are unhealthy, so route() falls back — use the
        // internal preference which ignores health.
        assert_eq!(c.preferred(&set), target);
        // Order-independence: shuffling the set does not change the pick.
        set.reverse();
        assert_eq!(c.preferred(&set), target);
    }

    #[test]
    fn cluster_serves_requests_and_reports_locality() {
        let c = cluster(2, 1, 8);
        let (ids, q) = scenario(&c, 6);
        for i in 0..12 {
            let set = vec![ids[i % 6], ids[(i + 1) % 6], ids[(i + 2) % 6]];
            let resp = c
                .submit(Request::new(set, q.clone()).ratio(0.45).max_new_tokens(2))
                .unwrap();
            assert!(resp.blend.stats.ctx_len > 0, "request really blended");
        }
        let st = c.stats();
        assert_eq!(st.total_requests, 12);
        assert_eq!(st.admissions.iter().sum::<u64>(), 12);
        assert_eq!(st.spills, 0, "unloaded cluster never spills");
        assert_eq!(st.failovers, 0);
        assert_eq!(
            st.request_locality_rate(),
            1.0,
            "every request served at its preferred replica"
        );
        assert!(
            st.locality_hit_rate() > 0.5,
            "majority voting keeps most chunks home"
        );
        assert_eq!(c.aggregate_service_stats().completed, 12);
    }

    #[test]
    fn eager_registration_warms_only_the_home_replica() {
        let c = cluster(3, 1, 8);
        let (ids, _) = scenario(&c, 8);
        for &id in &ids {
            let home = c.home_of(id);
            for r in 0..3 {
                assert_eq!(
                    c.replica(r).engine().store().contains(id),
                    r == home,
                    "chunk {id:?} must be cached exactly at home replica {home}"
                );
            }
            for r in 0..3 {
                assert_eq!(c.replica(r).engine().registered_chunks(), 8);
            }
        }
    }

    #[test]
    fn downed_replica_triggers_failover_and_recovers() {
        let c = cluster(2, 1, 8);
        let (ids, q) = scenario(&c, 4);
        let set = vec![ids[0], ids[1]];
        let preferred = c.preferred(&set);
        c.set_replica_health(preferred, false);
        let resp = c
            .submit(
                Request::new(set.clone(), q.clone())
                    .ratio(0.45)
                    .max_new_tokens(2),
            )
            .unwrap();
        assert!(!resp.answer.is_empty(), "failover still serves");
        let st = c.stats();
        assert_eq!(st.failovers, 1);
        assert_eq!(st.admissions[preferred], 0);
        assert_eq!(st.admissions[1 - preferred], 1);

        c.set_replica_health(preferred, true);
        c.submit(Request::new(set, q).ratio(0.45).max_new_tokens(2))
            .unwrap();
        assert_eq!(
            c.stats().admissions[preferred],
            1,
            "recovered replica gets its traffic back"
        );
    }

    #[test]
    fn no_healthy_replica_is_reported() {
        let c = cluster(2, 1, 4);
        let (ids, q) = scenario(&c, 2);
        c.set_replica_health(0, false);
        c.set_replica_health(1, false);
        let err = c
            .submit_stream(Request::new(ids.clone(), q.clone()))
            .unwrap_err();
        assert_eq!(err, ClusterError::NoHealthyReplica);
        assert_eq!(c.stats().rejections, 1);
        assert_eq!(
            c.submit(Request::new(ids, q)).unwrap_err(),
            EngineError::Canceled
        );
    }

    #[test]
    fn zero_worker_replicas_are_unhealthy_by_probe() {
        let c = cluster(2, 0, 4);
        assert!(!c.replica_healthy(0));
        assert!(!c.replica_healthy(1));
        let (ids, q) = scenario(&c, 2);
        assert_eq!(
            c.submit_stream(Request::new(ids, q)).unwrap_err(),
            ClusterError::NoHealthyReplica
        );
    }

    #[test]
    fn queue_full_spills_to_the_least_loaded_replica() {
        // Tiny queues: flood the preferred replica's queue through the
        // cluster until an admission observes QueueFull and spills. The
        // flood is retried because the 1-worker replica drains between
        // probes — the loop is bounded and the outcome asserted exactly.
        let c = cluster(2, 1, 1);
        let (ids, q) = scenario(&c, 4);
        let set = vec![ids[0], ids[1]];
        let mk = || {
            Request::new(set.clone(), q.clone())
                .ratio(0.45)
                .max_new_tokens(8)
        };
        let mut streams = Vec::new();
        for _ in 0..64 {
            streams.push(c.submit_stream(mk()).unwrap());
            if c.stats().spills > 0 {
                break;
            }
        }
        let st = c.stats();
        assert!(
            st.spills > 0,
            "a capacity-1 queue must overflow under a 64-request flood"
        );
        assert!(
            st.admissions.iter().all(|&a| a > 0),
            "spill placed work on the alternate replica: {:?}",
            st.admissions
        );
        for s in streams {
            s.collect().expect("every admitted request completes");
        }
    }
}
