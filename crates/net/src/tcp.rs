//! [`TcpTransport`]: the frame protocol over a real socket.
//!
//! Each connection runs **one demux thread** that blocks on the socket,
//! decodes frames as they arrive, and hands complete messages to an
//! in-process channel; [`Transport::recv`] reads from that channel. Sends
//! write the encoded frame under a mutex (frames are written atomically,
//! so concurrent senders — the worker's per-request forwarders, the
//! gateway's routing threads — never interleave bytes). `TCP_NODELAY` is
//! set: frames are small and latency-sensitive (token streaming).
//!
//! Dropping the transport shuts the socket down, which unblocks and ends
//! the demux thread.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::Message;
use crate::transport::{NetError, Transport};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

/// One end of a TCP control-plane connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    rx: Mutex<Receiver<Result<Message, NetError>>>,
    demux: Option<JoinHandle<()>>,
    peer: String,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream, spawning its demux thread.
    pub fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let writer = stream
            .try_clone()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let mut reader = stream
            .try_clone()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let (tx, rx): (Sender<Result<Message, NetError>>, _) = channel::unbounded();
        let demux = std::thread::Builder::new()
            .name(format!("cb-net-demux-{peer}"))
            .spawn(move || loop {
                let msg = match read_frame(&mut reader) {
                    Ok(payload) => Message::decode(&payload).map_err(NetError::from),
                    Err(FrameError::Truncated) => {
                        // EOF (clean close, or peer death mid-frame):
                        // report the connection closed and end the thread.
                        let _ = tx.send(Err(NetError::Closed));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(NetError::from(e)));
                        return;
                    }
                };
                let fatal = msg.is_err();
                if tx.send(msg).is_err() || fatal {
                    return;
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(Self {
            stream,
            writer: Mutex::new(writer),
            rx: Mutex::new(rx),
            demux: Some(demux),
            peer,
        })
    }

    /// Connects to a listening gateway/worker endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::Io(e.to_string()))?;
        Self::from_stream(stream)
    }

    /// Severs the connection now, both directions, without dropping the
    /// transport — the chaos tests' fault injector. The peer observes an
    /// abrupt close exactly as it would a process death, and every
    /// subsequent send/recv on this side fails with
    /// [`NetError::Closed`].
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn map_recv_err(e: RecvTimeoutError) -> NetError {
        match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Closed,
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &Message) -> Result<(), NetError> {
        let mut w = self.writer.lock().unwrap();
        write_frame(&mut *w, &msg.encode()).map_err(|_| NetError::Closed)
    }

    fn recv(&self) -> Result<Message, NetError> {
        let rx = self.rx.lock().unwrap();
        rx.recv().map_err(|_| NetError::Closed)?
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        let rx = self.rx.lock().unwrap();
        rx.recv_timeout(timeout).map_err(Self::map_recv_err)?
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Unblocks the demux thread's read_frame with EOF.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn tcp_roundtrips_messages_both_ways() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream).unwrap();
            // Echo three messages back with ids doubled.
            for _ in 0..3 {
                match t.recv().unwrap() {
                    Message::Status { rpc } => t.send(&Message::Status { rpc: rpc * 2 }).unwrap(),
                    other => panic!("unexpected {other:?}"),
                }
            }
        });
        let client = TcpTransport::connect(addr).unwrap();
        for i in 1..=3u64 {
            client.send(&Message::Status { rpc: i }).unwrap();
            assert_eq!(client.recv().unwrap(), Message::Status { rpc: i * 2 });
        }
        server.join().unwrap();
        // Server side gone: further receives observe the close.
        assert!(client.recv_timeout(Duration::from_secs(1)).is_err());
    }
}
