//! Tiered-storage TTFT: pipelined streaming vs unpipelined load vs full
//! prefill, across the §5.2 device bandwidth grid.
//!
//! Chunk KV entries live on a *real* disk tier (`cb-storage`'s
//! [`DiskBackend`] segment files) throttled to each catalogue device's
//! bandwidth/latency with real sleeps. Three arms serve the same request:
//!
//! - **pipelined** — `KvStore::prefetch` handles streamed through
//!   [`blend_prefetched`]: the device read of layer *i+1* overlaps the
//!   selective recompute of layer *i* (the paper's §5.2 pipeline).
//! - **unpipelined** — read each entry in full (throttled), then blend:
//!   the load sits entirely on the critical path (Figure 10(a)'s
//!   ablation).
//! - **full_prefill** — no cache at all: recompute the whole context.
//!
//! **Device emulation.** The scaled models' KV entries are ~10× smaller
//! per token than the paper's (fewer layers, narrower heads, fp32), so
//! running the catalogue devices at face value would make every load
//! trivially fast. Each device's bandwidth is instead scaled by
//! `our KV bytes/token ÷ paper KV bytes/token` (Mistral-7B: 128 KiB/token),
//! which makes the *per-token load time* on the emulated device equal the
//! real device's — the load side of the §5.2 load/compute race is
//! paper-faithful even though both sides are scaled.
//!
//! The headline metric is `hidden_frac`: the share of the *measured* raw
//! disk load time the pipeline removed from TTFT,
//! `(unpipelined − pipelined) / raw_load`. On a device whose load time is
//! at or below the blend's compute time the pipeline hides (nearly) all of
//! it; on very slow devices the residual `load − compute` stays exposed,
//! exactly as §5.2 predicts.
//!
//! Two further arms benchmark the storage subsystem itself:
//!
//! - **layout sweep** (`storage_layout` rows) — registers and reloads the
//!   same chunk population through the file-per-chunk [`DiskBackend`] and
//!   the packed [`SegmentLogBackend`], unthrottled, counting wall-clock
//!   *and* syscalls (each backend's [`cb_storage::IoOps`] ledger); then
//!   deletes half the population and reports what fraction of the dead
//!   bytes compaction reclaims.
//! - **quantized cold tier** (`storage_quantized` row) — stores one chunk
//!   population on an f32 packed tier and on an int8 *quantized* packed
//!   tier, reporting the on-disk footprint ratio plus a fig07-style CDF
//!   of the blend-output deviation the quantization introduces (each
//!   deviation normalized by the exact output's max-abs).
//!
//! Output lands in `target/experiments/BENCH_storage.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use cb_core::fusor::{BlendConfig, Fusor};
use cb_core::pipeline::{blend_prefetched, serialize_chunks};
use cb_kv::store::TierConfig;
use cb_kv::{ChunkId, KvStore};
use cb_model::{KvCache, Model, ModelConfig, ModelProfile};
use cb_storage::{
    DeviceKind, DiskBackend, IoOps, MemBackend, SegmentLogBackend, SegmentLogConfig,
    StorageBackend, Throttle,
};
use cb_tensor::stats::quantile;
use cb_tokenizer::{TokenId, TokenKind};

use crate::out::{emit, Row};

/// Options for the storage experiment.
#[derive(Clone, Debug, Default)]
pub struct StorageOpts {
    /// Shrunken sizes/repetitions (seconds, for CI).
    pub smoke: bool,
    /// Root directory for the throwaway cache dirs (default: a per-process
    /// directory under the system tempdir).
    pub dir: Option<PathBuf>,
}

struct Workload {
    chunks: usize,
    chunk_tokens: usize,
    query_tokens: usize,
    reps: usize,
}

impl Workload {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                chunks: 2,
                chunk_tokens: 24,
                query_tokens: 8,
                reps: 1,
            }
        } else {
            // Paper-shaped retrieval: four 256-token chunks + a short query
            // (fig. 12 runs six 512-token chunks; four 256s keep the sweep
            // under a minute while preserving the load/compute balance).
            Self {
                chunks: 4,
                chunk_tokens: 256,
                query_tokens: 16,
                reps: 3,
            }
        }
    }
}

fn filler_tokens(model: &Model, n: usize, salt: usize) -> Vec<TokenId> {
    let v = &model.cfg.vocab;
    (0..n)
        .map(|i| v.id(TokenKind::Filler(((i + salt) % 8) as u32)))
        .collect()
}

/// A tiny-RAM + throttled-disk store: every entry is disk-resident (the
/// RAM tier is below one entry, so promotion is impossible and each arm
/// measures genuine device reads). `bandwidth_scale` maps the catalogue
/// device's bandwidth onto the scaled models' entry sizes (see module
/// docs).
fn disk_resident_store(dir: &std::path::Path, device: DeviceKind, bandwidth_scale: f64) -> KvStore {
    let spec = device.spec();
    let throttle = Throttle {
        latency_s: spec.latency_s,
        bytes_per_s: spec.read_bytes_per_s * bandwidth_scale,
    };
    KvStore::with_backends(vec![
        (
            TierConfig::new("ram", 64),
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        ),
        (
            TierConfig::new(spec.name, 1 << 32),
            Arc::new(DiskBackend::new(dir, Some(throttle)).expect("cache dir")),
        ),
    ])
}

struct ArmTimes {
    full_prefill_s: f64,
    unpipelined_s: f64,
    pipelined_s: f64,
    raw_load_s: f64,
}

fn best<T, F: FnMut() -> (f64, T)>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(f().0);
    }
    best
}

fn run_device(
    model: &Model,
    store: &KvStore,
    ids: &[ChunkId],
    full_tokens: &[TokenId],
    query: &[TokenId],
    w: &Workload,
) -> ArmTimes {
    let cfg = BlendConfig::default(); // the paper's r* = 15 %

    let full_prefill_s = best(w.reps, || {
        let t = Instant::now();
        let (cache, x) = model.prefill(full_tokens);
        std::hint::black_box(x.max_abs());
        (t.elapsed().as_secs_f64(), cache.len())
    });

    let mut raw_load_s = f64::INFINITY;
    let mut unpipelined_s = f64::INFINITY;
    for _ in 0..w.reps.max(1) {
        let t = Instant::now();
        let parts: Vec<KvCache> = ids
            .iter()
            .map(|&id| store.get(id).expect("clean entry").expect("resident").0)
            .collect();
        let load = t.elapsed().as_secs_f64();
        let out = Fusor::new(model, cfg).blend(parts, query, false);
        std::hint::black_box(out.last_residual[0]);
        let total = t.elapsed().as_secs_f64();
        raw_load_s = raw_load_s.min(load);
        unpipelined_s = unpipelined_s.min(total);
    }

    let pipelined_s = best(w.reps, || {
        let t = Instant::now();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| store.prefetch(id).expect("clean entry").expect("resident"))
            .collect();
        let out = blend_prefetched(model, cfg, handles, query, None).expect("blend");
        std::hint::black_box(out.result.last_residual[0]);
        (t.elapsed().as_secs_f64(), out.report.wait)
    });

    ArmTimes {
        full_prefill_s,
        unpipelined_s,
        pipelined_s,
        raw_load_s,
    }
}

/// One layout's half of the register/load sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayoutArm {
    /// Wall-clock seconds to register (put + flush) the population.
    pub register_s: f64,
    /// Wall-clock seconds to reload every entry.
    pub load_s: f64,
    /// Total I/O syscalls (opens + reads + writes + renames + deletes)
    /// the backend issued across both phases.
    pub syscalls: u64,
    /// Files on disk after registration.
    pub files: u64,
}

/// Packed-log vs file-per-chunk comparison plus the compaction result.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayoutComparison {
    /// Chunks registered per layout.
    pub chunks: usize,
    /// The file-per-chunk reference backend.
    pub file_per_chunk: LayoutArm,
    /// The packed segment-log backend.
    pub packed_log: LayoutArm,
    /// Fraction of the dead bytes (from deleting half the population)
    /// that compaction reclaimed from the packed log.
    pub compact_reclaimed_frac: f64,
}

/// Quantized-cold-tier footprint and blend-quality outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantizedOutcome {
    /// On-disk bytes of the population on the f32 packed tier.
    pub f32_bytes: u64,
    /// On-disk bytes of the same population on the int8 packed tier.
    pub int8_bytes: u64,
    /// `f32_bytes / int8_bytes`.
    pub footprint_ratio: f64,
    /// p50 of the normalized blend-output deviation CDF.
    pub deviation_p50: f64,
    /// p95 of the normalized blend-output deviation CDF.
    pub deviation_p95: f64,
    /// Worst normalized blend-output deviation.
    pub deviation_max: f64,
}

/// Everything the experiment measured (the `fig_storage` binary asserts
/// the acceptance claims on a non-smoke run).
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageOutcome {
    /// Best pipelining `hidden_frac` on the largest profile.
    pub hidden_frac: f64,
    /// Packed-log vs file-per-chunk sweep.
    pub layout: LayoutComparison,
    /// Quantized cold-tier arm.
    pub quantized: QuantizedOutcome,
}

/// A small synthetic serialized entry (~4 KiB) for the layout sweep —
/// layout I/O costs do not depend on the floats inside.
fn synthetic_entry() -> Bytes {
    let mut c = KvCache::empty(4, 16);
    for l in 0..4 {
        let k = cb_tensor::Matrix::from_fn(8, 16, |r, d| (l * 128 + r * 16 + d) as f32 * 0.125);
        c.layers[l].append(&k, &k);
    }
    c.positions = (0..8).collect();
    c.tokens = vec![3; 8];
    cb_kv::serialize::encode(&c)
}

/// Registers `n` entries, flushes, reloads them all; returns the arm's
/// timings plus the backend's syscall ledger delta.
fn run_layout_arm(
    backend: &dyn StorageBackend,
    io_before: IoOps,
    io_after: impl Fn() -> IoOps,
    dir: &std::path::Path,
    n: usize,
    entry: &Bytes,
) -> LayoutArm {
    let t = Instant::now();
    for i in 0..n {
        backend.put(i as u64, entry.clone()).expect("put");
    }
    backend.flush().expect("flush");
    let register_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for i in 0..n {
        let b = backend.get(i as u64).expect("clean").expect("resident");
        std::hint::black_box(b.len());
    }
    let load_s = t.elapsed().as_secs_f64();
    let io = io_after();
    let files = std::fs::read_dir(dir)
        .map(|d| d.count() as u64)
        .unwrap_or(0);
    LayoutArm {
        register_s,
        load_s,
        syscalls: io.total() - io_before.total(),
        files,
    }
}

/// The packed-vs-file-per-chunk register/load sweep plus the compaction
/// measurement (see module docs).
fn layout_sweep(root: &std::path::Path, smoke: bool, rows: &mut Vec<Row>) -> LayoutComparison {
    let n = if smoke { 300 } else { 10_000 };
    let entry = synthetic_entry();

    let file_dir = root.join("layout-file");
    let _ = std::fs::remove_dir_all(&file_dir);
    let file_backend = DiskBackend::new(&file_dir, None).expect("cache dir");
    let file_per_chunk = run_layout_arm(
        &file_backend,
        file_backend.io_ops(),
        || file_backend.io_ops(),
        &file_dir,
        n,
        &entry,
    );
    drop(file_backend);
    let _ = std::fs::remove_dir_all(&file_dir);

    let log_dir = root.join("layout-packed");
    let _ = std::fs::remove_dir_all(&log_dir);
    // Deterministic compaction below: no background races with the
    // measured phases. Small rotation keeps the (never-compacted) active
    // log a sliver of the population, so the reclaim fraction reflects
    // the compactor rather than the rotation boundary.
    let cfg = SegmentLogConfig {
        auto_compact: false,
        compact_min_garbage: 0.3,
        rotate_bytes: 1 << 20,
        ..SegmentLogConfig::default()
    };
    let log_backend =
        SegmentLogBackend::with_config(&log_dir, None, false, cfg).expect("cache dir");
    let packed_log = run_layout_arm(
        &log_backend,
        log_backend.io_ops(),
        || log_backend.io_ops(),
        &log_dir,
        n,
        &entry,
    );

    // Delete half the population, then compact: how much of the garbage
    // does the log give back?
    for i in (0..n).step_by(2) {
        log_backend.remove(i as u64);
    }
    log_backend.flush().expect("flush");
    let before = log_backend.log_stats();
    let dead = before.file_bytes - before.live_bytes;
    while log_backend.compact_now() > 0 {}
    let after = log_backend.log_stats();
    let compact_reclaimed_frac = if dead > 0 {
        (after.reclaimed_bytes - before.reclaimed_bytes) as f64 / dead as f64
    } else {
        0.0
    };
    drop(log_backend);
    let _ = std::fs::remove_dir_all(&log_dir);

    for (layout, arm) in [
        ("file-per-chunk", file_per_chunk),
        ("packed-log", packed_log),
    ] {
        rows.push(
            Row::new("storage_layout")
                .col("layout", layout)
                .num("chunks", n as f64)
                .num("entry_bytes", entry.len() as f64)
                .num("register_ms", arm.register_s * 1e3)
                .num("load_ms", arm.load_s * 1e3)
                .num("syscalls", arm.syscalls as f64)
                .num("files", arm.files as f64),
        );
    }
    rows.push(
        Row::new("storage_compaction")
            .num("dead_bytes", dead as f64)
            .num("reclaimed_frac", compact_reclaimed_frac)
            .num(
                "compactions",
                (after.compactions - before.compactions) as f64,
            ),
    );

    LayoutComparison {
        chunks: n,
        file_per_chunk,
        packed_log,
        compact_reclaimed_frac,
    }
}

/// Builds a tiny-RAM store whose bottom tier is a packed log, optionally
/// quantized; returns the store plus the backend handle for disk stats.
fn cold_store(
    dir: &std::path::Path,
    quantized: bool,
) -> (KvStore, std::sync::Arc<SegmentLogBackend>) {
    let _ = std::fs::remove_dir_all(dir);
    let backend = Arc::new(SegmentLogBackend::new(dir, None).expect("cache dir"));
    let tier = if quantized {
        TierConfig::quantized("cold-int8", 1 << 32)
    } else {
        TierConfig::new("cold-f32", 1 << 32)
    };
    let store = KvStore::with_backends(vec![
        (
            TierConfig::new("ram", 64),
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        ),
        (tier, backend.clone()),
    ]);
    (store, backend)
}

/// The quantized cold-tier arm: footprint ratio and blend-deviation CDF
/// (see module docs).
fn quantized_arm(root: &std::path::Path, smoke: bool, rows: &mut Vec<Row>) -> QuantizedOutcome {
    let model = Model::random(ModelConfig::standard(ModelProfile::Tiny, 7));
    let (n_chunks, chunk_tokens) = if smoke { (2, 24) } else { (8, 96) };
    let chunks: Vec<Vec<TokenId>> = (0..n_chunks)
        .map(|c| filler_tokens(&model, chunk_tokens, c))
        .collect();
    let bytes = serialize_chunks(&model, &chunks);
    let query = filler_tokens(&model, 8, 5);

    let (f32_store, f32_backend) = cold_store(&root.join("cold-f32"), false);
    let (int8_store, int8_backend) = cold_store(&root.join("cold-int8"), true);
    for (i, b) in bytes.iter().enumerate() {
        let id = ChunkId(i as u64 + 1);
        f32_store.insert_bytes(id, b.clone()).expect("fits");
        int8_store.insert_bytes(id, b.clone()).expect("fits");
    }
    f32_store.flush().expect("flush");
    int8_store.flush().expect("flush");
    let f32_bytes = f32_backend.log_stats().live_bytes;
    let int8_bytes = int8_backend.log_stats().live_bytes;

    // Blend once from exact entries, once from quantized round-trips
    // served by the cold tier, and CDF the output deviation.
    let cfg = BlendConfig::default();
    let exact_parts: Vec<KvCache> = bytes
        .iter()
        .map(|b| cb_kv::serialize::decode(b.clone()).expect("clean"))
        .collect();
    let cold_parts: Vec<KvCache> = (0..n_chunks)
        .map(|i| {
            int8_store
                .get(ChunkId(i as u64 + 1))
                .expect("clean")
                .expect("resident")
                .0
        })
        .collect();
    let exact = Fusor::new(&model, cfg).blend(exact_parts, &query, false);
    let cold = Fusor::new(&model, cfg).blend(cold_parts, &query, false);
    let scale = exact
        .last_residual
        .iter()
        .fold(0.0f32, |a, &v| a.max(v.abs()))
        .max(1e-6);
    let devs: Vec<f32> = exact
        .last_residual
        .iter()
        .zip(&cold.last_residual)
        .map(|(&a, &b)| (a - b).abs() / scale)
        .collect();

    let out = QuantizedOutcome {
        f32_bytes,
        int8_bytes,
        footprint_ratio: f32_bytes as f64 / int8_bytes.max(1) as f64,
        deviation_p50: quantile(&devs, 0.5) as f64,
        deviation_p95: quantile(&devs, 0.95) as f64,
        deviation_max: quantile(&devs, 1.0) as f64,
    };
    let mut row = Row::new("storage_quantized")
        .num("chunks", n_chunks as f64)
        .num("f32_disk_bytes", f32_bytes as f64)
        .num("int8_disk_bytes", int8_bytes as f64)
        .num("footprint_ratio", out.footprint_ratio);
    for q in [0.10f32, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0] {
        row = row.num(
            &format!("dev_p{:03.0}", q * 100.0),
            quantile(&devs, q) as f64,
        );
    }
    rows.push(row);

    let _ = std::fs::remove_dir_all(root.join("cold-f32"));
    let _ = std::fs::remove_dir_all(root.join("cold-int8"));
    out
}

/// Runs the experiment with default options.
pub fn run() {
    run_opts(StorageOpts::default());
}

/// Runs the experiment; returns the measured [`StorageOutcome`]
/// (`fig_storage` asserts the acceptance claims against it).
pub fn run_opts(opts: StorageOpts) -> StorageOutcome {
    let w = Workload::new(opts.smoke);
    let root = opts.dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cb-bench-storage-{}", std::process::id()))
    });
    let devices = [
        DeviceKind::CpuRam,
        DeviceKind::NvmeSsd,
        DeviceKind::CommoditySsd,
        DeviceKind::SlowSsd,
    ];
    // Per-token load times are made paper-faithful against Mistral-7B's
    // 128 KiB/token KV footprint (see module docs).
    let paper_bytes_per_token =
        cb_storage::PerfModel::on_a40(cb_storage::PaperModel::Mistral7B).total_kv_bytes(1);
    let profiles: &[(&str, ModelProfile)] = if opts.smoke {
        &[("Small", ModelProfile::Tiny)]
    } else {
        &[
            ("Small", ModelProfile::Tiny),
            ("Standard", ModelProfile::Mistral7B),
        ]
    };

    let mut rows = Vec::new();
    let mut headline = 0.0f64;
    for &(pname, profile) in profiles {
        let model = Model::random(ModelConfig::standard(profile, 7));
        let chunks: Vec<Vec<TokenId>> = (0..w.chunks)
            .map(|c| filler_tokens(&model, w.chunk_tokens, c))
            .collect();
        let bytes = serialize_chunks(&model, &chunks);
        let entry_bytes: usize = bytes.iter().map(|b| b.len()).sum();
        let query = filler_tokens(&model, w.query_tokens, 5);
        let mut full_tokens = vec![model.cfg.vocab.id(TokenKind::Bos)];
        for c in &chunks {
            full_tokens.extend_from_slice(c);
        }
        full_tokens.extend_from_slice(&query);

        // Untimed warmup: first-touch effects (lazy allocs, page faults)
        // must not land inside whichever device arm happens to run first.
        {
            let parts: Vec<KvCache> = bytes
                .iter()
                .map(|b| cb_kv::serialize::decode(b.clone()).expect("clean entry"))
                .collect();
            let out = Fusor::new(&model, BlendConfig::default()).blend(parts, &query, false);
            std::hint::black_box(out.last_residual[0]);
            let (_, x) = model.prefill(&full_tokens);
            std::hint::black_box(x.max_abs());
        }

        let ctx_tokens = w.chunks * w.chunk_tokens;
        let bandwidth_scale = (entry_bytes as f64 / ctx_tokens as f64) / paper_bytes_per_token;
        for device in devices {
            let dir = root.join(format!("{pname}-{}", device.spec().name));
            let _ = std::fs::remove_dir_all(&dir);
            let store = disk_resident_store(&dir, device, bandwidth_scale);
            let ids: Vec<ChunkId> = bytes
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let id = ChunkId(i as u64 + 1);
                    store.insert_bytes(id, b.clone()).expect("fits on disk");
                    id
                })
                .collect();
            store.flush().expect("flusher healthy");

            let t = run_device(&model, &store, &ids, &full_tokens, &query, &w);
            let hidden = ((t.unpipelined_s - t.pipelined_s) / t.raw_load_s).clamp(0.0, 1.0);
            if pname == profiles.last().expect("non-empty").0 {
                headline = headline.max(hidden);
            }
            rows.push(
                Row::new("storage")
                    .col("profile", pname)
                    .col("device", device.spec().name)
                    .num("bandwidth_gb_s", device.spec().read_bytes_per_s / 1e9)
                    .num("kv_bytes_mb", entry_bytes as f64 / 1e6)
                    .num("full_prefill_ms", t.full_prefill_s * 1e3)
                    .num("unpipelined_ms", t.unpipelined_s * 1e3)
                    .num("pipelined_ms", t.pipelined_s * 1e3)
                    .num("raw_load_ms", t.raw_load_s * 1e3)
                    .num("hidden_frac", hidden)
                    .num("speedup_vs_prefill", t.full_prefill_s / t.pipelined_s),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let layout = layout_sweep(&root, opts.smoke, &mut rows);
    let quantized = quantized_arm(&root, opts.smoke, &mut rows);

    let _ = std::fs::remove_dir_all(&root);
    emit("BENCH_storage", &rows);
    println!(
        "\npipelining hid {:.0}% of raw disk load time at best (largest profile)",
        headline * 100.0
    );
    println!(
        "packed log: {} chunks registered in {:.0} ms / {} syscalls \
         (file-per-chunk: {:.0} ms / {}); compaction reclaimed {:.0}% of dead bytes",
        layout.chunks,
        layout.packed_log.register_s * 1e3,
        layout.packed_log.syscalls,
        layout.file_per_chunk.register_s * 1e3,
        layout.file_per_chunk.syscalls,
        layout.compact_reclaimed_frac * 100.0
    );
    println!(
        "quantized cold tier: {:.2}x smaller on disk, blend deviation p95 {:.2e}",
        quantized.footprint_ratio, quantized.deviation_p95
    );
    StorageOutcome {
        hidden_frac: headline,
        layout,
        quantized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_arms() {
        // One smoke pass on the Tiny profile: the pipelined arm must never
        // lose to the unpipelined arm by more than scheduling noise, and
        // hidden_frac must be finite.
        let dir = std::env::temp_dir().join(format!(
            "cb-storage-exp-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let out = run_opts(StorageOpts {
            smoke: true,
            dir: Some(dir),
        });
        assert!((0.0..=1.0).contains(&out.hidden_frac));
        // Even at smoke scale the structural claims must hold: both
        // layouts served every chunk, the packed log needs far fewer
        // syscalls than one-file-per-chunk, and the quantized tier is
        // materially smaller with a sane deviation CDF.
        assert_eq!(out.layout.chunks, 300);
        assert!(out.layout.packed_log.syscalls < out.layout.file_per_chunk.syscalls / 4);
        assert!(out.layout.packed_log.files < out.layout.file_per_chunk.files);
        assert!(out.layout.compact_reclaimed_frac > 0.5);
        assert!(out.quantized.footprint_ratio > 3.0);
        assert!(out.quantized.deviation_p50 <= out.quantized.deviation_p95);
        assert!(out.quantized.deviation_max < 0.5);
    }
}
