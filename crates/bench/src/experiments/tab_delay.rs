//! The §5 in-text delay numbers as a table: per-layer recompute at 15 % of
//! a 4K context vs per-layer KV load from NVMe, per model.
//!
//! Paper anchors: Llama-7B ≈ 3 ms recompute vs ≈ 16 ms load (hidden);
//! Llama-70B ≈ 7 ms vs ≈ 4 ms (not hidden — the controller must react).

use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};

use crate::out::{emit, Row};

/// Runs the table and emits rows.
pub fn run() {
    let mut rows = Vec::new();
    for pm in [
        PaperModel::Llama7B,
        PaperModel::Mistral7B,
        PaperModel::Yi34B,
        PaperModel::Llama70B,
    ] {
        let perf = PerfModel::on_a40(pm);
        let l = 4096;
        let rec = perf.recompute_layer_time(0.15, l);
        let load = perf.load_layer_time(l, DeviceKind::NvmeSsd);
        rows.push(
            Row::new("tab_delay")
                .col("model", perf.spec.name)
                .num("recompute_15pct_ms_per_layer", rec * 1e3)
                .num("nvme_load_ms_per_layer", load * 1e3)
                .col("recompute_hidden", rec <= load)
                .num("prefill_4k_s", perf.prefill_time(l)),
        );
    }
    emit("tab_delay_model", &rows);
}
