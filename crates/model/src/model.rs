//! The [`Model`] type and its forward passes.
//!
//! All higher-level execution modes — full prefill, prefix-cached prefill,
//! full KV reuse, and CacheBlend's selective recompute — are composed from
//! three primitives exposed here:
//!
//! - [`Model::qkv`]: project residual rows to per-head Q/K/V (RoPE applied),
//! - [`Model::attend`]: masked multi-head attention of query rows against a
//!   full K/V set at arbitrary absolute positions,
//! - [`Model::mlp_delta`]: the layer's feed-forward residual delta.
//!
//! [`Model::forward_rows`] strings the primitives together for the common
//! "append these tokens to a cache" case (prefill = empty cache, decode =
//! one row). The CacheBlend fusor in `cb-core` drives the primitives
//! directly to implement §4.2's masked selective recompute.

use cb_tensor::ops;
use cb_tensor::rope;
use cb_tensor::Matrix;
use cb_tokenizer::codes::CodeBook;
use cb_tokenizer::{TokenId, TokenKind};

use crate::config::ModelConfig;
use crate::kvcache::KvCache;
use crate::program;
use crate::weights::Layer;

/// Per-layer attention probabilities of traced query rows (mean over heads,
/// `traced_q × keys`). Used for the forward-attention-deviation metric
/// (Δattn, Figures 4 and 6).
#[derive(Clone, Debug, Default)]
pub struct ForwardTrace {
    /// One matrix per layer.
    pub attn: Vec<Matrix>,
}

/// A compiled or random transformer.
#[derive(Clone, Debug)]
pub struct Model {
    /// Configuration (profile, heads, seeds).
    pub cfg: ModelConfig,
    /// Token identity codes shared with the dataset generators.
    pub codebook: CodeBook,
    /// Embedding table, `vocab × d_model`.
    pub embed: Matrix,
    /// Unembedding, `d_model × vocab`.
    pub unembed: Matrix,
    /// Transformer layers.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Builds the compiled recall-program model for a configuration.
    pub fn compiled(cfg: ModelConfig) -> Self {
        program::compile(cfg)
    }

    /// Builds an all-noise model (used by throughput benches where only the
    /// computation shape matters).
    pub fn random(cfg: ModelConfig) -> Self {
        program::compile_noise_only(cfg)
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Creates an empty KV cache shaped for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::empty(self.n_layers(), self.cfg.kv_width())
    }

    /// Embeds tokens into residual rows (`tokens.len() × d_model`).
    pub fn embed_tokens(&self, tokens: &[TokenId]) -> Matrix {
        let mut x = Matrix::zeros(tokens.len(), self.cfg.d_model());
        for (r, &t) in tokens.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.embed.row(t as usize));
        }
        x
    }

    /// Projects residual rows to Q/K/V for `layer`, RoPE-rotating Q and K at
    /// the given absolute positions. Outputs are head-major
    /// (`rows × kv_width`).
    pub fn qkv(&self, layer: usize, x: &Matrix, pos: &[usize]) -> (Matrix, Matrix, Matrix) {
        assert_eq!(x.rows(), pos.len(), "row/position count mismatch");
        let hd = self.cfg.head_dim;
        let width = self.cfg.kv_width();
        let mut q = Matrix::zeros(x.rows(), width);
        let mut k = Matrix::zeros(x.rows(), width);
        let mut v = Matrix::zeros(x.rows(), width);
        for (h, head) in self.layers[layer].heads.iter().enumerate() {
            let mut qh = x.matmul(&head.wq);
            let mut kh = x.matmul(&head.wk);
            let vh = x.matmul(&head.wv);
            if let Some(table) = &head.rope {
                rope::apply_rope(&mut qh, table, pos);
                rope::apply_rope(&mut kh, table, pos);
            }
            q.set_col_block(h * hd, &qh);
            k.set_col_block(h * hd, &kh);
            v.set_col_block(h * hd, &vh);
        }
        (q, k, v)
    }

    /// Multi-head attention of query rows (`q`, at positions `q_pos`)
    /// against the full key/value set (`k_all`/`v_all`, at positions
    /// `k_pos`), causally masked by absolute position. Returns the residual
    /// delta (`q.rows() × d_model`).
    ///
    /// When `probs_out` is provided it receives the attention probabilities
    /// averaged over heads (`q.rows() × k_all.rows()`).
    #[allow(clippy::too_many_arguments)]
    pub fn attend(
        &self,
        layer: usize,
        q: &Matrix,
        q_pos: &[usize],
        k_all: &Matrix,
        v_all: &Matrix,
        k_pos: &[usize],
        mut probs_out: Option<&mut Matrix>,
    ) -> Matrix {
        let hd = self.cfg.head_dim;
        let mut delta = Matrix::zeros(q.rows(), self.cfg.d_model());
        if let Some(p) = probs_out.as_deref_mut() {
            *p = Matrix::zeros(q.rows(), k_all.rows());
        }
        let n_heads = self.layers[layer].heads.len();
        for (h, head) in self.layers[layer].heads.iter().enumerate() {
            let qh = q.col_block(h * hd, (h + 1) * hd);
            let kh = k_all.col_block(h * hd, (h + 1) * hd);
            let vh = v_all.col_block(h * hd, (h + 1) * hd);
            let mut scores = qh.matmul_transposed(&kh);
            scores.scale(head.scale);
            for (i, &qp) in q_pos.iter().enumerate() {
                let row = scores.row_mut(i);
                for (j, &kp) in k_pos.iter().enumerate() {
                    if kp > qp {
                        row[j] = f32::NEG_INFINITY;
                    } else {
                        row[j] += head.bias.bias(qp, kp);
                    }
                }
                ops::softmax_row(row);
            }
            if let Some(p) = probs_out.as_deref_mut() {
                for (dst, &src) in p.as_mut_slice().iter_mut().zip(scores.as_slice()) {
                    *dst += src / n_heads as f32;
                }
            }
            let ctx = scores.matmul(&vh);
            delta.add_assign(&ctx.matmul(&head.wo));
        }
        delta
    }

    /// The layer's feed-forward residual delta for rows `x`, if any.
    pub fn mlp_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        self.layers[layer].mlp.forward(x)
    }

    /// Runs the full stack over `tokens` at `positions`, appending their KV
    /// to `cache`, and returns the final residual rows.
    ///
    /// - Prefill: call with an empty cache and positions `0..n`.
    /// - Prefix-cached prefill / full KV reuse: call with the context cache
    ///   already populated and suffix positions following it.
    /// - Decode: call with a single token.
    ///
    /// When `trace` is given, each layer's attention probabilities for these
    /// rows are recorded (mean over heads).
    pub fn forward_rows(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut KvCache,
        mut trace: Option<&mut ForwardTrace>,
    ) -> Matrix {
        assert!(!tokens.is_empty(), "forward_rows needs at least one token");
        assert_eq!(tokens.len(), positions.len());
        assert!(
            cache.positions.iter().all(|&p| p < positions[0]),
            "new rows must follow all cached positions"
        );
        let mut x = self.embed_tokens(tokens);
        let mut k_pos: Vec<usize> = cache.positions.clone();
        k_pos.extend_from_slice(positions);
        for layer in 0..self.n_layers() {
            let (q, k, v) = self.qkv(layer, &x, positions);
            cache.layers[layer].append(&k, &v);
            let mut probs = trace.as_deref_mut().map(|_| Matrix::zeros(0, 0));
            let delta = self.attend(
                layer,
                &q,
                positions,
                &cache.layers[layer].k,
                &cache.layers[layer].v,
                &k_pos,
                probs.as_mut(),
            );
            x.add_assign(&delta);
            if let Some(m) = self.mlp_delta(layer, &x) {
                x.add_assign(&m);
            }
            if let (Some(t), Some(p)) = (trace.as_deref_mut(), probs) {
                t.attn.push(p);
            }
        }
        cache.positions.extend_from_slice(positions);
        cache.tokens.extend_from_slice(tokens);
        x
    }

    /// Full prefill from scratch: returns the populated cache and the final
    /// residual rows.
    pub fn prefill(&self, tokens: &[TokenId]) -> (KvCache, Matrix) {
        let mut cache = self.new_cache();
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let x = self.forward_rows(tokens, &positions, &mut cache, None);
        (cache, x)
    }

    /// Token logits for one residual row.
    pub fn logits(&self, x_row: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, x_row.len(), x_row.to_vec());
        x.matmul(&self.unembed).as_slice().to_vec()
    }

    /// Greedy decode starting from a populated cache whose last row was the
    /// end of the prompt. `last_residual` is the final residual row of the
    /// prompt (as returned by [`Model::forward_rows`]).
    ///
    /// Decoding stops at `max_tokens` or at the first non-[`TokenKind::Value`]
    /// token (answers in the structured vocabulary are value sequences).
    pub fn decode_greedy(
        &self,
        cache: &mut KvCache,
        last_residual: &[f32],
        max_tokens: usize,
    ) -> Vec<TokenId> {
        self.decode_greedy_with(cache, last_residual, max_tokens, &mut |_| {})
    }

    /// [`Model::decode_greedy`] with a per-token callback: `on_token` fires
    /// as each answer token is committed (before its forward pass extends
    /// the cache), which lets callers stream tokens out while decoding.
    pub fn decode_greedy_with(
        &self,
        cache: &mut KvCache,
        last_residual: &[f32],
        max_tokens: usize,
        on_token: &mut dyn FnMut(TokenId),
    ) -> Vec<TokenId> {
        let mut out = Vec::new();
        let mut logits = self.logits(last_residual);
        for _ in 0..max_tokens {
            let next = ops::argmax(&logits) as TokenId;
            if !matches!(self.cfg.vocab.kind(next), TokenKind::Value(_)) {
                break;
            }
            out.push(next);
            on_token(next);
            let pos = cache.positions.last().map(|&p| p + 1).unwrap_or(0);
            let x = self.forward_rows(&[next], &[pos], cache, None);
            logits = self.logits(x.row(0));
        }
        out
    }

    /// Convenience: full prefill of `prompt` followed by greedy decode.
    pub fn generate(&self, prompt: &[TokenId], max_tokens: usize) -> Vec<TokenId> {
        let (mut cache, x) = self.prefill(prompt);
        let last = x.row(x.rows() - 1).to_vec();
        self.decode_greedy(&mut cache, &last, max_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelProfile;

    fn tiny() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    #[test]
    fn prefill_populates_every_layer() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(TokenKind::Bos), v.id(TokenKind::Entity(3))];
        let (cache, x) = m.prefill(&toks);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.n_layers(), m.n_layers());
        for l in &cache.layers {
            assert_eq!(l.len(), 2);
        }
        assert_eq!(x.rows(), 2);
    }

    #[test]
    fn forward_rows_incremental_matches_batch() {
        // Prefilling [a, b, c] at once must equal prefilling [a, b] then
        // extending with [c] (causal attention sees identical K/V sets).
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(1)),
            v.id(TokenKind::Attr(2)),
        ];
        let (cache_full, x_full) = m.prefill(&toks);

        let mut cache_inc = m.new_cache();
        m.forward_rows(&toks[..2], &[0, 1], &mut cache_inc, None);
        let x_last = m.forward_rows(&toks[2..], &[2], &mut cache_inc, None);

        assert_eq!(cache_full.positions, cache_inc.positions);
        for l in 0..m.n_layers() {
            let d = cache_full.layers[l]
                .k
                .frobenius_distance(&cache_inc.layers[l].k);
            assert!(d < 1e-4, "layer {l} K mismatch: {d}");
        }
        let dl = cb_tensor::stats::l2_distance(x_full.row(2), x_last.row(0));
        assert!(dl < 1e-4, "residual mismatch: {dl}");
    }

    #[test]
    fn trace_records_one_matrix_per_layer() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(TokenKind::Bos), v.id(TokenKind::Entity(1))];
        let mut cache = m.new_cache();
        let mut trace = ForwardTrace::default();
        m.forward_rows(&toks, &[0, 1], &mut cache, Some(&mut trace));
        assert_eq!(trace.attn.len(), m.n_layers());
        assert_eq!(trace.attn[0].rows(), 2);
        assert_eq!(trace.attn[0].cols(), 2);
        // Attention rows are probability distributions.
        let s: f32 = trace.attn[0].row(1).iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "must follow all cached positions")]
    fn forward_rows_rejects_out_of_order_positions() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let mut cache = m.new_cache();
        m.forward_rows(&[v.id(TokenKind::Bos)], &[5], &mut cache, None);
        m.forward_rows(&[v.id(TokenKind::Sep)], &[3], &mut cache, None);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_prefill_rejected() {
        let m = tiny();
        let _ = m.prefill(&[]);
    }

    #[test]
    fn decode_with_zero_budget_returns_nothing() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let (mut cache, x) = m.prefill(&[v.id(TokenKind::Bos)]);
        let last = x.row(0).to_vec();
        assert!(m.decode_greedy(&mut cache, &last, 0).is_empty());
    }

    #[test]
    fn random_model_runs_forward() {
        let m = Model::random(ModelConfig::standard(ModelProfile::Tiny, 2));
        let v = &m.cfg.vocab;
        let toks: Vec<_> = (0..8).map(|i| v.id(TokenKind::Filler(i))).collect();
        let (cache, x) = m.prefill(&toks);
        assert_eq!(cache.len(), 8);
        assert!(x.max_abs().is_finite());
    }
}
