//! Figure 14: TTFT vs request rate on the extended datasets.
//!
//! Paper shape: every scheme's TTFT blows up past its saturation rate;
//! CacheBlend's knee sits 2.8–5× further right than full recompute and
//! prefix caching.
//!
//! Two arms share one queueing loop through the [`ServingBackend`] trait:
//!
//! - **analytic** — the paper-scale delay model per scheme (the original
//!   arm; TTFTs in A40 seconds).
//! - **engine** — closed loop: every simulated request is served through a
//!   real [`EngineService`] (scheduler → tiered store → pipelined blend on
//!   the compiled tiny model) and the *measured* wall-clock TTFTs drive
//!   the same queueing model, so the saturation knee emerges from real
//!   engine latencies. The rate grid is normalized to a measured probe of
//!   the warm blend service time, mirroring how the analytic grid is
//!   normalized to the modeled full-prefill time.
//! - **cluster** — scale-out: N engine replicas behind the
//!   [`ClusterService`] locality router, each with its own RAM tier over
//!   one *shared* persistent tier. Admission costs are measured by really
//!   serving every request at its routed replica; the multi-server
//!   queueing (per-replica busy clocks, spill on virtual backlog) is
//!   composed in virtual time — the same methodology as the engine arm,
//!   extended to N servers, so the replicas-vs-goodput curve reflects the
//!   design rather than the host's core count. Emits
//!   `target/experiments/BENCH_cluster.json`. Since the `cb-net` control
//!   plane landed, every cluster submission crosses the full frame/wire
//!   codec over loopback transports.
//! - **net-cluster** — the cluster arm labeled for the network control
//!   plane, plus a measured *routing-hop latency tax*: the per-request
//!   overhead of gateway routing + frame codec + event relay over a
//!   direct in-process submit on the same warm engine. With
//!   [`Fig14Opts::chaos`], a fault drill rides along: the same workload
//!   is served twice — undisturbed, and with a **deterministic kill
//!   schedule** (one worker's connection severed mid-run, then
//!   re-attached under the same identity) — and the goodput and p99 TTFT
//!   of both runs land in `target/experiments/BENCH_chaos.json`, so the
//!   retry machinery's latency tax is a measured number, not a claim.
//!
//! [`ServingBackend`]: cb_serving::backend::ServingBackend
//! [`EngineService`]: cb_core::scheduler::EngineService
//! [`ClusterService`]: cb_serving::cluster::ClusterService

use std::collections::HashMap;

use cb_baselines::SchemeKind;
use cb_core::engine::{ChunkSource, EngineBuilder, Request as EngineRequest, StorageConfig};
use cb_core::scheduler::ServiceConfig;
use cb_kv::ChunkId;
use cb_model::ModelProfile;
use cb_serving::backend::EngineBackend;
use cb_serving::cluster::ClusterService;
use cb_serving::sim::{ServingConfig, Simulator};
use cb_serving::stats::LatencySummary;
use cb_serving::workload::{Workload, WorkloadConfig};
use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};
use cb_tokenizer::{TokenId, TokenKind};

use crate::out::{emit, Row};

/// Which backend arm(s) to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendArm {
    /// Paper-scale delay model only (the default; what `run` does).
    Analytic,
    /// Real engine measurements only.
    Engine,
    /// Multi-replica cluster serving (emits `BENCH_cluster.json`).
    Cluster,
    /// Cluster serving through the `cb-net` control plane explicitly:
    /// same measured methodology as `Cluster`, labeled `net-cluster`,
    /// plus a measured routing-hop latency tax (gateway + wire codec
    /// overhead per request vs. a direct in-process submit). Emits
    /// `BENCH_cluster.json`.
    NetCluster,
    /// Analytic + engine arms.
    Both,
}

/// Experiment options.
#[derive(Clone, Debug)]
pub struct Fig14Opts {
    /// Shrink the grids so the experiment finishes in seconds (CI smoke).
    pub smoke: bool,
    /// Backend arm selection.
    pub backend: BackendArm,
    /// Largest replica count for the cluster arm (the grid always
    /// includes 1 and 2 so the scale-out ratio is measured).
    pub replicas: usize,
    /// Run the net-cluster chaos drill (mid-run worker kill vs.
    /// undisturbed baseline; emits `BENCH_chaos.json`). Only meaningful
    /// with [`BackendArm::NetCluster`].
    pub chaos: bool,
    /// Export the spans the run recorded as `chrome://tracing` JSON to
    /// this path (the tracer ring is cleared first, so the file holds
    /// exactly this run; a chaos run shows each mid-stream retry as a
    /// `retry#k` child span under its request).
    pub trace_out: Option<String>,
}

impl Default for Fig14Opts {
    fn default() -> Self {
        Self {
            smoke: false,
            backend: BackendArm::Analytic,
            replicas: 2,
            chaos: false,
            trace_out: None,
        }
    }
}

/// Runs the default (analytic, full-grid) experiment and emits rows.
pub fn run() {
    run_opts(Fig14Opts::default());
}

/// Runs the experiment with explicit options.
pub fn run_opts(opts: Fig14Opts) {
    if opts.trace_out.is_some() {
        // The export below should hold exactly this run's spans.
        cb_obs::trace::Tracer::global().clear();
    }
    let mut rows = Vec::new();
    if matches!(opts.backend, BackendArm::Analytic | BackendArm::Both) {
        analytic_arm(opts.smoke, &mut rows);
    }
    if matches!(opts.backend, BackendArm::Engine | BackendArm::Both) {
        engine_arm(opts.smoke, &mut rows);
    }
    if !rows.is_empty() {
        emit("fig14_serving_rate", &rows);
    }
    if opts.backend == BackendArm::Cluster {
        cluster_arm(opts.smoke, opts.replicas, false);
    }
    if opts.backend == BackendArm::NetCluster {
        cluster_arm(opts.smoke, opts.replicas, true);
        if opts.chaos {
            chaos_arm(opts.smoke);
        }
    }
    if let Some(path) = &opts.trace_out {
        let spans = cb_obs::trace::Tracer::global().drain();
        let json = cb_obs::trace::chrome_trace_json(&spans);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("fig14: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "fig14: wrote {} spans to {path} (load in chrome://tracing or ui.perfetto.dev)",
            spans.len()
        );
    }
}

fn analytic_arm(smoke: bool, rows: &mut Vec<Row>) {
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::FullRecompute,
        SchemeKind::PrefixCaching,
    ];
    let models = if smoke {
        vec![PaperModel::Mistral7B]
    } else {
        PaperModel::evaluation_models().to_vec()
    };
    let mults: &[f64] = if smoke {
        &[0.5, 2.0]
    } else {
        &[0.2, 0.5, 0.8, 1.2, 2.0, 3.5, 5.0]
    };
    for pm in models {
        let perf = PerfModel::on_a40(pm);
        // Rate grid scaled to each model's service time so the knee is
        // visible for all of them.
        let full_service = perf.ttft_full_prefill(6 * 512 + 32);
        let base = 1.0 / full_service;
        for (ds_name, seed) in [("Musique-ext", 21u64), ("2WikiMQA-ext", 22u64)] {
            for &mult in mults {
                let rate = base * mult;
                let w = Workload::generate(&WorkloadConfig::extended(rate, seed));
                for scheme in schemes {
                    let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
                    let stats = Simulator::new(cfg).run(&w);
                    rows.push(
                        Row::new("fig14")
                            .col("backend", "analytic")
                            .col("model", perf.spec.name)
                            .col("dataset", ds_name)
                            .col("scheme", scheme.name())
                            .num("rate_rps", rate)
                            .num("mean_ttft_s", stats.ttft.mean_s)
                            .num("p95_ttft_s", stats.ttft.p95_s)
                            .num("hit_rate", stats.hit_rate)
                            .num("throughput_rps", stats.throughput_rps)
                            .col("peak_queue_depth", stats.peak_queue_depth)
                            .col("deadline_misses", stats.deadline_misses),
                    );
                }
            }
        }
    }
}

/// The closed-loop workload shape: smaller than the paper grid because
/// every request really runs the blend path on the compiled model.
fn engine_workload(rate: f64, n_requests: usize, seed: u64) -> Workload {
    Workload::generate(&WorkloadConfig {
        rate_per_s: rate,
        n_requests,
        n_groups: 30,
        n_chunks: 150,
        chunks_per_request: 4,
        zipf_s: 0.9,
        shuffle_order: true,
        seed,
    })
}

fn engine_arm(smoke: bool, rows: &mut Vec<Row>) {
    let n_requests = if smoke { 40 } else { 120 };
    let mults: &[f64] = if smoke {
        &[0.5, 3.0]
    } else {
        &[0.3, 0.8, 1.5, 3.0]
    };

    // Normalize the rate grid to the measured warm service time, like the
    // analytic arm normalizes to the modeled full-prefill time.
    let service_s = EngineBackend::single_worker(ModelProfile::Tiny).warm_service_time_s();
    let base = 1.0 / service_s;

    for &mult in mults {
        let rate = base * mult;
        let w = engine_workload(rate, n_requests, 23);
        // Fresh service per rate so every point starts from a cold store,
        // matching the analytic arm.
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let stats = Simulator::run_with(&w, &mut backend, Some(3.0 * service_s));
        rows.push(
            Row::new("fig14")
                .col("backend", "engine")
                .col("model", "tiny-compiled")
                .col("dataset", "Musique-ext-small")
                .col("scheme", SchemeKind::CacheBlend.name())
                .num("rate_rps", rate)
                .num("mean_ttft_s", stats.ttft.mean_s)
                .num("p95_ttft_s", stats.ttft.p95_s)
                .num("hit_rate", stats.hit_rate)
                .num("throughput_rps", stats.throughput_rps)
                .col("peak_queue_depth", stats.peak_queue_depth)
                .col("deadline_misses", stats.deadline_misses),
        );
        assert_eq!(
            backend.service().stats().completed,
            n_requests as u64,
            "every simulated request must be really served"
        );
    }
}

/// What one cluster run measured.
struct ClusterPoint {
    ttft: LatencySummary,
    goodput_rps: f64,
    throughput_rps: f64,
    /// Router-level locality: chunks served at their home replica.
    locality_hit_rate: f64,
    /// Measured store locality: chunk KV served from the replica's RAM.
    ram_hit_rate: f64,
    spills: u64,
    deadline_misses: u64,
    admissions: Vec<u64>,
}

/// Serves one workload through an R-replica cluster: every request really
/// runs at its routed replica (measured admission cost), and the
/// multi-server queueing is composed in virtual time — per-replica busy
/// clocks, spill to the least-backlogged replica when the routed one's
/// virtual backlog exceeds the queue budget.
fn run_cluster_point(
    replicas: usize,
    workload: &Workload,
    warm_s: f64,
    deadline_s: f64,
    ram_entries: u64,
    dir: &std::path::Path,
) -> ClusterPoint {
    let _ = std::fs::remove_dir_all(dir);
    // Entry size of one workload chunk, to size the RAM tier in entries.
    let probe_model =
        cb_model::Model::compiled(cb_model::ModelConfig::standard(ModelProfile::Tiny, 11));
    let entry_bytes = {
        let tokens = sim_chunk_tokens(&probe_model.cfg.vocab, 0);
        let cache = cb_kv::precompute::precompute_chunk(&probe_model, &tokens);
        cb_kv::serialize::encode(&cache).len() as u64
    };
    let cluster = ClusterService::build(
        replicas,
        ServiceConfig::default().workers(1).queue_capacity(64),
        |_| {
            EngineBuilder::new(ModelProfile::Tiny)
                .seed(11)
                .storage(
                    StorageConfig::default()
                        .tier(
                            DeviceKind::CpuRam,
                            ram_entries * (entry_bytes + entry_bytes / 4),
                        )
                        .shared_disk_tier(DeviceKind::NvmeSsd, 1 << 30, dir, false),
                )
                .build()
        },
    )
    .expect("cluster builds");

    let vocab = cluster.replica(0).engine().model().cfg.vocab.clone();
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(0)),
        vocab.id(TokenKind::Attr(0)),
        vocab.id(TokenKind::QMark),
    ];
    let mut chunk_map: HashMap<u64, ChunkId> = HashMap::new();
    let mut map_chunk = |sim_id: u64| -> ChunkId {
        if let Some(&id) = chunk_map.get(&sim_id) {
            return id;
        }
        let tokens = sim_chunk_tokens(&vocab, sim_id);
        let id = cluster
            .register_chunk_lazy(&tokens)
            .expect("chunk tokens are non-empty");
        chunk_map.insert(sim_id, id);
        id
    };

    // Virtual multi-server queueing state.
    let mut free_at = vec![0.0f64; replicas];
    // Spill when the routed replica's virtual backlog exceeds what its
    // admission queue would hold at the warm service rate.
    let spill_backlog_s = 8.0 * warm_s;
    let mut ttfts = Vec::with_capacity(workload.requests.len());
    let mut spills = 0u64;
    let mut met = 0u64;
    let mut deadline_misses = 0u64;
    let mut lookups = 0u64;
    let mut ram_hits = 0u64;
    let mut last_finish = 0.0f64;

    for req in &workload.requests {
        let ids: Vec<ChunkId> = req.chunk_ids.iter().map(|&c| map_chunk(c)).collect();
        let (routed, _) = cluster.route(&ids).expect("all replicas healthy");
        let target = if free_at[routed] - req.arrival_s > spill_backlog_s {
            spills += 1;
            (0..replicas)
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .expect("at least one replica")
        } else {
            routed
        };
        let request = EngineRequest::new(ids, query.clone()).max_new_tokens(4);
        let resp = cluster
            .submit_to(target, request)
            .collect()
            .expect("cluster request serves");
        for s in &resp.chunk_sources {
            lookups += 1;
            if matches!(s, ChunkSource::Hit { tier: 0 }) {
                ram_hits += 1;
            }
        }
        let work_s = resp
            .ttft
            .total
            .saturating_sub(resp.ttft.decode)
            .as_secs_f64();
        let decode_s = resp.ttft.decode.as_secs_f64();
        let start = free_at[target].max(req.arrival_s);
        let ttft = start + work_s - req.arrival_s;
        ttfts.push(ttft);
        if ttft <= deadline_s {
            met += 1;
        } else {
            deadline_misses += 1;
        }
        free_at[target] = start + work_s + decode_s;
        last_finish = last_finish.max(free_at[target]);
    }

    let makespan = last_finish.max(f64::EPSILON);
    let stats = cluster.stats();
    let point = ClusterPoint {
        ttft: LatencySummary::of(ttfts),
        goodput_rps: met as f64 / makespan,
        throughput_rps: workload.requests.len() as f64 / makespan,
        locality_hit_rate: stats.locality_hit_rate(),
        ram_hit_rate: if lookups > 0 {
            ram_hits as f64 / lookups as f64
        } else {
            0.0
        },
        spills,
        deadline_misses,
        admissions: stats.admissions,
    };
    let _ = std::fs::remove_dir_all(dir);
    point
}

/// Deterministic token content for a simulated chunk id (distinct ids →
/// distinct content hashes for any universe below `n_entities²`).
fn sim_chunk_tokens(v: &cb_tokenizer::Vocab, sim_id: u64) -> Vec<TokenId> {
    let (ne, na, nv) = (
        v.n_entities() as u64,
        v.n_attrs() as u64,
        v.n_values() as u64,
    );
    vec![
        v.id(TokenKind::Entity((sim_id % ne) as u32)),
        v.id(TokenKind::Entity(((sim_id / ne) % ne) as u32)),
        v.id(TokenKind::Attr((sim_id % na) as u32)),
        v.id(TokenKind::Value((sim_id % nv) as u32)),
        v.id(TokenKind::Sep),
    ]
}

/// The chunk-skewed cluster workload: a hot chunk set (Zipf 1.1) shared
/// across query groups, so locality routing has something to exploit.
fn cluster_workload(rate: f64, n_requests: usize) -> Workload {
    Workload::generate(&WorkloadConfig {
        rate_per_s: rate,
        n_requests,
        n_groups: 24,
        n_chunks: 120,
        chunks_per_request: 4,
        zipf_s: 1.1,
        shuffle_order: true,
        seed: 29,
    })
}

/// Measures the warm service time *through the control plane*: the same
/// 4-warm-chunk probe shape as [`EngineBackend::warm_service_time_s`],
/// but timed wall-clock over `submit_to` so the gateway hop, frame
/// codec, and relay threads are part of the measurement. The net-cluster
/// arm normalizes its rate grid and deadline to this, exactly as the
/// engine arm normalizes to its own in-process probe.
fn net_warm_service_time_s() -> f64 {
    let cluster = ClusterService::build(
        1,
        ServiceConfig::default().workers(1).queue_capacity(64),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .expect("cluster builds");
    let vocab = cluster.replica(0).engine().model().cfg.vocab.clone();
    let chunks: Vec<Vec<TokenId>> = (0..4u32)
        .map(|j| {
            vec![
                vocab.id(TokenKind::Filler(j)),
                vocab.id(TokenKind::Filler(j + 1)),
                vocab.id(TokenKind::Value(j)),
                vocab.id(TokenKind::Sep),
            ]
        })
        .collect();
    let ids = cluster
        .register_chunks(&chunks)
        .expect("probe chunks register");
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(0)),
        vocab.id(TokenKind::Attr(0)),
        vocab.id(TokenKind::QMark),
    ];
    let mk = || EngineRequest::new(ids.clone(), query.clone()).max_new_tokens(4);
    cluster.submit_to(0, mk()).collect().expect("probe serves");
    // Median of per-request samples: on a loaded single-core host one
    // scheduling hiccup can double an 8-sample mean, and an inflated
    // warm_s deflates every derived rate until the "saturating" point no
    // longer saturates. The median shrugs the outlier off.
    let n = 9;
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let start = std::time::Instant::now();
            cluster.submit_to(0, mk()).collect().expect("probe serves");
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[n / 2].max(1e-6)
}

/// Measures the routing-hop latency tax: the per-request overhead of the
/// control-plane path (gateway routing + frame codec + loopback hop +
/// event relay) over a direct in-process `EngineService` submit of the
/// identical warm request. Returns `(direct_median_us, net_median_us)`.
fn routing_hop_tax_us(warm_requests: usize) -> (f64, f64) {
    let cluster = ClusterService::build(
        1,
        ServiceConfig::default().workers(1).queue_capacity(64),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .expect("cluster builds");
    let vocab = cluster.replica(0).engine().model().cfg.vocab.clone();
    let tokens = sim_chunk_tokens(&vocab, 7);
    let id = cluster.register_chunk(&tokens).expect("chunk registers");
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(0)),
        vocab.id(TokenKind::Attr(0)),
        vocab.id(TokenKind::QMark),
    ];
    let mk = || EngineRequest::new(vec![id], query.clone()).max_new_tokens(1);
    // Warm both paths (store warm, threads paged in) before timing.
    for _ in 0..5 {
        cluster.replica(0).submit(mk()).expect("warmup serves");
        cluster.submit_to(0, mk()).collect().expect("warmup serves");
    }
    // Interleave short blocks of each path and take per-request medians,
    // so scheduler drift on a loaded host cancels instead of biasing one
    // side.
    let mut direct = Vec::with_capacity(warm_requests);
    let mut net = Vec::with_capacity(warm_requests);
    while direct.len() < warm_requests {
        for _ in 0..5.min(warm_requests - direct.len()) {
            let t = std::time::Instant::now();
            cluster.replica(0).submit(mk()).expect("direct path serves");
            direct.push(t.elapsed().as_secs_f64() * 1e6);
        }
        for _ in 0..5.min(warm_requests - net.len()) {
            let t = std::time::Instant::now();
            cluster
                .submit_to(0, mk())
                .collect()
                .expect("net path serves");
            net.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (median(direct), median(net))
}

fn cluster_arm(smoke: bool, max_replicas: usize, net: bool) {
    let backend_label = if net { "net-cluster" } else { "cluster" };
    // The smoke workload is long enough that the single replica's
    // saturated makespan dominates its deadline-met count — the goodput
    // ratio then depends on the queueing structure, not on probe noise.
    let n_requests = if smoke { 64 } else { 120 };
    let mults: &[f64] = if smoke { &[1.5] } else { &[0.75, 1.5, 3.0] };
    let mut replica_grid = vec![1usize, 2];
    if max_replicas > 2 {
        replica_grid.push(max_replicas);
    }

    // Normalize rates to the measured warm single-worker service time,
    // exactly like the engine arm. Both cluster arms serve through the
    // control plane (ClusterService is a gateway facade), so the probe
    // goes through the same path — the wire overhead sits inside the
    // normalization, not as noise against a deadline calibrated for a
    // path the arm never takes.
    let warm_s = net_warm_service_time_s();
    let deadline_s = 4.0 * warm_s;
    // RAM sized to half the chunk universe: one replica thrashes its RAM
    // tier over the shared disk, two replicas hold their home shards.
    let ram_entries = 60u64;

    let mut rows = Vec::new();
    let mut goodput_at = HashMap::new();
    for &mult in mults {
        let rate = mult / warm_s;
        let workload = cluster_workload(rate, n_requests);
        for &replicas in &replica_grid {
            let dir = std::env::temp_dir().join(format!(
                "cb-cluster-bench-{}-{replicas}-{}",
                std::process::id(),
                (mult * 100.0) as u64
            ));
            let p = run_cluster_point(replicas, &workload, warm_s, deadline_s, ram_entries, &dir);
            goodput_at.insert((mult.to_bits(), replicas), p.goodput_rps);
            let admissions = p
                .admissions
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join("/");
            rows.push(
                Row::new("cluster")
                    .col("backend", backend_label)
                    .col("replicas", replicas)
                    .num("rate_rps", rate)
                    .num("rate_mult", mult)
                    .num("goodput_rps", p.goodput_rps)
                    .num("throughput_rps", p.throughput_rps)
                    .num("mean_ttft_s", p.ttft.mean_s)
                    .num("p95_ttft_s", p.ttft.p95_s)
                    .num("locality_hit_rate", p.locality_hit_rate)
                    .num("ram_hit_rate", p.ram_hit_rate)
                    .col("spills", p.spills)
                    .col("deadline_misses", p.deadline_misses)
                    .col("admissions", admissions),
            );
        }
    }
    if net {
        // The price of the wire boundary, measured head-to-head on the
        // same warm single-replica engine.
        let (direct_us, net_us) = routing_hop_tax_us(if smoke { 40 } else { 120 });
        let tax_us = (net_us - direct_us).max(0.0);
        println!(
            "routing-hop latency tax: direct {direct_us:.1}µs → net {net_us:.1}µs \
             (+{tax_us:.1}µs/request)"
        );
        rows.push(
            Row::new("cluster")
                .col("backend", backend_label)
                .col("metric", "routing_hop_tax")
                .num("direct_median_us", direct_us)
                .num("net_median_us", net_us)
                .num("hop_tax_us", tax_us),
        );
    }
    emit("BENCH_cluster", &rows);

    // The scale-out acceptance bar: at the saturating rate, two replicas
    // sustain at least 1.8× the goodput of one.
    let key_mult = 1.5f64;
    let g1 = goodput_at[&(key_mult.to_bits(), 1)];
    let g2 = goodput_at[&(key_mult.to_bits(), 2)];
    println!(
        "\ncluster scale-out: goodput 1→2 replicas = {g1:.3} → {g2:.3} rps ({:.2}×)",
        g2 / g1
    );
    assert!(
        g2 >= 1.8 * g1,
        "2 replicas must sustain ≥1.8× the goodput of 1 at the saturating rate: {g1} vs {g2}"
    );
}

/// What one chaos run measured (wall-clock, not virtual time: the retry
/// backoff and re-attach latency are exactly what this arm is after).
struct ChaosPoint {
    completed: u64,
    failed: u64,
    p50_ttft_s: f64,
    p99_ttft_s: f64,
    goodput_rps: f64,
    retries: u64,
    adoptions: u64,
}

/// Serves `n_requests` through a 2-replica net cluster in concurrent
/// waves of 8, optionally severing replica 0's connection (and
/// re-attaching it under the same identity, as `cb_worker
/// --retry-attach` would) right after wave `kill_after_wave` is
/// submitted — the deterministic kill schedule. TTFTs are wall-clock to
/// each stream's first token, timestamped on arrival by a per-stream
/// collector thread.
fn run_chaos_point(n_requests: usize, kill_after_wave: Option<usize>) -> ChaosPoint {
    const WAVE: usize = 8;
    let mut cluster = ClusterService::build(
        2,
        ServiceConfig::default().workers(1).queue_capacity(64),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .expect("cluster builds");
    let vocab = cluster.replica(0).engine().model().cfg.vocab.clone();
    let query = vec![
        vocab.id(TokenKind::Query),
        vocab.id(TokenKind::Entity(0)),
        vocab.id(TokenKind::Attr(0)),
        vocab.id(TokenKind::QMark),
    ];
    let workload = cluster_workload(1.0, n_requests);
    // Register every chunk up front so the run itself measures serving,
    // not registration.
    let mut chunk_map: HashMap<u64, ChunkId> = HashMap::new();
    for req in &workload.requests {
        for &sim_id in &req.chunk_ids {
            if let std::collections::hash_map::Entry::Vacant(e) = chunk_map.entry(sim_id) {
                let tokens = sim_chunk_tokens(&vocab, sim_id);
                e.insert(
                    cluster
                        .register_chunk_lazy(&tokens)
                        .expect("chunk tokens are non-empty"),
                );
            }
        }
    }

    let start = std::time::Instant::now();
    let mut ttfts = Vec::with_capacity(n_requests);
    let (mut completed, mut failed) = (0u64, 0u64);
    for (wave_idx, wave) in workload.requests.chunks(WAVE).enumerate() {
        let collectors: Vec<_> = wave
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let ids: Vec<ChunkId> = req.chunk_ids.iter().map(|c| chunk_map[c]).collect();
                // Placement is driven by the harness (as in the cluster
                // arm), alternating replicas — so the kill wave always
                // has work in flight at replica 0 when the bounce lands,
                // and a retry is guaranteed rather than luck of the
                // router. 12 decoded tokens keep each stream alive for
                // several ms, comfortably spanning the kill.
                let stream = cluster.submit_to(
                    i % 2,
                    EngineRequest::new(ids, query.clone()).max_new_tokens(12),
                );
                let t0 = std::time::Instant::now();
                std::thread::spawn(move || {
                    let mut first = None;
                    let mut ok = false;
                    for ev in stream {
                        match ev {
                            cb_core::stream::Event::FirstToken(_) => {
                                first = Some(t0.elapsed().as_secs_f64());
                            }
                            cb_core::stream::Event::Done(_) => ok = true,
                            _ => {}
                        }
                    }
                    (first, ok)
                })
            })
            .collect();
        if kill_after_wave == Some(wave_idx) {
            // The kill: replica 0's connection dies abruptly with the
            // wave in flight; stranded requests retry on replica 1 while
            // the bounced worker re-attaches and adopts its slot.
            cluster.bounce_replica(0);
        }
        for c in collectors {
            let (first, ok) = c.join().expect("collector thread");
            if ok {
                completed += 1;
                if let Some(t) = first {
                    ttfts.push(t);
                }
            } else {
                failed += 1;
            }
        }
    }
    let makespan = start.elapsed().as_secs_f64().max(f64::EPSILON);
    ttfts.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if ttfts.is_empty() {
            return 0.0;
        }
        let at = ((ttfts.len() as f64 * p).ceil() as usize).clamp(1, ttfts.len()) - 1;
        ttfts[at]
    };
    let stats = cluster.stats();
    ChaosPoint {
        completed,
        failed,
        p50_ttft_s: pct(0.50),
        p99_ttft_s: pct(0.99),
        goodput_rps: completed as f64 / makespan,
        retries: stats.retries,
        adoptions: stats.adoptions,
    }
}

/// The chaos drill: the same workload with and without a mid-run worker
/// death, side by side. Emits `BENCH_chaos.json` and prints the measured
/// retry latency tax (the p99 TTFT delta the kill costs).
fn chaos_arm(smoke: bool) {
    let n_requests = if smoke { 48 } else { 160 };
    let kill_wave = (n_requests / 8) / 2; // Mid-run, deterministically.
    let baseline = run_chaos_point(n_requests, None);
    let chaos = run_chaos_point(n_requests, Some(kill_wave));

    let mut rows = Vec::new();
    for (arm, p) in [("baseline", &baseline), ("worker-killed", &chaos)] {
        rows.push(
            Row::new("chaos")
                .col("backend", "net-cluster")
                .col("arm", arm)
                .col("requests", n_requests)
                .col("completed", p.completed)
                .col("failed", p.failed)
                .num("p50_ttft_s", p.p50_ttft_s)
                .num("p99_ttft_s", p.p99_ttft_s)
                .num("goodput_rps", p.goodput_rps)
                .col("retries", p.retries)
                .col("adoptions", p.adoptions),
        );
    }
    emit("BENCH_chaos", &rows);
    println!(
        "chaos drill: {} requests, kill after wave {kill_wave}: goodput {:.2} → {:.2} rps, \
         p99 TTFT {:.1}ms → {:.1}ms ({} retries, {} adoption)",
        n_requests,
        baseline.goodput_rps,
        chaos.goodput_rps,
        baseline.p99_ttft_s * 1e3,
        chaos.p99_ttft_s * 1e3,
        chaos.retries,
        chaos.adoptions,
    );
    assert_eq!(
        baseline.failed, 0,
        "the undisturbed run must not fail requests"
    );
    assert_eq!(baseline.retries, 0, "the undisturbed run must not retry");
    assert_eq!(
        chaos.failed, 0,
        "every request must survive the mid-run worker death"
    );
    assert!(
        chaos.retries >= 1,
        "the kill landed mid-run, so at least one request must have been retried"
    );
    assert_eq!(
        chaos.adoptions, 1,
        "the bounced worker must adopt its old slot exactly once"
    );
}
