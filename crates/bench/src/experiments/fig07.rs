//! Figure 7: CDF of per-token KV deviation on a few layers, three models.
//!
//! Paper shape: most tokens have small deviation; a ~10–15 % tail deviates
//! strongly — the sparsity that makes selective recompute viable.

use cb_core::deviation::oracle_kv_deviation;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_tensor::stats::quantile;

use crate::harness::{reused_context_cache, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// The layers plotted per model (scaled analogues of the paper's picks:
/// early-middle layers).
fn plot_layers(n_layers: usize) -> [usize; 3] {
    let mid = n_layers / 2;
    [mid - 1, mid, mid + 1]
}

/// Runs the experiment and emits rows.
pub fn run() {
    let mut rows = Vec::new();
    for exp in ExpModel::evaluation_models(11) {
        let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
        let mut ev = QualityEval::new(&exp.model);
        // Pool deviations over several retrieved contexts.
        let n_layers = exp.model.n_layers();
        let mut pooled: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
        for case in ds.cases.iter().take(6) {
            let ctx = ds.retrieve(case, 6);
            let reused = reused_context_cache(&exp.model, &mut ev, &ds, &ctx);
            let dev = oracle_kv_deviation(&exp.model, &reused);
            for (l, d) in dev.into_iter().enumerate() {
                pooled[l].extend(d);
            }
        }
        for &layer in plot_layers(n_layers).iter() {
            let xs = &pooled[layer];
            let mut row = Row::new("fig07")
                .col("model", exp.perf.spec.name)
                .col("layer", layer);
            for q in [0.10f32, 0.25, 0.50, 0.75, 0.85, 0.90, 0.95, 1.0] {
                row = row.num(&format!("p{:02.0}", q * 100.0), quantile(xs, q) as f64);
            }
            // The paper's claim quantified: the p95/p50 tail ratio.
            let tail = quantile(xs, 0.95) / quantile(xs, 0.50).max(1e-6);
            row = row.num("tail_p95_over_p50", tail as f64);
            rows.push(row);
        }
    }
    emit("fig07_kv_deviation_cdf", &rows);
}
